"""Legacy setup shim.

The offline evaluation environment ships setuptools 65 without the `wheel`
package, so PEP 660 editable installs (`pyproject.toml`-only) cannot build.
Keeping this `setup.py` lets `pip install -e .` fall back to the classic
`setup.py develop` code path. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

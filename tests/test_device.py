"""Device facade tests: loading, launch validation, metrics plumbing."""

import numpy as np
import pytest

from repro.errors import LaunchError, SimulationError
from repro.sim.device import Device, Program
from repro.sim.specs import TINY

SRC = """
__global__ void fill(int* out, int v) {
    out[blockIdx.x * blockDim.x + threadIdx.x] = v;
}
"""


class TestLoading:
    def test_load_returns_program(self):
        dev = Device()
        prog = dev.load(SRC)
        assert isinstance(prog, Program)
        assert prog.kernel_names() == ["fill"]

    def test_source_property_is_python(self):
        dev = Device()
        prog = dev.load(SRC)
        assert "def __mc_fill" in prog.source

    def test_duplicate_kernel_name_rejected(self):
        dev = Device()
        dev.load(SRC)
        with pytest.raises(SimulationError, match="already loaded"):
            dev.load(SRC)

    def test_multiple_modules_coexist(self):
        dev = Device()
        dev.load(SRC)
        prog2 = dev.load("__global__ void other(int* out) { out[0] = 1; }")
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        prog2.launch("other", 1, 1, out)
        dev.synchronize()
        assert out.data[0] == 1


class TestLaunchValidation:
    def test_unknown_kernel(self):
        dev = Device()
        dev.load(SRC)
        with pytest.raises(LaunchError):
            dev.launch("nope", 1, 1)

    def test_zero_grid(self):
        dev = Device()
        dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(LaunchError):
            dev.launch("fill", 0, 1, out, 1)

    def test_oversized_block(self):
        dev = Device()
        dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(LaunchError):
            dev.launch("fill", 1, 2048, out, 1)

    def test_tiny_spec_limits_apply(self):
        dev = Device(spec=TINY)
        dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(256, np.int32))
        with pytest.raises(LaunchError):
            dev.launch("fill", 1, 256, out, 1)  # TINY caps blocks at 128


class TestMetrics:
    def test_synchronize_scopes_roots(self):
        dev = Device()
        prog = dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(128, np.int32))
        prog.launch("fill", 1, 128, out, 7)
        m1 = dev.synchronize()
        assert m1.host_launches == 1
        prog.launch("fill", 1, 128, out, 8)
        m2 = dev.synchronize()
        assert m2.cycles > 0

    def test_eager_functional_execution(self):
        # results are visible to the host *before* synchronize
        dev = Device()
        prog = dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(32, np.int32))
        prog.launch("fill", 1, 32, out, 9)
        assert out.data[0] == 9

    def test_metrics_summary_renders(self):
        dev = Device()
        prog = dev.load(SRC)
        out = dev.from_numpy("out", np.zeros(32, np.int32))
        prog.launch("fill", 1, 32, out, 1)
        m = dev.synchronize()
        text = m.summary()
        assert "cycles" in text and "warp exec efficiency" in text

    def test_speedup_over(self):
        from repro.sim.profiler import RunMetrics

        fast = RunMetrics(cycles=100)
        slow = RunMetrics(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

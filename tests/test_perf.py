"""Tests for :mod:`repro.perf` — the deep profiler and the perf ledger.

Four families:

* **attribution** — the profiler's books must balance: the re-scheduled
  makespan equals ``RunMetrics.cycles`` bitwise, attributed per-kernel
  DRAM plus scheduler-charged overhead traffic equals the metrics
  total, and the scalar and vectorized engines agree on every
  attribution column. The rendered table for sssp/consolidated is
  pinned as a golden file (``--update-goldens`` rewrites it).
* **never-perturb** — ``RunConfig.profile`` stays out of equality /
  hashing / ``axes()`` / cache keys, and a profiled run's
  ``RunMetrics`` are bitwise-identical to plain and traced runs.
* **ledger** — idempotent content-keyed ingestion, direction
  heuristics, the noise floor, and the regression gate (pass fresh,
  fail on an injected regression, unknown cells never gate).
* **CLI** — ``repro profile`` determinism and ``repro perf``
  ingest/history/check round trips, including the nonzero exit.
"""

import dataclasses
import json
import struct
from pathlib import Path

import pytest

from repro.apps import get_app
from repro.perf import profiling
from repro.perf.ledger import (DEFAULT_NOISE_FLOOR, LEDGER_FORMAT, PerfLedger,
                               cell_direction, envelope_sha, flatten_payload)
from repro.perf.report import (PROFILE_FORMAT, build_profile,
                               profile_chrome_trace, profile_to_json,
                               render_occupancy, render_profile)
from repro.run_config import RunConfig
from repro.telemetry import validate_chrome_trace

SCALE = 0.05
GOLDEN_DIR = Path(__file__).parent / "fixtures" / "golden_profile"


def _profiled_run(variant="consolidated", **overrides):
    app = get_app("sssp")
    dataset = app.default_dataset(SCALE)
    with profiling() as collector:
        run = app.run(RunConfig(variant=variant, **overrides),
                      dataset=dataset)
    return run, build_profile(collector, label=f"sssp {variant}")


def _float_bits(value):
    """Floats as their IEEE-754 bit pattern so == means bit-identical."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    if isinstance(value, dict):
        return {k: _float_bits(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_float_bits(v) for v in value]
    return value


# -- attribution reconciliation ------------------------------------------------

class TestAttribution:
    def test_makespan_reconciles_with_metrics(self):
        run, prof = _profiled_run("consolidated")
        # the memsys-free re-schedule replays the same canonical order,
        # so its makespan must equal the run's priced cycles exactly
        assert prof.rescheduled_cycles == run.metrics.cycles
        assert prof.total_cycles == run.metrics.cycles
        assert prof.busy_cycles > 0
        assert prof.max_resident_warps > 0
        assert 0.0 < prof.achieved_occupancy <= 1.0

    def test_dram_attribution_balances(self):
        run, prof = _profiled_run("basic-dp")
        assert prof.dram_transactions == run.metrics.dram_transactions
        assert prof.attributed_dram + prof.scheduler_dram == \
            run.metrics.dram_transactions
        assert prof.attributed_dram > 0

    def test_kernel_rows_are_ranked_and_consistent(self):
        _, prof = _profiled_run("consolidated")
        assert prof.kernels
        busy = [row.busy_cycles for row in prof.kernels]
        assert busy == sorted(busy, reverse=True)
        for row in prof.kernels:
            assert row.instances >= 1
            assert row.rounds == row.rounds_uniform + row.rounds_divergent
            assert 0.0 <= row.warp_efficiency <= 1.0
        assert prof.hotspots(1)[0] is prof.kernels[0]

    def test_rendered_table_matches_golden(self, update_goldens):
        _, prof = _profiled_run("consolidated")
        text = render_profile(prof) + "\n"
        golden = GOLDEN_DIR / "sssp_consolidated.txt"
        if update_goldens:
            golden.parent.mkdir(parents=True, exist_ok=True)
            golden.write_text(text, encoding="utf-8")
            pytest.skip(f"rewrote {golden}")
        assert golden.exists(), \
            f"golden missing; run pytest --update-goldens ({golden})"
        assert text == golden.read_text(encoding="utf-8")

    def test_two_runs_render_byte_identical(self):
        _, first = _profiled_run("consolidated")
        _, second = _profiled_run("consolidated")
        assert render_profile(first) == render_profile(second)
        assert render_occupancy(first) == render_occupancy(second)
        assert profile_to_json(first) == profile_to_json(second)

    def test_scalar_and_vectorized_attribution_agree(self):
        # the two engines share the canonical schedule; every per-kernel
        # attribution column except the batching counter must match
        def columns(profile):
            return [(row.name, row.from_device, row.instances,
                     row.rounds_uniform, row.rounds_divergent,
                     row.dram_transactions, row.l2_hits, row.l2_misses,
                     row.pushes_by_scope, row.push_cycles,
                     row.pops, row.pop_cycles)
                    for row in profile.kernels]

        for variant in ("basic-dp", "warp-level"):
            _, vec = _profiled_run(variant)
            _, scalar = _profiled_run(variant, oracle="sim-scalar")
            assert columns(vec) == columns(scalar), variant
            assert vec.rescheduled_cycles == scalar.rescheduled_cycles
            assert vec.occupancy == scalar.occupancy
            assert vec.spans == scalar.spans


# -- never-perturb invariants --------------------------------------------------

class TestNonPerturbation:
    def test_profile_is_not_identity(self):
        plain = RunConfig(variant="consolidated", strategy="warp")
        profiled = RunConfig(variant="consolidated", strategy="warp",
                             profile="/tmp/p.json")
        assert plain == profiled
        assert hash(plain) == hash(profiled)
        assert "profile" not in plain.axes()
        assert plain.axes() == profiled.axes()

    def test_profile_never_reaches_the_cache_key(self):
        from repro.experiments import RunSpec

        profiled = RunConfig(variant="grid-level", profile="p.json")
        spec = RunSpec.from_config("sssp", profiled)
        assert spec == RunSpec.from_config("sssp", RunConfig(
            variant="grid-level"))
        assert not hasattr(spec, "profile")

    def test_profiled_store_entry_is_shared(self, tmp_path):
        from repro.experiments import ExperimentRunner, ResultStore

        runner = ExperimentRunner(scale=SCALE, verify=False,
                                  store=ResultStore(tmp_path / "cache"))
        runner.run_config("sssp", RunConfig(variant="basic-dp"))
        assert runner.stats.executed == 1
        runner.run_config("sssp", RunConfig(variant="basic-dp",
                                            profile=str(tmp_path / "p.json")))
        assert runner.stats.executed == 1  # a hit, not a fork

    def test_three_way_metrics_bitwise_identical(self, tmp_path):
        app = get_app("sssp")
        dataset = app.default_dataset(SCALE)
        plain = app.run(RunConfig(variant="consolidated"), dataset=dataset)
        traced = app.run(RunConfig(variant="consolidated",
                                   trace=str(tmp_path / "t.json")),
                         dataset=dataset)
        profiled = app.run(RunConfig(variant="consolidated",
                                     profile=str(tmp_path / "p.json")),
                           dataset=dataset)
        reference = _float_bits(dataclasses.asdict(plain.metrics))
        assert _float_bits(dataclasses.asdict(traced.metrics)) == reference
        assert _float_bits(dataclasses.asdict(profiled.metrics)) == reference
        with open(tmp_path / "p.json", encoding="utf-8") as fh:
            obj = json.load(fh)
        assert obj["format"] == PROFILE_FORMAT
        assert obj["total_cycles"] == plain.metrics.cycles


# -- Chrome trace export -------------------------------------------------------

class TestProfileTrace:
    def test_profile_trace_validates(self):
        _, prof = _profiled_run("consolidated")
        obj = profile_chrome_trace(prof)
        assert validate_chrome_trace(obj) > 0
        by_ph = {}
        for event in obj["traceEvents"]:
            by_ph.setdefault(event["ph"], []).append(event)
        assert len(by_ph["X"]) == len(prof.spans)
        assert len(by_ph["C"]) == len(prof.occupancy)
        for event in by_ph["C"]:
            assert all(isinstance(v, (int, float))
                       for v in event["args"].values())
        assert obj["otherData"]["profile"] == PROFILE_FORMAT
        assert obj["otherData"]["unit"] == "cycles"


# -- the perf ledger -----------------------------------------------------------

def _envelope(payload, bench="fig_demo", version="0"):
    return {"format": 1, "bench": bench, "version": version,
            "payload": payload}


class TestLedger:
    def test_ingest_is_idempotent_by_content(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        env = _envelope({"speedup": 2.0, "wall_s": 1.25,
                         "cells": {"sssp": {"grid-level": 2.07}}})
        assert ledger.ingest_envelope(env, sha="aaa", ts=1.0) == 3
        assert len(ledger) == 3
        assert ledger.ingest_envelope(env, sha="bbb", ts=2.0) == 0
        assert len(ledger) == 3
        cells = {rec["cell"] for rec in ledger.records()}
        assert cells == {"speedup", "wall_s", "cells.sssp.grid-level"}

    def test_envelope_sha_ignores_key_order(self):
        a = {"bench": "x", "payload": {"p": 1, "q": 2}, "format": 1}
        b = {"format": 1, "payload": {"q": 2, "p": 1}, "bench": "x"}
        assert envelope_sha(a) == envelope_sha(b)
        assert envelope_sha(a) != envelope_sha(
            {"bench": "x", "payload": {"p": 1, "q": 3}, "format": 1})

    def test_flatten_skips_labels_and_indexes_lists(self):
        flat = flatten_payload({"scale": 1.0, "name": "sssp", "ok": True,
                                "series": [3, 5], "sub": {"x": 2}})
        assert flat == {"scale": 1.0, "series.0": 3.0, "series.1": 5.0,
                        "sub.x": 2.0}

    def test_direction_heuristics(self):
        assert cell_direction("speedups.sssp.grid-level") == "higher"
        assert cell_direction("cache_hit_rate") == "higher"
        assert cell_direction("wall_s") == "lower"
        assert cell_direction("kron_like_loops_s") == "lower"
        assert cell_direction("dram_transactions") == "lower"
        assert cell_direction("widgets") is None

    def test_diff_honors_the_noise_floor(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        ledger.ingest_envelope(_envelope({"speedup": 2.0}), sha="a", ts=1.0)
        ledger.ingest_envelope(_envelope({"speedup": 2.02}), sha="b", ts=2.0)
        assert ledger.diff() == []  # +1% sits under the 2% floor
        ledger.ingest_envelope(_envelope({"speedup": 2.5}), sha="c", ts=3.0)
        (delta,) = ledger.diff()
        assert delta.cell == "speedup" and delta.baseline == 2.02
        assert delta.direction == "higher" and delta.worsening < 0

    def test_check_passes_fresh_and_fails_on_regression(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        base = {"speedup": 2.0, "wall_s": 1.0, "widgets": 5.0}
        ledger.ingest_envelope(_envelope(base), sha="a", ts=1.0)
        regressions, other = ledger.check()
        assert regressions == [] and other == []  # single ingest: no baseline
        bad = {"speedup": 1.5, "wall_s": 1.3, "widgets": 50.0}
        ledger.ingest_envelope(_envelope(bad), sha="b", ts=2.0)
        regressions, other = ledger.check()
        assert {d.cell for d in regressions} == {"speedup", "wall_s"}
        # the unknown-direction cell moved 10x but can never gate
        assert {d.cell for d in other} == {"widgets"}
        # improvements land in `other`, not in the gate
        ledger.ingest_envelope(_envelope({"speedup": 3.0, "wall_s": 0.5,
                                          "widgets": 5.0}), sha="c", ts=3.0)
        regressions, other = ledger.check()
        assert regressions == []
        assert {d.cell for d in other} == {"speedup", "wall_s", "widgets"}

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = PerfLedger(path)
        ledger.ingest_envelope(_envelope({"speedup": 2.0}), sha="a", ts=1.0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"format": 99, "alien": true}\n')
            fh.write('{"bench": "torn", "val')  # no trailing newline either
        assert len(ledger) == 1
        # appends still work after the torn tail (new line starts clean)
        env = _envelope({"speedup": 2.5})
        n = ledger.ingest_envelope(env, sha="b", ts=2.0)
        assert n == 1 and len(ledger) == 2

    def test_ingest_rejects_non_envelopes(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(ValueError, match="bench"):
            ledger.ingest_envelope({"payload": {}})
        # numeric-free payloads append nothing
        assert ledger.ingest_envelope(_envelope({"note": "hi"})) == 0
        assert len(ledger) == 0


# -- the CLI surface -----------------------------------------------------------

class TestCli:
    def test_profile_command_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        assert main(["profile", "sssp", "consolidated",
                     "--scale", str(SCALE), "--occupancy",
                     "--json", str(json_path),
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out and "hotspots" in out
        assert "occupancy" in out
        with open(json_path, encoding="utf-8") as fh:
            obj = json.load(fh)
        assert obj["format"] == PROFILE_FORMAT and obj["kernels"]
        with open(trace_path, encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) > 0

    def test_profile_command_is_deterministic(self, capsys):
        from repro.cli import main

        argv = ["profile", "sssp", "consolidated", "--scale", str(SCALE)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_profile_command_rejects_unknown_app(self, capsys):
        from repro.cli import main

        assert main(["profile", "nope", "consolidated"]) == 2
        assert "error" in capsys.readouterr().err

    def test_perf_cli_gate(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_GIT_SHA", "cafe123")
        out_dir = tmp_path / "bench-out"
        out_dir.mkdir()
        ledger_path = tmp_path / "ledger.jsonl"

        def write(payload, stamp):
            envelope = _envelope(payload, bench="demo", version=stamp)
            (out_dir / "BENCH_demo.json").write_text(
                json.dumps(envelope), encoding="utf-8")

        write({"speedup": 2.0}, "one")
        assert main(["perf", "ingest", str(out_dir),
                     "--ledger", str(ledger_path)]) == 0
        assert "1 records appended" in capsys.readouterr().out
        assert main(["perf", "history", "--ledger", str(ledger_path)]) == 0
        assert "cafe123" in capsys.readouterr().out
        assert main(["perf", "check", "--ledger", str(ledger_path)]) == 0
        assert "OK" in capsys.readouterr().out
        # inject a >10% regression and the gate must trip with exit 1
        write({"speedup": 1.5}, "two")
        assert main(["perf", "ingest", str(out_dir),
                     "--ledger", str(ledger_path)]) == 0
        capsys.readouterr()
        assert main(["perf", "check", "--ledger", str(ledger_path)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err and "speedup" in captured.err
        # diff reports the same move without gating
        assert main(["perf", "diff", "--ledger", str(ledger_path)]) == 0
        assert "-25.0%" in capsys.readouterr().out

    def test_perf_ingest_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["perf", "ingest", str(bad),
                     "--ledger", str(tmp_path / "l.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

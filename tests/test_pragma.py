"""Tests for the Table I directive grammar."""

import pytest

from repro.errors import PragmaError
from repro.frontend.pragma import (
    DEFAULT_TOTAL_SIZE,
    parse_dp_pragma,
)


def parse(payload):
    return parse_dp_pragma(payload)


class TestParsing:
    def test_minimal(self):
        d = parse("dp consldt(warp) work(u)")
        assert d.granularity == "warp"
        assert d.work == ("u",)
        assert d.buffer_type == "custom"  # default
        assert d.total_size == DEFAULT_TOTAL_SIZE

    def test_all_granularities(self):
        for g in ("warp", "block", "grid"):
            assert parse(f"dp consldt({g}) work(x)").granularity == g

    def test_work_list(self):
        d = parse("dp consldt(block) work(u, du, deg)")
        assert d.work == ("u", "du", "deg")

    def test_buffer_type(self):
        for t in ("default", "halloc", "custom"):
            d = parse(f"dp consldt(grid) buffer(type: {t}) work(u)")
            assert d.buffer_type == t

    def test_per_buffer_size_int(self):
        d = parse("dp consldt(block) buffer(type: custom, perBufferSize: 256) work(u)")
        assert d.per_buffer_size == 256

    def test_per_buffer_size_variable(self):
        d = parse("dp consldt(block) buffer(type: custom, perBufferSize: nchildren) work(u)")
        assert d.per_buffer_size == "nchildren"

    def test_total_size(self):
        d = parse("dp consldt(grid) buffer(type: custom, totalSize: 1048576) work(u)")
        assert d.total_size == 1048576

    def test_threads_blocks(self):
        d = parse("dp consldt(grid) work(u) threads(128) blocks(26)")
        assert d.threads == 128 and d.blocks == 26

    def test_clause_order_free(self):
        d = parse("dp work(u) threads(64) consldt(warp)")
        assert d.granularity == "warp" and d.threads == 64

    def test_non_dp_pragma_returns_none(self):
        assert parse("unroll 4") is None
        assert parse("once") is None


class TestErrors:
    @pytest.mark.parametrize("payload", [
        "dp work(u)",                         # missing consldt
        "dp consldt(block)",                  # missing work
        "dp consldt(device) work(u)",         # bad granularity
        "dp consldt(block) work()",           # empty work
        "dp consldt(block) work(u) work(v)",  # duplicate clause
        "dp consldt(block) buffer(type: arena) work(u)",  # bad buffer type
        "dp consldt(block) buffer(totalSize: big) work(u)",  # non-int size
        "dp consldt(block) work(u) threads(many)",  # non-int threads
        "dp consldt(block) work(u) frobnicate(1)",  # unknown clause
        "dp consldt(block work(u)",           # unterminated clause
        "dp consldt(block) work(u+1)",        # non-identifier work entry
    ])
    def test_malformed(self, payload):
        with pytest.raises(PragmaError):
            parse(payload)

    def test_bad_character(self):
        with pytest.raises(PragmaError):
            parse("dp consldt(block) work(u) $$$")


class TestDescribe:
    def test_describe_round_trips_through_parser(self):
        d = parse("dp consldt(grid) buffer(type: halloc, perBufferSize: 99) "
                  "work(a, b) threads(64) blocks(13)")
        d2 = parse(d.describe())
        assert d == d2

    def test_describe_mentions_all_clauses(self):
        d = parse("dp consldt(warp) work(u) threads(32)")
        text = d.describe()
        assert "consldt(warp)" in text and "work(u)" in text
        assert "threads(32)" in text

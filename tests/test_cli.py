"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sssp" in out and "fig7" in out

    def test_compile(self, capsys):
        assert main(["compile", "sssp", "--granularity", "warp"]) == 0
        out = capsys.readouterr().out
        assert "sssp_child_cons_warp" in out

    def test_compile_strategy_flag(self, capsys):
        assert main(["compile", "sssp", "--strategy", "grid"]) == 0
        out = capsys.readouterr().out
        assert "sssp_child_cons_grid" in out

    def test_run_with_strategy(self, capsys):
        assert main(["run", "spmv", "consolidated", "--strategy", "block",
                     "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        # built-in strategies canonicalize onto their legacy variant label
        assert "block-level" in out
        assert "verified=True" in out

    def test_run_conflicting_strategy_errors(self, capsys):
        assert main(["run", "spmv", "warp-level", "--strategy", "grid",
                     "--scale", "0.15"]) == 2
        assert "contradicts" in capsys.readouterr().err

    def test_granularity_ablation_command(self, capsys):
        assert main(["granularity", "--scale", "0.15", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Ablation — consolidation strategy" in out
        assert "warp (x)" in out and "grid (x)" in out

    def test_run_variant(self, capsys):
        assert main(["run", "spmv", "grid-level", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "cycles" in out

    def test_run_with_allocator(self, capsys):
        assert main(["run", "spmv", "block-level", "--scale", "0.15",
                     "--allocator", "halloc"]) == 0
        out = capsys.readouterr().out
        assert "halloc" in out

    def test_figure_command(self, capsys):
        assert main(["fig5", "--scale", "0.15", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "executed" in out  # provenance line

    def test_figure_jobs_and_disk_cache(self, capsys, tmp_path):
        args = ["fig5", "--scale", "0.15", "--cache-dir", str(tmp_path)]
        assert main(args + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ": 0 executed" in warm

        def figure_text(out):
            return "\n".join(line for line in out.splitlines()
                             if not line.startswith("["))

        assert figure_text(warm) == figure_text(cold)

    def test_cache_info_and_clear(self, capsys, tmp_path):
        main(["fig5", "--scale", "0.15", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 11" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 11" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sssp" in out and "fig7" in out

    def test_compile(self, capsys):
        assert main(["compile", "sssp", "--granularity", "warp"]) == 0
        out = capsys.readouterr().out
        assert "sssp_child_cons_warp" in out

    def test_run_variant(self, capsys):
        assert main(["run", "spmv", "grid-level", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "cycles" in out

    def test_run_with_allocator(self, capsys):
        assert main(["run", "spmv", "block-level", "--scale", "0.15",
                     "--allocator", "halloc"]) == 0
        out = capsys.readouterr().out
        assert "halloc" in out

    def test_figure_command(self, capsys):
        assert main(["fig5", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

"""Consolidation-buffer runtime and global-barrier tests (via __dp_*
intrinsics exercised from MiniCUDA kernels)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.device import Device

from tests.helpers import run_kernel


class TestBuffers:
    def test_push_and_drain_roundtrip(self):
        src = """
        __global__ void producer(int* out, int n) {
            int t = threadIdx.x;
            int h = __dp_buf_acquire(1, 64, 1);
            if (t < n) {
                __dp_buf_push1(h, t * 7);
            }
            __syncthreads();
            if (t == 0) {
                int count = __dp_buf_size(h);
                out[0] = count;
                for (int i = 0; i < count; i++) {
                    out[1 + i] = __dp_buf_get(h, i, 0);
                }
            }
        }
        """
        _, _, h = run_kernel(src, "producer", 1, 32,
                             {"out": np.zeros(40, np.int32)}, scalars=(5,))
        assert h["out"].data[0] == 5
        assert sorted(h["out"].data[1:6]) == [0, 7, 14, 21, 28]

    def test_multi_field_push(self):
        src = """
        __global__ void k(int* out) {
            int h = __dp_buf_acquire(1, 16, 3);
            __dp_buf_push3(h, 10, 20, 30);
            out[0] = __dp_buf_get(h, 0, 0);
            out[1] = __dp_buf_get(h, 0, 1);
            out[2] = __dp_buf_get(h, 0, 2);
        }
        """
        _, _, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(4, np.int32)})
        assert list(h["out"].data[:3]) == [10, 20, 30]

    def test_scope_warp_vs_block(self):
        # warp-scope: two warps get different buffers; block-scope: shared
        src = """
        __global__ void k(int* out, int gran) {
            int t = threadIdx.x;
            int h = __dp_buf_acquire(gran, 128, 1);
            __dp_buf_push1(h, t);
            __syncthreads();
            if (t == 0) { out[0] = __dp_buf_size(h); }
        }
        """
        _, _, h = run_kernel(src, "k", 1, 64, {"out": np.zeros(2, np.int32)},
                             scalars=(0,))
        assert h["out"].data[0] == 32  # warp scope: only warp 0's buffer
        _, _, h = run_kernel(src, "k", 1, 64, {"out": np.zeros(2, np.int32)},
                             scalars=(1,))
        assert h["out"].data[0] == 64  # block scope: all threads

    def test_grid_scope_spans_blocks(self):
        src = """
        __global__ void k(int* out) {
            int h = __dp_buf_acquire(2, 512, 1);
            __dp_buf_push1(h, 1);
            __syncthreads();
            if (threadIdx.x == 0) {
                if (__dp_grid_arrive_last()) {
                    out[0] = __dp_buf_size(h);
                }
            }
        }
        """
        _, _, h = run_kernel(src, "k", 4, 32, {"out": np.zeros(2, np.int32)})
        assert h["out"].data[0] == 128

    def test_buffer_grows_on_overflow(self):
        src = """
        __global__ void k(int* out, int n) {
            int h = __dp_buf_acquire(1, 2, 1);
            for (int i = 0; i < n; i++) {
                __dp_buf_push1(h, i);
            }
            out[0] = __dp_buf_size(h);
            out[1] = __dp_buf_get(h, n - 1, 0);
        }
        """
        _, m, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(2, np.int32)},
                             scalars=(40,))
        assert h["out"].data[0] == 40
        assert h["out"].data[1] == 39
        assert m.buffer_grows >= 1

    def test_buffer_reset(self):
        src = """
        __global__ void k(int* out) {
            int h = __dp_buf_acquire(1, 8, 1);
            __dp_buf_push1(h, 5);
            __dp_buf_reset(h);
            out[0] = __dp_buf_size(h);
        }
        """
        _, _, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(1, np.int32)})
        assert h["out"].data[0] == 0

    def test_invalid_handle_raises(self):
        src = """__global__ void k(int* out) { out[0] = __dp_buf_size(12345); }"""
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(1, np.int32))
        with pytest.raises(SimulationError):
            prog.launch("k", 1, 1, out)

    def test_out_of_range_get_raises(self):
        src = """__global__ void k(int* out) {
            int h = __dp_buf_acquire(1, 8, 1);
            out[0] = __dp_buf_get(h, 3, 0);
        }"""
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(1, np.int32))
        with pytest.raises(SimulationError):
            prog.launch("k", 1, 1, out)

    def test_allocator_charged_per_buffer(self):
        src = """
        __global__ void k(int* out) {
            int h = __dp_buf_acquire(0, 32, 1);
            __dp_buf_push1(h, threadIdx.x);
        }
        """
        dev = Device(allocator="default")
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(1, np.int32))
        prog.launch("k", 1, 128, out)  # 4 warps -> 4 warp-scope buffers
        m = dev.synchronize()
        assert m.allocator_allocs == 4
        assert m.allocator_kind == "default"

    def test_fresh_buffers_per_kernel_instance(self):
        src = """
        __global__ void k(int* out, int slot) {
            int h = __dp_buf_acquire(1, 8, 1);
            __dp_buf_push1(h, 1);
            out[slot] = __dp_buf_size(h);
        }
        """
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(2, np.int32))
        prog.launch("k", 1, 1, out, 0)
        prog.launch("k", 1, 1, out, 1)
        dev.synchronize()
        assert list(out.data) == [1, 1]  # second launch got a new buffer


class TestGridBarrier:
    def test_exactly_one_last_block(self):
        src = """
        __global__ void k(int* out) {
            if (threadIdx.x == 0) {
                if (__dp_grid_arrive_last()) {
                    atomicAdd(&out[0], 1);
                }
            }
        }
        """
        _, _, h = run_kernel(src, "k", 8, 32, {"out": np.zeros(1, np.int32)})
        assert h["out"].data[0] == 1

    def test_last_block_sees_all_prior_work(self):
        src = """
        __global__ void k(int* out, int n) {
            int u = blockIdx.x * blockDim.x + threadIdx.x;
            atomicAdd(&out[1], 1);
            __syncthreads();
            if (threadIdx.x == 0) {
                if (__dp_grid_arrive_last()) {
                    out[0] = out[1];
                }
            }
        }
        """
        _, _, h = run_kernel(src, "k", 4, 16, {"out": np.zeros(2, np.int32)},
                             scalars=(64,))
        assert h["out"].data[0] == 64

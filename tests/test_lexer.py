"""Lexer unit + property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("foo_bar42")[:-1]
        assert tok.kind is TokKind.IDENT and tok.text == "foo_bar42"

    def test_keywords_are_not_identifiers(self):
        assert kinds("int") == [TokKind.KEYWORD]
        assert kinds("interior") == [TokKind.IDENT]

    def test_cuda_qualifiers_are_keywords(self):
        assert kinds("__global__ __device__ __shared__") == [TokKind.KEYWORD] * 3

    def test_integer_literals(self):
        assert texts("0 42 100000") == ["0", "42", "100000"]
        assert all(k is TokKind.INT for k in kinds("0 42 100000"))

    def test_hex_literal(self):
        (tok,) = tokenize("0xFF")[:-1]
        assert tok.kind is TokKind.INT and tok.text == "0xFF"

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_float_literals(self):
        assert all(k is TokKind.FLOAT for k in kinds("1.5 0.25f 1e9 2.5e-3"))

    def test_integer_suffixes(self):
        assert kinds("42u 42UL") == [TokKind.INT, TokKind.INT]

    def test_float_suffix_forces_float(self):
        assert kinds("42f") == [TokKind.FLOAT]

    def test_string_literal(self):
        (tok,) = tokenize('"hello world"')[:-1]
        assert tok.kind is TokKind.STRING and tok.text == "hello world"

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\nb\"c"')[:-1]
        assert tok.text == 'a\nb"c'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        (tok,) = tokenize("'x'")[:-1]
        assert tok.kind is TokKind.CHAR and tok.text == "x"


class TestPunctuators:
    def test_launch_chevrons(self):
        assert texts("k<<<1, 2>>>()") == ["k", "<<<", "1", ",", "2", ">>>",
                                          "(", ")"]

    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<b") == ["a", "<", "b"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_arrow(self):
        assert texts("p->x") == ["p", "->", "x"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestCommentsAndPragmas:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_pragma_token_carries_payload(self):
        toks = tokenize("#pragma dp consldt(warp) work(u)\nint a;")
        assert toks[0].kind is TokKind.PRAGMA
        assert toks[0].text == "dp consldt(warp) work(u)"

    def test_include_is_ignored(self):
        assert texts('#include <stdio.h>\nint a;') == ["int", "a", ";"]

    def test_define_is_ignored(self):
        assert texts("#define N 5\nint a;") == ["int", "a", ";"]

    def test_unknown_preprocessor_raises(self):
        with pytest.raises(LexError):
            tokenize("#if 0")

    def test_locations_are_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.col) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.col) == (2, 3)


_ident = st.from_regex(r"[a-zA-Z_][a-zA-Z_0-9]{0,10}", fullmatch=True)


class TestProperties:
    @given(st.lists(_ident, min_size=1, max_size=8))
    def test_identifier_roundtrip(self, names):
        text = " ".join(names)
        toks = tokenize(text)[:-1]
        assert [t.text for t in toks] == names

    @given(st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                    min_size=1, max_size=8))
    def test_int_literal_roundtrip(self, values):
        text = " ".join(str(v) for v in values)
        toks = tokenize(text)[:-1]
        assert [int(t.text) for t in toks] == values
        assert all(t.kind is TokKind.INT for t in toks)

    @given(st.text(alphabet=" \t\n", max_size=20))
    def test_whitespace_only_is_eof(self, ws):
        toks = tokenize(ws)
        assert len(toks) == 1 and toks[0].kind is TokKind.EOF

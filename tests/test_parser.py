"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend.ast_nodes import (
    Assign,
    BinOp,
    Block,
    BuiltinVar,
    Call,
    Cast,
    DeclStmt,
    DoWhile,
    ExprStmt,
    For,
    GlobalDecl,
    If,
    IncDec,
    Index,
    IntLit,
    LaunchExpr,
    PragmaStmt,
    Return,
    Ternary,
    Type,
    UnOp,
    While,
)
from repro.frontend.parser import parse


def parse_kernel_body(body: str, params: str = "int* a, int n"):
    mod = parse(f"__global__ void k({params}) {{ {body} }}")
    return mod.function("k").body.stmts


def parse_expr(expr: str):
    (stmt,) = parse_kernel_body(f"{expr};")
    assert isinstance(stmt, ExprStmt)
    return stmt.expr


class TestDeclarations:
    def test_kernel_qualifiers(self):
        mod = parse("__global__ void k() {}")
        fn = mod.function("k")
        assert fn.is_kernel and not fn.is_device_fn

    def test_device_function(self):
        mod = parse("__device__ int f(int x) { return x; }")
        fn = mod.function("f")
        assert fn.is_device_fn and fn.ret_type == Type("int")

    def test_params_with_pointers(self):
        mod = parse("__global__ void k(int* a, float* b, int n) {}")
        types = [p.type for p in mod.function("k").params]
        assert types == [Type("int", 1), Type("float", 1), Type("int")]

    def test_unsigned_int(self):
        mod = parse("__global__ void k(unsigned int x, unsigned y) {}")
        types = [p.type for p in mod.function("k").params]
        assert types == [Type("uint"), Type("uint")]

    def test_global_device_variable(self):
        mod = parse("__device__ int counter = 0;\n__global__ void k() {}")
        decl = mod.decls[0]
        assert isinstance(decl, GlobalDecl) and decl.name == "counter"

    def test_multi_declarator(self):
        (stmt,) = parse_kernel_body("int x = 1, y = 2;")
        assert isinstance(stmt, DeclStmt)
        assert [d.name for d in stmt.declarators] == ["x", "y"]

    def test_local_array(self):
        (stmt,) = parse_kernel_body("int buf[32];")
        assert stmt.declarators[0].array_size == IntLit(32)

    def test_shared_declaration(self):
        (stmt,) = parse_kernel_body("__shared__ int tile[64];")
        assert stmt.shared

    def test_const_declaration(self):
        (stmt,) = parse_kernel_body("const int x = 5;")
        assert stmt.const


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_kernel_body("if (n > 0) { a[0] = 1; } else a[0] = 2;")
        assert isinstance(stmt, If) and stmt.els is not None

    def test_while(self):
        (stmt,) = parse_kernel_body("while (n) { n = n - 1; }")
        assert isinstance(stmt, While)

    def test_do_while(self):
        (stmt,) = parse_kernel_body("do { n = n - 1; } while (n);")
        assert isinstance(stmt, DoWhile)

    def test_for_with_decl(self):
        (stmt,) = parse_kernel_body("for (int i = 0; i < n; i++) a[i] = i;")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, DeclStmt)
        assert isinstance(stmt.step, IncDec)

    def test_for_headless(self):
        (stmt,) = parse_kernel_body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_void(self):
        (stmt,) = parse_kernel_body("return;")
        assert isinstance(stmt, Return) and stmt.value is None

    def test_nested_blocks(self):
        (stmt,) = parse_kernel_body("{ { a[0] = 1; } }")
        assert isinstance(stmt, Block)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("n + n * n")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_precedence_relational_over_logic(self):
        e = parse_expr("n < 1 && n > 2")
        assert e.op == "&&" and e.left.op == "<" and e.right.op == ">"

    def test_parentheses(self):
        e = parse_expr("(n + 1) * 2")
        assert e.op == "*" and isinstance(e.left, BinOp)

    def test_assignment_right_associative(self):
        mod_body = parse_kernel_body("int x; int y; x = y = n;")
        assign = mod_body[2].expr
        assert isinstance(assign.value, Assign)

    def test_compound_assignment(self):
        e = parse_expr("n += 2")
        assert isinstance(e, Assign) and e.op == "+="

    def test_ternary(self):
        e = parse_expr("n > 0 ? 1 : 2")
        assert isinstance(e, Ternary)

    def test_unary_minus_binds_tighter_than_mul(self):
        e = parse_expr("-n * 2")
        assert e.op == "*" and isinstance(e.left, UnOp)

    def test_address_of_index(self):
        e = parse_expr("atomicAdd(&a[0], 1)")
        assert isinstance(e, Call)
        arg = e.args[0]
        assert isinstance(arg, UnOp) and arg.op == "&"
        assert isinstance(arg.operand, Index)

    def test_builtin_vars(self):
        e = parse_expr("blockIdx.x * blockDim.x + threadIdx.x")
        assert any(isinstance(n, BuiltinVar) for n in [e.right])

    def test_builtin_var_bad_dim(self):
        with pytest.raises(ParseError):
            parse_expr("threadIdx.w")

    def test_cast(self):
        e = parse_expr("(float)n")
        assert isinstance(e, Cast) and e.type == Type("float")

    def test_sizeof_folds_to_int(self):
        e = parse_expr("sizeof(int)")
        assert e == IntLit(4)

    def test_indexing_chains(self):
        e = parse_expr("a[a[n]]")
        assert isinstance(e, Index) and isinstance(e.index, Index)

    def test_postfix_increment(self):
        (s1, s2) = parse_kernel_body("int i = 0; i++;")
        assert isinstance(s2.expr, IncDec) and not s2.expr.prefix


class TestLaunches:
    def test_basic_launch(self):
        stmts = parse_kernel_body("k<<<1, 32>>>(a, n);")
        launch = stmts[0].expr
        assert isinstance(launch, LaunchExpr)
        assert launch.callee == "k"
        assert launch.grid == IntLit(1) and launch.block == IntLit(32)
        assert len(launch.args) == 2

    def test_launch_with_expressions(self):
        stmts = parse_kernel_body("k<<<(n + 127) / 128, 128>>>(a, n);")
        launch = stmts[0].expr
        assert isinstance(launch.grid, BinOp)

    def test_launch_with_shared_and_stream(self):
        stmts = parse_kernel_body("k<<<1, 32, 0, 0>>>(a, n);")
        launch = stmts[0].expr
        assert launch.shared == IntLit(0) and launch.stream == IntLit(0)

    def test_launch_ternary_config(self):
        stmts = parse_kernel_body("k<<<n < 4 ? n : 4, 32>>>(a, n);")
        assert isinstance(stmts[0].expr.grid, Ternary)


class TestPragmaAttachment:
    SRC = """
    __global__ void child(int* a, int u) { a[u] = 1; }
    __global__ void parent(int* a, int n) {
        int u = threadIdx.x;
        #pragma dp consldt(block) work(u)
        if (u < n) {
            child<<<1, 1>>>(a, u);
        }
    }
    """

    def test_pragma_wraps_following_statement(self):
        mod = parse(self.SRC)
        stmts = mod.function("parent").body.stmts
        assert isinstance(stmts[1], PragmaStmt)
        assert isinstance(stmts[1].stmt, If)
        assert stmts[1].directive.granularity == "block"

    def test_foreign_pragma_ignored(self):
        mod = parse("__global__ void k() {\n#pragma unroll\nint x = 1;\n}")
        stmts = mod.function("k").body.stmts
        assert isinstance(stmts[0], DeclStmt)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("__global__ void k() { int x = 1 }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse("__global__ void k() { if (1) {")

    def test_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse("42;")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse("__global__ void k() {\n  int x = ;\n}")
        assert ":2:" in str(exc.value)

"""Allocator tests: functional invariants (no overlap, reuse after free)
plus the cost-model wiring that Fig. 5 depends on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import (
    CudaDefaultAllocator,
    HallocAllocator,
    PreallocPoolAllocator,
    make_allocator,
)
from repro.errors import AllocationError
from repro.sim.specs import CostModel

HEAP_BASE = 0x100000
HEAP_BYTES = 1 << 20


def make(cls, **kw):
    return cls(HEAP_BASE, HEAP_BYTES, op_cycles=100, **kw)


ALL_CLASSES = [CudaDefaultAllocator, HallocAllocator, PreallocPoolAllocator]


@pytest.mark.parametrize("cls", ALL_CLASSES)
class TestCommonBehaviour:
    def test_allocations_in_heap_and_disjoint(self, cls):
        alloc = make(cls)
        spans = []
        for i in range(50):
            nbytes = 16 * (i % 7 + 1)
            addr = alloc.alloc(nbytes)
            assert HEAP_BASE <= addr and addr + nbytes <= HEAP_BASE + HEAP_BYTES
            for lo, hi in spans:
                assert addr + nbytes <= lo or addr >= hi, "overlap!"
            spans.append((addr, addr + nbytes))

    def test_stats_track_allocs(self, cls):
        alloc = make(cls)
        alloc.alloc(64)
        alloc.alloc(64)
        assert alloc.stats.allocs == 2
        assert alloc.stats.cycles == 200

    def test_exhaustion_raises(self, cls):
        alloc = make(cls)
        with pytest.raises(AllocationError):
            for _ in range(10_000):
                alloc.alloc(HEAP_BYTES // 16)

    def test_reset_recovers_all(self, cls):
        alloc = make(cls)
        for _ in range(10):
            alloc.alloc(1024)
        alloc.reset()
        addr = alloc.alloc(1024)
        assert HEAP_BASE <= addr < HEAP_BASE + HEAP_BYTES


class TestCudaDefault:
    def test_free_allows_reuse(self):
        alloc = make(CudaDefaultAllocator)
        a = alloc.alloc(256)
        alloc.free(a)
        b = alloc.alloc(256)
        assert b == a  # first-fit reuses the hole

    def test_free_coalesces_neighbours(self):
        alloc = make(CudaDefaultAllocator)
        a = alloc.alloc(256)
        b = alloc.alloc(256)
        c = alloc.alloc(256)
        alloc.free(a)
        alloc.free(b)
        # a+b coalesced: a 512-byte block fits where neither hole alone would
        d = alloc.alloc(512)
        assert d == a
        alloc.free(c)
        alloc.free(d)
        assert len(alloc.free_list) == 1  # fully coalesced heap

    def test_double_free_raises(self):
        alloc = make(CudaDefaultAllocator)
        a = alloc.alloc(64)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    @given(st.lists(st.tuples(st.integers(1, 2048), st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_no_overlap_with_frees(self, ops):
        alloc = make(CudaDefaultAllocator)
        live = {}
        for nbytes, do_free in ops:
            if do_free and live:
                addr = next(iter(live))
                alloc.free(addr)
                del live[addr]
            else:
                addr = alloc.alloc(nbytes)
                size = alloc.allocated[addr]
                for other, osize in live.items():
                    assert addr + size <= other or addr >= other + osize
                live[addr] = size
        # total free + live bytes == heap bytes
        free_bytes = sum(n for _, n in alloc.free_list)
        live_bytes = sum(live.values())
        assert free_bytes + live_bytes == HEAP_BYTES


class TestHalloc:
    def test_size_classes_are_powers_of_two(self):
        assert HallocAllocator._size_class(17) == 32
        assert HallocAllocator._size_class(16) == 16
        assert HallocAllocator._size_class(100) == 128

    def test_small_free_reuses_chunk(self):
        alloc = make(HallocAllocator)
        a = alloc.alloc(100)
        alloc.free(a)
        b = alloc.alloc(100)
        assert b == a  # LIFO free stack

    def test_large_allocations_fall_back(self):
        alloc = make(HallocAllocator)
        a = alloc.alloc(100_000)  # > max_small
        assert a >= alloc.small_limit

    def test_double_free_raises(self):
        alloc = make(HallocAllocator)
        a = alloc.alloc(64)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)


class TestPreallocPool:
    def test_bump_monotone(self):
        alloc = make(PreallocPoolAllocator)
        addrs = [alloc.alloc(64) for _ in range(10)]
        assert addrs == sorted(addrs)

    def test_free_is_noop(self):
        alloc = make(PreallocPoolAllocator)
        a = alloc.alloc(64)
        alloc.free(a)
        b = alloc.alloc(64)
        assert b != a  # no reuse until reset

    def test_pool_exhaustion_message_mentions_totalSize(self):
        alloc = make(PreallocPoolAllocator)
        with pytest.raises(AllocationError, match="totalSize"):
            alloc.alloc(2 * HEAP_BYTES)


class TestFactory:
    def test_cost_model_prices(self):
        cost = CostModel()
        a = make_allocator("default", HEAP_BASE, HEAP_BYTES, cost)
        b = make_allocator("halloc", HEAP_BASE, HEAP_BYTES, cost)
        c = make_allocator("custom", HEAP_BASE, HEAP_BYTES, cost)
        assert a.op_cycles == cost.malloc_default_cycles
        assert b.op_cycles == cost.malloc_halloc_cycles
        assert c.op_cycles == cost.malloc_prealloc_cycles
        assert a.op_cycles > b.op_cycles > c.op_cycles  # Fig. 5's premise

    def test_aliases(self):
        cost = CostModel()
        assert make_allocator("pre-alloc", HEAP_BASE, HEAP_BYTES, cost).kind == "custom"
        assert make_allocator("malloc", HEAP_BASE, HEAP_BYTES, cost).kind == "default"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_allocator("arena", HEAP_BASE, HEAP_BYTES, CostModel())

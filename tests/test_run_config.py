"""The unified RunConfig value and its compatibility guarantees.

Three things are under test: (1) construction-time canonicalization —
two configs describing the same run compare and hash equal, whatever
spelling built them; (2) the frozen-payload run-key regression — adding
the ``oracle`` axis (like ``workload`` and ``backend`` before it) must
leave every pre-existing content address byte-identical, with no
STORE_FORMAT bump; (3) the entry points — ``App.run(RunConfig)``,
``ExperimentRunner.run_config``, the service wire format, and the CLI's
``--oracle`` flag — all lower onto the same cache entries as the legacy
per-axis keywords they subsume.
"""

import dataclasses
import hashlib
import json

import pytest

from repro import __version__
from repro.apps import get_app
from repro.oracle import OracleError
from repro.experiments import ExperimentRunner, ResultStore
from repro.experiments.plan import RunSpec
from repro.experiments.store import STORE_FORMAT, run_key
from repro.run_config import RunConfig
from repro.sim.occupancy import LaunchConfig
from repro.sim.specs import DEFAULT_COST_MODEL, K20C

SCALE = 0.08


# -- canonicalization ---------------------------------------------------------


class TestCanonicalization:
    def test_strategy_spellings_collapse(self):
        assert (RunConfig(variant="consolidated", strategy="warp")
                == RunConfig(variant="warp-level"))
        assert (hash(RunConfig(variant="consolidated", strategy="grid"))
                == hash(RunConfig(variant="grid-level")))

    def test_default_oracle_and_backend_fold_to_none(self):
        assert RunConfig(oracle="sim") == RunConfig()
        assert RunConfig(oracle="sim").oracle is None
        assert RunConfig(backend="sim") == RunConfig()
        assert RunConfig(backend="sim").backend is None

    def test_non_default_axes_survive(self):
        cfg = RunConfig(variant="flat", oracle="sim-scalar", backend="cpu")
        assert cfg.oracle == "sim-scalar" and cfg.backend == "cpu"
        assert cfg != RunConfig(variant="flat")

    def test_live_launch_config_folds_to_triple(self):
        cfg = RunConfig(variant="warp-level",
                        config=LaunchConfig(mode="explicit", blocks=4,
                                            threads=128))
        assert cfg.config == ("explicit", 4, 128)
        assert cfg == RunConfig(variant="warp-level",
                                config=("explicit", 4, 128))

    def test_threshold_coerced_to_int(self):
        assert RunConfig(threshold="32").threshold == 32
        assert RunConfig(variant="warp-level", threshold=8.0).threshold == 8

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunConfig().variant = "flat"

    def test_contradictory_variant_strategy_rejected(self):
        with pytest.raises(ValueError, match="contradicts"):
            RunConfig(variant="warp-level", strategy="grid")

    def test_learned_oracle_rejected(self):
        with pytest.raises(ValueError, match="tuning prefilter"):
            RunConfig(oracle="surrogate")

    def test_unknown_oracle_rejected(self):
        with pytest.raises(OracleError, match="sim-scalar"):
            RunConfig(oracle="delphi")

    def test_emit_only_backend_rejected(self):
        with pytest.raises(ValueError, match="does not execute"):
            RunConfig(backend="cuda")

    def test_describe_and_axes(self):
        cfg = RunConfig(variant="consolidated", strategy="warp",
                        threshold=16, oracle="sim-scalar")
        text = cfg.describe()
        assert "warp-level" in text and "threshold=16" in text
        assert "oracle=sim-scalar" in text
        assert cfg.axes() == {
            "variant": "warp-level", "strategy": None, "threshold": 16,
            "workload": None, "backend": None, "oracle": "sim-scalar",
            "allocator": "custom", "config": None,
        }

    def test_from_config_maps_every_axis(self):
        cfg = RunConfig(variant="warp-level", threshold=16,
                        workload="kron(seed=9)", oracle="sim-scalar",
                        config=("explicit", 4, 128))
        spec = RunSpec.from_config("sssp", cfg)
        assert spec == RunSpec(
            app="sssp", variant="warp-level", threshold=16,
            workload="kron(seed=9)", oracle="sim-scalar",
            config=("explicit", 4, 128))


# -- run-key backward compatibility -------------------------------------------


class TestRunKeyCompat:
    """The frozen-payload regression: the content address exactly as
    computed before the oracle axis existed, rebuilt by hand field for
    field. The oracle (like workload and backend) enters the payload
    only when set, so STORE_FORMAT stays put and every pre-existing
    store entry keeps its address."""

    KWARGS = dict(
        app="sssp", variant="grid-level", allocator="custom",
        config=None, dataset_fp="ab" * 32, cost=DEFAULT_COST_MODEL,
        spec=K20C, threshold=8, verify=True, version=__version__,
    )

    def _legacy_key(self, **extra):
        payload = {
            "format": STORE_FORMAT,
            "version": self.KWARGS["version"],
            "app": self.KWARGS["app"],
            "variant": self.KWARGS["variant"],
            "strategy": None,
            "allocator": self.KWARGS["allocator"],
            "config": None,
            "dataset": self.KWARGS["dataset_fp"],
            "cost": dataclasses.asdict(DEFAULT_COST_MODEL),
            "spec": dataclasses.asdict(K20C),
            "threshold": 8,
            "verify": True,
        }
        payload.update(extra)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def test_store_format_unchanged(self):
        assert STORE_FORMAT == 2

    def test_omitted_oracle_is_byte_identical_to_legacy(self):
        assert run_key(**self.KWARGS) == self._legacy_key()
        assert run_key(**self.KWARGS, oracle=None) == self._legacy_key()

    def test_oracle_only_enters_when_set(self):
        assert (run_key(**self.KWARGS, oracle="sim-scalar")
                == self._legacy_key(oracle="sim-scalar"))
        assert (run_key(**self.KWARGS, oracle="sim-scalar")
                != run_key(**self.KWARGS))


# -- entry points -------------------------------------------------------------


class TestAppRunEntry:
    def test_run_config_matches_legacy_kwargs(self):
        app = get_app("sssp")
        ds = app.default_dataset(SCALE)
        legacy = app.run("consolidated", strategy="warp", threshold=16,
                         dataset=ds, verify=False)
        unified = app.run(RunConfig(variant="consolidated", strategy="warp",
                                    threshold=16), dataset=ds, verify=False)
        assert (dataclasses.asdict(legacy.metrics)
                == dataclasses.asdict(unified.metrics))
        assert unified.variant == "warp-level"

    def test_clashing_keywords_rejected(self):
        app = get_app("sssp")
        with pytest.raises(ValueError, match="threshold"):
            app.run(RunConfig(variant="warp-level"), threshold=8,
                    scale=SCALE)
        with pytest.raises(ValueError, match="allocator"):
            app.run(RunConfig(variant="warp-level"), allocator="halloc",
                    scale=SCALE)


class TestRunnerEntry:
    def test_run_config_shares_cache_with_legacy(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE,
                                  store=ResultStore(tmp_path / "store"))
        legacy = runner.run("sssp", "warp-level", threshold=16)
        unified = runner.run_config(
            "sssp", RunConfig(variant="consolidated", strategy="warp",
                              threshold=16))
        assert unified is legacy  # one cache entry, not two

    def test_oracle_forks_key_but_not_metrics(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE,
                                  store=ResultStore(tmp_path / "store"))
        vec = runner.run_config("sssp", RunConfig(variant="warp-level"))
        ref = runner.run_config(
            "sssp", RunConfig(variant="warp-level", oracle="sim-scalar"))
        assert ref is not vec  # distinct cache entries (provenance fork)
        assert (dataclasses.asdict(ref.metrics)
                == dataclasses.asdict(vec.metrics))

    def test_explicit_sim_oracle_folds_onto_default(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE,
                                  store=ResultStore(tmp_path / "store"))
        a = runner.run("sssp", "warp-level")
        b = runner.run("sssp", "warp-level", oracle="sim")
        assert b is a


class TestWireFormat:
    def test_oracle_only_on_wire_when_set(self):
        from repro.service.protocol import spec_from_wire, spec_to_wire

        bare = spec_to_wire(RunSpec(app="sssp", variant="flat"))
        assert "oracle" not in bare
        spec = RunSpec.from_config(
            "sssp", RunConfig(variant="warp-level", oracle="sim-scalar"))
        wire = spec_to_wire(spec)
        assert wire["oracle"] == "sim-scalar"
        assert spec_from_wire(wire) == spec

    def test_wire_rejects_non_string_oracle(self):
        from repro.service.protocol import ProtocolError, spec_from_wire

        with pytest.raises(ProtocolError):
            spec_from_wire({"app": "sssp", "variant": "flat", "oracle": 3})


class TestCliOracle:
    def test_run_with_oracle(self, capsys):
        from repro.cli import main

        assert main(["run", "spmv", "grid-level", "--scale", "0.15",
                     "--oracle", "sim-scalar"]) == 0
        out = capsys.readouterr().out
        assert "+sim-scalar" in out and "verified=True" in out

    def test_run_rejects_learned_oracle(self, capsys):
        """``repro run`` only offers exact oracles; the surrogate is a
        tune-time prefilter (argparse choices enforce it)."""
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "spmv", "grid-level", "--oracle", "surrogate"])
        assert "surrogate" in capsys.readouterr().err

    def test_list_shows_oracles(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sim-scalar" in out and "surrogate" in out

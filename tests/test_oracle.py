"""Oracle registry + scalar-vs-vectorized differential harness +
surrogate unit tests.

The headline property of the engine split is *bitwise*: for every
benchmark app under every dynamic-parallelism variant — and for a fuzzed
stream of MiniCUDA programs — the vectorized engine must produce exactly
the scalar reference engine's RunMetrics, field for field, and the same
functional output. The vectorized engine batches the scalar engine's
per-event bookkeeping into array ops without reordering any observable
effect (DESIGN.md §15 carries the equivalence argument), so any
divergence is an engine bug, not noise.

Alongside the harness: oracle registry contract tests, Device engine
selection, and the learned surrogate's unit behaviour (fit/predict
round-trip, rank-correlation floor, cold-log fallback, the
never-predict-full-fidelity rule).
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps import BASIC, BLOCK, GRID, WARP, all_apps, get_app
from repro.errors import SimulationError
from repro.oracle import (
    BUILTIN_ORACLES,
    DEFAULT_ORACLE,
    EngineOracle,
    MIN_TRAIN_ROWS,
    Oracle,
    OracleError,
    SurrogateModel,
    SurrogateOracle,
    TrainingLog,
    available_oracles,
    cost_fingerprint,
    get_oracle,
    register_oracle,
    spearman,
    unregister_oracle,
)
from repro.sim.device import DEFAULT_ENGINE, ENGINES, Device
from repro.sim.engine import FunctionalEngine
from repro.sim.engine_vec import VectorizedEngine
from repro.sim.specs import DEFAULT_COST_MODEL, K20C
from repro.tuning import Candidate, get_objective

from tests.helpers import (
    make_fuzz_kernel,
    minicuda_body,
    run_kernel,
    run_source,
)

DP_VARIANTS = (BASIC, WARP, BLOCK, GRID)

#: small enough to keep the 7 apps x 4 variants x 2 engines matrix in
#: test time, large enough that every app actually delegates work
SCALE = 0.08


# -- registry contract --------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert available_oracles() == ("sim", "sim-scalar", "surrogate")
        assert tuple(o.name for o in BUILTIN_ORACLES) == available_oracles()
        assert DEFAULT_ORACLE == "sim"

    def test_builtin_shapes(self):
        sim = get_oracle("sim")
        assert sim.exact and sim.engine == "vectorized"
        scalar = get_oracle("sim-scalar")
        assert scalar.exact and scalar.engine == "scalar"
        surrogate = get_oracle("surrogate")
        assert not surrogate.exact and surrogate.engine is None

    def test_get_oracle_instance_passthrough(self):
        sim = get_oracle("sim")
        assert get_oracle(sim) is sim

    def test_unknown_oracle_lists_available(self):
        with pytest.raises(OracleError, match="surrogate"):
            get_oracle("crystal-ball")

    def test_register_validates_and_replaces(self):
        fake = EngineOracle("fake", "scalar", "test double")
        register_oracle(fake)
        try:
            assert "fake" in available_oracles()
            with pytest.raises(ValueError, match="already registered"):
                register_oracle(fake)
            register_oracle(fake, replace=True)
        finally:
            unregister_oracle("fake")
        assert "fake" not in available_oracles()
        with pytest.raises(KeyError):
            unregister_oracle("fake")

    def test_register_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            register_oracle(EngineOracle("bad", "quantum", "nope"))

    def test_register_rejects_nameless_and_non_oracle(self):
        class Nameless(Oracle):
            summary = "forgot the name"

        with pytest.raises(ValueError, match="name"):
            register_oracle(Nameless())
        with pytest.raises(TypeError, match="Oracle"):
            register_oracle(object())

    def test_default_scorer_is_identity(self):
        """Exact oracles pass the tuner's simulation oracle through
        unchanged; only learned ones wrap it."""
        sentinel = object()
        assert get_oracle("sim").scorer(sentinel) is sentinel
        wrapped = get_oracle("surrogate").scorer(sentinel)
        assert isinstance(wrapped, SurrogateOracle)
        assert wrapped.sim is sentinel


# -- Device engine selection --------------------------------------------------


class TestEngineSelection:
    def test_engines_registered(self):
        assert set(ENGINES) == {"scalar", "vectorized"}
        assert DEFAULT_ENGINE == "vectorized"

    def test_device_selects_engine(self):
        assert isinstance(Device().engine, VectorizedEngine)
        assert isinstance(Device(engine="scalar").engine, FunctionalEngine)
        assert Device(engine="scalar").engine_name == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown sim engine"):
            Device(engine="quantum")

    def test_app_run_rejects_learned_oracle(self):
        with pytest.raises(ValueError, match="tuning prefilter"):
            get_app("sssp").run("flat", scale=SCALE, oracle="surrogate")


# -- the differential harness -------------------------------------------------


APP_KEYS = [a.key for a in all_apps()]


@pytest.fixture(scope="module")
def datasets():
    return {key: get_app(key).default_dataset(SCALE) for key in APP_KEYS}


@pytest.mark.parametrize("key", APP_KEYS)
@pytest.mark.parametrize("variant", DP_VARIANTS)
def test_vectorized_engine_matches_scalar(key, variant, datasets):
    """Every app x DP-variant pair: the vectorized engine's RunMetrics
    must equal the scalar reference engine's field for field (bitwise),
    and the functional result element for element."""
    app = get_app(key)
    vec = app.run(variant, dataset=datasets[key], verify=False)
    ref = app.run(variant, dataset=datasets[key], verify=False,
                  oracle="sim-scalar")
    assert vec.oracle is None and ref.oracle == "sim-scalar"
    assert (dataclasses.asdict(vec.metrics)
            == dataclasses.asdict(ref.metrics)), \
        f"vectorized metrics diverged from scalar on {key} [{variant}]"
    np.testing.assert_array_equal(
        vec.result, ref.result,
        err_msg=f"vectorized result diverged from scalar on {key} "
                f"[{variant}]")


_fuzz_body = minicuda_body()


@given(_fuzz_body)
@settings(max_examples=60, deadline=None)
def test_fuzzed_programs_match_scalar(body):
    """>=50 hypothesis-fuzzed MiniCUDA programs (the same space as
    test_fuzz_programs): vectorized-engine output equals scalar-engine
    output exactly, including racy interleaved writes — both engines
    run the identical canonical schedule."""
    src = make_fuzz_kernel(body)
    arrays = [("out", np.arange(8, dtype=np.int32))]
    ref = run_source(src, "fuzz", 1, 8, arrays, (5,),
                     device_factory=lambda: Device(engine="scalar"))
    vec = run_source(src, "fuzz", 1, 8, arrays, (5,),
                     device_factory=lambda: Device(engine="vectorized"))
    np.testing.assert_array_equal(vec[0], ref[0], err_msg=src)


_DP_SRC = """
__global__ void child(int* buf, int* out, int u, int n) {
    out[u] = buf[u % 16] + u;
}
__global__ void parent(int* buf, int* out, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int w = buf[u % 16];
        #pragma dp consldt(block) work(u)
        if (w > 8) {
            child<<<1, 1>>>(buf, out, u, n);
        } else {
            out[u] = 0 - w;
        }
    }
}
"""


@pytest.mark.parametrize("consolidate", [False, True])
def test_dp_template_metrics_match_scalar(consolidate):
    """The Fig. 1 DP template, basic and consolidated: both engines
    agree on the functional output AND the full RunMetrics (cycles,
    launches, buffer traffic) — the profiler counters are part of the
    bitwise contract."""
    from repro.compiler import consolidate_source

    src = _DP_SRC
    if consolidate:
        src = consolidate_source(src, granularity="block").source
    rng = np.random.default_rng(23)
    arrays = {"buf": rng.integers(0, 32, 64).astype(np.int32),
              "out": np.zeros(64, np.int32)}
    runs = {}
    for engine in ("scalar", "vectorized"):
        _, metrics, handles = run_kernel(
            src, "parent", 2, 32,
            {k: v.copy() for k, v in arrays.items()}, (64,),
            device=Device(engine=engine))
        runs[engine] = (metrics, handles["out"].to_numpy())
    ref_metrics, ref_out = runs["scalar"]
    vec_metrics, vec_out = runs["vectorized"]
    assert dataclasses.asdict(vec_metrics) == dataclasses.asdict(ref_metrics)
    np.testing.assert_array_equal(vec_out, ref_out)


# -- the surrogate ------------------------------------------------------------


class TestSpearman:
    def test_monotone_is_one(self):
        assert spearman([1, 2, 3, 4], [10, 20, 40, 80]) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        assert spearman([1, 2, 3, 4], [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_is_nan(self):
        assert math.isnan(spearman([1, 1, 1], [1, 2, 3]))


def _synthetic_rows(n, *, seed=7, workload=None):
    """Training-log rows whose cycles metric is a clean monotone
    function of (threshold, scale) — learnable by a linear model on the
    surrogate's log-space features."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        threshold = int(2 ** (i % 8))
        scale = (0.1, 0.25, 0.5, 1.0)[i % 4]
        strategy = ("warp", "block", "grid")[i % 3]
        cycles = 1e4 * scale * (1 + 0.3 * math.log2(1 + threshold))
        cycles *= 1 + 0.01 * rng.random()
        rows.append({
            "v": 1, "app": "sssp", "workload": workload,
            "device": K20C.name, "cost": "x", "scale": scale,
            "verify": True, "variant": "consolidated",
            "strategy": strategy, "threshold": threshold, "config": None,
            "metrics": {"cycles": cycles,
                        "warp_execution_efficiency": 0.5,
                        "dram_transactions": cycles / 3},
        })
    return rows


class TestSurrogateModel:
    def test_too_few_rows_is_none(self):
        rows = _synthetic_rows(MIN_TRAIN_ROWS - 1)
        assert SurrogateModel.fit(rows, get_objective("cycles"),
                                  default_threshold=32) is None

    def test_min_rows_boundary_fits(self):
        model = SurrogateModel.fit(_synthetic_rows(MIN_TRAIN_ROWS),
                                   get_objective("cycles"),
                                   default_threshold=32)
        assert model is not None and model.n_rows == MIN_TRAIN_ROWS

    def test_fit_predict_rank_correlation(self):
        """Round-trip on held-out axes: predictions must rank the
        candidates essentially like the generating function does."""
        model = SurrogateModel.fit(_synthetic_rows(64),
                                   get_objective("cycles"),
                                   default_threshold=32)
        axes = [("consolidated", "warp", t, None)
                for t in (1, 4, 16, 64, 256)]
        predicted = model.predict_axes(axes, 0.3)
        truth = [1e4 * 0.3 * (1 + 0.3 * math.log2(1 + t))
                 for t in (1, 4, 16, 64, 256)]
        assert spearman(predicted, truth) >= 0.9
        assert (predicted > 0).all()

    def test_maximized_objective_not_log_transformed(self):
        model = SurrogateModel.fit(_synthetic_rows(32),
                                   get_objective("warp-eff"),
                                   default_threshold=32)
        assert model is not None and not model.log_target


class _FakeSim:
    """The slice of SimulationOracle the surrogate consumes, with call
    recording — lets the unit tests pin the delegation rules without
    running any simulation."""

    def __init__(self, scale=0.4):
        self.app = "sssp"
        self.objective = get_objective("cycles")
        self.scale = scale
        self.workload = None
        self.cost = DEFAULT_COST_MODEL
        self.spec = K20C
        self.verify = True
        self.evaluated = []

    def _rung_scale(self, factor):
        from repro.tuning.oracle import MIN_RUNG_SCALE

        return min(self.scale, max(self.scale * factor, MIN_RUNG_SCALE))

    def evaluate(self, candidates, factor=1.0):
        from repro.tuning.oracle import Trial

        self.evaluated.append((len(list(candidates)), factor))
        return [Trial(candidate=c, value=100.0, loss=100.0,
                      scale=self._rung_scale(factor))
                for c in candidates]

    def is_full_fidelity(self, trial):
        return trial.scale == self.scale

    def stats(self):
        return "fake-stats"


class TestSurrogateOracle:
    CANDS = [Candidate(strategy="warp", threshold=t) for t in (2, 16, 128)]

    def _warm_log(self, tmp_path):
        log = TrainingLog(tmp_path / "train.jsonl")
        fp = cost_fingerprint(DEFAULT_COST_MODEL)
        for row in _synthetic_rows(24):
            log.record(app=row["app"], workload=None, device=row["device"],
                       cost=DEFAULT_COST_MODEL, scale=row["scale"],
                       verify=True, variant=row["variant"],
                       strategy=row["strategy"], threshold=row["threshold"],
                       config=None,
                       metrics=type("M", (), row["metrics"]))
        assert len(log.rows(app="sssp", device=K20C.name, cost_fp=fp,
                            verify=True)) == 24
        return log

    def test_cold_log_falls_back_to_sim(self, tmp_path):
        sim = _FakeSim()
        oracle = SurrogateOracle(sim, TrainingLog(tmp_path / "empty.jsonl"))
        trials = oracle.evaluate(self.CANDS, factor=0.25)
        assert len(trials) == 3
        assert oracle.fallbacks == 1 and oracle.predicted == 0
        assert sim.evaluated == [(3, 0.25)]

    def test_no_log_falls_back_to_sim(self):
        oracle = SurrogateOracle(_FakeSim(), training_log=None)
        oracle.evaluate(self.CANDS, factor=0.25)
        assert oracle.fallbacks == 1 and oracle.model() is None

    def test_warm_log_predicts_cheap_rungs(self, tmp_path):
        sim = _FakeSim()
        oracle = SurrogateOracle(sim, self._warm_log(tmp_path))
        trials = oracle.evaluate(self.CANDS, factor=0.25)
        assert oracle.predicted == 3 and oracle.fallbacks == 0
        assert sim.evaluated == []  # nothing simulated
        # predictions carry the rung scale, natural-unit values, and the
        # objective's loss transform
        for t in trials:
            assert t.scale == sim._rung_scale(0.25) < sim.scale
            assert not oracle.is_full_fidelity(t)
            assert t.loss == sim.objective.loss(t.value)
        # the generating function grows with threshold; the model must
        # rank the candidates the same way
        values = [t.value for t in trials]
        assert values == sorted(values)

    def test_surrogate_report_warm(self, tmp_path):
        """The decision trail ``repro tune`` prints: per-rung
        predicted/simulated counts plus the training-set Spearman."""
        sim = _FakeSim()
        oracle = SurrogateOracle(sim, self._warm_log(tmp_path))
        oracle.evaluate(self.CANDS, factor=0.25)
        oracle.evaluate(self.CANDS, factor=1.0)
        rep = oracle.surrogate_report()
        assert rep["oracle"] == "surrogate"
        assert rep["predicted"] == 3 and rep["fallbacks"] == 0
        assert rep["train_rows"] == 24
        assert rep["spearman"] is not None
        assert -1.0 <= rep["spearman"] <= 1.0
        assert [d["mode"] for d in rep["decisions"]] == \
            ["predicted", "simulated"]
        assert all(d["candidates"] == 3 for d in rep["decisions"])

    def test_surrogate_report_cold(self, tmp_path):
        oracle = SurrogateOracle(_FakeSim(),
                                 TrainingLog(tmp_path / "empty.jsonl"))
        oracle.evaluate(self.CANDS, factor=0.25)
        rep = oracle.surrogate_report()
        assert rep["train_rows"] == 0 and rep["spearman"] is None
        assert [d["mode"] for d in rep["decisions"]] == ["fallback"]

    def test_full_fidelity_always_simulated(self, tmp_path):
        """A prediction must never be eligible as the tuner's winner:
        factor=1.0 (and any rung at or above the sim scale) delegates
        even with a warm model."""
        sim = _FakeSim()
        oracle = SurrogateOracle(sim, self._warm_log(tmp_path))
        trials = oracle.evaluate(self.CANDS, factor=1.0)
        assert sim.evaluated == [(3, 1.0)]
        assert oracle.predicted == 0
        assert all(oracle.is_full_fidelity(t) for t in trials)

    def test_mirrors_sim_context(self):
        sim = _FakeSim()
        oracle = SurrogateOracle(sim)
        assert (oracle.app, oracle.objective, oracle.scale,
                oracle.workload, oracle.cost, oracle.spec,
                oracle.verify) == (sim.app, sim.objective, sim.scale,
                                   sim.workload, sim.cost, sim.spec,
                                   sim.verify)
        assert oracle.stats() == "fake-stats"


class TestTrainingLog:
    def test_rows_filter_context_and_skip_torn_lines(self, tmp_path):
        log = TrainingLog(tmp_path / "t.jsonl")
        log.record(app="sssp", workload=None, device=K20C.name,
                   cost=DEFAULT_COST_MODEL, scale=0.2, verify=True,
                   variant="consolidated", strategy="warp", threshold=8,
                   config=("explicit", 4, 128),
                   metrics=type("M", (), {"cycles": 9.0,
                                          "warp_execution_efficiency": 0.5,
                                          "dram_transactions": 3.0}))
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write("{torn json\n")
            fh.write('{"v": 999, "app": "sssp"}\n')
        fp = cost_fingerprint(DEFAULT_COST_MODEL)
        rows = log.rows(app="sssp", device=K20C.name, cost_fp=fp,
                        verify=True)
        assert len(rows) == 1 and rows[0]["config"] == ["explicit", 4, 128]
        # different workload / device / verify contexts see nothing
        assert log.rows(app="sssp", device=K20C.name, cost_fp=fp,
                        verify=True, workload="kron(seed=9)") == []
        assert log.rows(app="sssp", device=K20C.name, cost_fp=fp,
                        verify=False) == []
        assert len(log) == 3  # raw line count, filtering is read-side

    def test_missing_file_is_empty(self, tmp_path):
        log = TrainingLog(tmp_path / "absent.jsonl")
        assert len(log) == 0
        assert log.rows(app="sssp", device=K20C.name, cost_fp="x",
                        verify=True) == []


class TestTunerWiring:
    def test_tuner_builds_surrogate_oracle(self, tmp_path):
        from repro.experiments import ResultStore
        from repro.tuning import Tuner

        store = ResultStore(tmp_path / "store")
        tuner = Tuner(scale=SCALE, store=store, oracle="surrogate")
        oracle = tuner._oracle("sssp", get_objective("cycles"), None)
        assert isinstance(oracle, SurrogateOracle)
        assert oracle.sim.oracle is None  # surrogate sims on the default
        assert oracle.training_log.path.parent == store.root

    def test_tuner_exact_oracle_forks_sim_engine(self, tmp_path):
        from repro.experiments import ResultStore
        from repro.tuning import Tuner

        store = ResultStore(tmp_path / "store")
        tuner = Tuner(scale=SCALE, store=store, oracle="sim-scalar")
        oracle = tuner._oracle("sssp", get_objective("cycles"), None)
        assert not isinstance(oracle, SurrogateOracle)
        assert oracle.oracle == "sim-scalar"

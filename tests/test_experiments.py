"""Experiment-harness tests: runner memoization and figure regeneration at
tiny scale (shape smoke tests; the full-scale claims live in benchmarks/)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    FIGURES,
    fig5_allocators,
    fig7_overall,
    fig8_warp_efficiency,
    fig10_dram,
)
from repro.experiments.reporting import PaperClaim, Table, bar_chart, geomean

SCALE = 0.2


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


class TestRunner:
    def test_memoization(self, runner):
        a = runner.run("spmv", "basic-dp")
        b = runner.run("spmv", "basic-dp")
        assert a is b

    def test_different_variants_not_shared(self, runner):
        a = runner.run("spmv", "basic-dp")
        b = runner.run("spmv", "no-dp")
        assert a is not b

    def test_allocator_in_key(self, runner):
        a = runner.run("spmv", "block-level", allocator="custom")
        b = runner.run("spmv", "block-level", allocator="default")
        assert a is not b

    def test_speedup_helper(self, runner):
        s = runner.speedup_over_basic("spmv", "grid-level")
        assert s > 1.0

    def test_runs_are_verified(self, runner):
        assert runner.run("spmv", "grid-level").checked


class TestReporting:
    def test_table_render_aligns(self):
        t = Table("T", ["a", "bb"], [[1.0, "x"], [2.5, "yy"]])
        text = t.render()
        assert "T" in text and "bb" in text and "2.50" in text

    def test_table_column(self):
        t = Table("T", ["a", "b"], [[1, 2], [3, 4]])
        assert t.column("b") == [2, 4]

    def test_bar_chart(self):
        text = bar_chart(["x", "longer"], [1.0, 10.0])
        assert "#" in text and "longer" in text

    def test_bar_chart_log(self):
        text = bar_chart(["a", "b"], [1.0, 1000.0], log=True)
        assert text.count("\n") == 1

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0

    def test_paper_claim_render(self):
        c = PaperClaim("x", "1", "2", False)
        assert "DIFF" in c.render()
        assert "OK" in PaperClaim("x", "1", "1", True).render()


class TestFigures:
    def test_fig5_shape(self, runner):
        table = fig5_allocators.compute(runner)
        assert table.columns == ["granularity", "default", "halloc",
                                 "pre-alloc", "no-dp"]
        assert len(table.rows) == 3
        # pre-alloc never loses to default at any granularity
        for row in table.rows:
            assert row[3] >= row[1] * 0.9

    def test_fig7_shape(self, runner):
        table = fig7_overall.compute(runner)
        assert len(table.rows) == 8
        apps = [row[0] for row in table.rows[:-1]]
        assert set(apps) == {"SSSP", "SpMV", "PR", "GC", "BFS-Rec", "TH", "TD"}
        for row in table.rows[:-1]:
            assert all(v > 1.0 for v in row[1:]), row

    def test_fig8_efficiency_ordering(self, runner):
        fig8_warp_efficiency.compute(runner)
        claims = fig8_warp_efficiency.claims(runner)
        assert claims[0].holds, claims[0].render()
        assert claims[1].holds, claims[1].render()

    def test_fig9_occupancy_improves(self, runner):
        # the full warp<block<grid ordering needs realistic dataset scale
        # (checked by benchmarks/bench_fig9_occupancy.py); at smoke scale we
        # require the scale-robust part: consolidation lifts occupancy and
        # grid-level lifts it the most
        from repro.apps import all_apps

        apps = [a.key for a in all_apps()]
        avg = {}
        for variant in ("basic-dp", "warp-level", "block-level", "grid-level"):
            vals = [runner.run(k, variant).metrics.achieved_occupancy
                    for k in apps]
            avg[variant] = sum(vals) / len(vals)
        assert avg["basic-dp"] < avg["warp-level"]
        assert avg["basic-dp"] < avg["block-level"]
        assert avg["grid-level"] == max(avg.values())

    def test_fig10_reduction(self, runner):
        table = fig10_dram.compute(runner)
        geo = table.rows[-1]
        assert all(v < 1.0 for v in geo[1:])

    def test_all_figures_registered(self):
        assert set(FIGURES) == {"fig5", "fig6", "fig7", "fig8", "fig9",
                                "fig10", "granularity"}

    def test_fig_main_renders(self, runner):
        text = fig5_allocators.main(runner)
        assert "Fig. 5" in text


class TestFig6:
    def test_fig6_without_exhaustive(self, runner):
        from repro.experiments import fig6_kernel_config

        table = fig6_kernel_config.compute(runner, exhaustive=False)
        assert len(table.rows) == 6
        col = table.columns.index
        for row in table.rows:
            # every KC config must beat basic-dp
            assert row[col("KC_1")] > 1.0

"""Consolidation-strategy layer tests: registry lookup and validation,
custom-strategy registration end-to-end, the strategy axis of the
experiment runner, and a hypothesis property test that *every registered
strategy* preserves program semantics on fuzzed annotated programs
(sharing the expression space of tests/test_fuzz_programs.py)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.common import canonicalize_variant
from repro.compiler import consolidate_all, consolidate_source
from repro.compiler.strategies import (
    WarpStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)
from repro.errors import TransformError
from repro.sim.device import Device

from tests.helpers import minicuda_expr


class TestRegistry:
    def test_builtins_registered_in_paper_order(self):
        assert available_strategies() == ("warp", "block", "grid")

    def test_get_strategy_returns_singleton(self):
        assert get_strategy("warp") is get_strategy("warp")

    def test_strategy_instances_pass_through(self):
        s = get_strategy("block")
        assert get_strategy(s) is s

    def test_unknown_name_lists_available(self):
        with pytest.raises(TransformError, match="warp, block, grid"):
            get_strategy("thread")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(WarpStrategy())

    def test_nameless_strategy_rejected(self):
        class Nameless(WarpStrategy):
            name = ""

        with pytest.raises(ValueError, match="must define a name"):
            register_strategy(Nameless())

    def test_unknown_scope_code_rejected(self):
        class BadScope(WarpStrategy):
            name = "bad-scope"
            gran_code = 7

        with pytest.raises(ValueError, match="gran_code"):
            register_strategy(BadScope())

    def test_bad_concurrency_rejected(self):
        class BadKC(WarpStrategy):
            name = "bad-kc"
            kc_concurrency = 0

        with pytest.raises(ValueError, match="kc_concurrency"):
            register_strategy(BadKC())

    def test_non_strategy_rejected(self):
        with pytest.raises(TypeError):
            register_strategy(object())

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_strategy("never-registered")

    def test_scope_codes_match_runtime(self):
        from repro.sim.dp import GRAN_CODES

        for name in ("warp", "block", "grid"):
            assert get_strategy(name).gran_code == GRAN_CODES[name]

    def test_kc_matches_occupancy_rule(self):
        from repro.sim.occupancy import KC_FOR_GRANULARITY, kc_for

        for name in ("warp", "block", "grid"):
            assert kc_for(name) == get_strategy(name).kc_concurrency
            assert KC_FOR_GRANULARITY[name] == kc_for(name)

    def test_replaced_builtin_carries_its_own_kc(self):
        """The registry, not the static KC table, is the source of truth:
        a builtin replaced via register_strategy(..., replace=True) must
        resolve to its own kc_concurrency."""
        from repro.sim.occupancy import kc_for

        class TunedWarp(WarpStrategy):
            kc_concurrency = 8

        original = get_strategy("warp")
        register_strategy(TunedWarp(), replace=True)
        try:
            assert kc_for("warp") == 8
        finally:
            register_strategy(original, replace=True)
        assert kc_for("warp") == 32

    def test_postwork_only_for_grid(self):
        flags = {n: get_strategy(n).consolidates_postwork
                 for n in ("warp", "block", "grid")}
        assert flags == {"warp": False, "block": False, "grid": True}


# ---------------------------------------------------------------------------
# a custom (plugin) strategy reaches every layer without code changes
# ---------------------------------------------------------------------------

ANNOTATED = """
__global__ void child(int* data, int* out, int u) {
    int deg = data[u];
    int t = threadIdx.x;
    if (t < deg) { atomicAdd(&out[u], t + 1); }
}
__global__ void parent(int* data, int* out, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int deg = data[u];
        #pragma dp consldt(block) work(u)
        if (deg > 6) {
            child<<<1, deg>>>(data, out, u);
        } else {
            for (int i = 0; i < deg; i++) { atomicAdd(&out[u], i + 1); }
        }
    }
}
"""


def run_parent(src, data, n):
    dev = Device()
    prog = dev.load(src)
    d = dev.from_numpy("data", data.copy())
    out = dev.from_numpy("out", np.zeros(n, np.int32))
    prog.launch("parent", 2, 64, d, out, n)
    dev.synchronize()
    return out.to_numpy()


@pytest.fixture
def warp2():
    """A tuned warp variant registered as a plugin strategy."""

    class Warp2Strategy(WarpStrategy):
        name = "warp2"
        kc_concurrency = 8

    strategy = register_strategy(Warp2Strategy())
    yield strategy
    unregister_strategy("warp2")


class TestCustomStrategy:
    def test_compiles_and_names_kernels_after_itself(self, warp2):
        res = consolidate_source(ANNOTATED, granularity="warp2")
        assert res.report.granularity == "warp2"
        assert "child_cons_warp2" in {f.name for f in res.module.kernels()}

    def test_kc_rule_uses_plugin_concurrency(self, warp2):
        from repro.sim.occupancy import kc_config, kc_for
        from repro.sim.specs import K20C

        assert kc_for("warp2") == 8
        res = consolidate_source(ANNOTATED, granularity="warp2")
        assert res.report.config == kc_config(K20C, 8)

    def test_preserves_semantics_on_the_simulator(self, warp2):
        rng = np.random.default_rng(11)
        n = 90
        data = rng.integers(0, 30, n).astype(np.int32)
        baseline = run_parent(ANNOTATED, data, n)
        res = consolidate_source(ANNOTATED, granularity="warp2")
        np.testing.assert_array_equal(run_parent(res.source, data, n),
                                      baseline)

    def test_consolidate_all_includes_plugins(self, warp2):
        results = consolidate_all(ANNOTATED)
        assert set(results) == {"warp", "block", "grid", "warp2"}

    def test_overridden_naming_hook_is_honored_everywhere(self):
        """Child transform and parent transform must agree on the drain
        kernel's name even when a plugin overrides consolidated_name()."""

        class RenamedStrategy(WarpStrategy):
            name = "renamed"

            def consolidated_name(self, child_name):
                return f"{child_name}__drain_{self.name}"

        register_strategy(RenamedStrategy())
        try:
            res = consolidate_source(ANNOTATED, granularity="renamed")
            names = {f.name for f in res.module.kernels()}
            assert "child__drain_renamed" in names
            rng = np.random.default_rng(12)
            n = 80
            data = rng.integers(0, 30, n).astype(np.int32)
            np.testing.assert_array_equal(run_parent(res.source, data, n),
                                          run_parent(ANNOTATED, data, n))
        finally:
            unregister_strategy("renamed")

    def test_runner_keys_plugin_strategy_separately(self, warp2, tmp_path):
        from repro.experiments import ExperimentRunner, ResultStore

        store = ResultStore(tmp_path)
        runner = ExperimentRunner(scale=0.15, store=store)
        a = runner.run("spmv", "consolidated", strategy="warp")
        b = runner.run("spmv", "consolidated", strategy="warp2")
        assert a is not b
        assert a.variant == "warp-level" and a.strategy is None
        assert b.variant == "consolidated" and b.strategy == "warp2"
        assert runner.stats.executed == 2
        assert len(store) == 2


# ---------------------------------------------------------------------------
# the strategy axis: canonicalization and cache keys
# ---------------------------------------------------------------------------

class TestStrategyAxis:
    def test_consolidated_builtin_canonicalizes_to_legacy_variant(self):
        assert canonicalize_variant("consolidated", "warp") == \
            ("warp-level", None)
        assert canonicalize_variant("grid-level", None) == \
            ("grid-level", None)
        assert canonicalize_variant("consolidated", "warp2") == \
            ("consolidated", "warp2")

    def test_redundant_strategy_accepted(self):
        assert canonicalize_variant("block-level", "block") == \
            ("block-level", None)

    def test_contradictory_strategy_rejected(self):
        with pytest.raises(ValueError, match="contradicts"):
            canonicalize_variant("warp-level", "grid")
        with pytest.raises(ValueError, match="does not take"):
            canonicalize_variant("basic-dp", "grid")

    def test_consolidated_shares_cache_with_legacy_variant(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(scale=0.15)
        a = runner.run("spmv", "block-level")
        b = runner.run("spmv", "consolidated", strategy="block")
        assert a is b
        assert runner.stats.executed == 1

    def test_three_strategies_have_distinct_content_keys(self):
        from repro.experiments import ExperimentRunner, RunSpec

        runner = ExperimentRunner(scale=0.15)
        keys = {
            runner._content_key(runner._resolve(
                RunSpec("spmv", "consolidated", strategy=s)))
            for s in ("warp", "block", "grid")
        }
        assert len(keys) == 3

    def test_strategy_field_changes_run_key(self):
        from repro.experiments.store import run_key
        from repro.sim.specs import DEFAULT_COST_MODEL, K20C

        base = dict(app="spmv", variant="consolidated", allocator="custom",
                    config=None, dataset_fp="0" * 64,
                    cost=DEFAULT_COST_MODEL, spec=K20C, threshold=8,
                    verify=True, version="1.0")
        assert run_key(**base, strategy="warp2") != \
            run_key(**base, strategy="warp3")

    def test_strategies_produce_distinct_timings(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(scale=0.15)
        cycles = {s: runner.run("spmv", "consolidated", strategy=s)
                  .metrics.cycles for s in ("warp", "block", "grid")}
        assert len(set(cycles.values())) == 3


class TestPerScopePushPricing:
    def test_wider_scope_costs_more_under_contention_model(self):
        """With the un-aggregated contention knobs enabled, a push into a
        wider-scoped buffer must cost more cycles."""
        from repro.sim.specs import DEFAULT_COST_MODEL, TINY

        cost = DEFAULT_COST_MODEL.scaled(
            push_conflict_warp=1, push_conflict_block=4, push_conflict_grid=16)
        src = """
        __global__ void k(int* out, int gran) {
            int h = __dp_buf_acquire(gran, 64, 1);
            __dp_buf_push1(h, threadIdx.x);
        }
        """
        cycles = {}
        for gran in (0, 1, 2):
            dev = Device(spec=TINY, cost=cost)
            prog = dev.load(src)
            out = dev.from_numpy("out", np.zeros(1, np.int32))
            prog.launch("k", 1, 32, out, gran)
            cycles[gran] = dev.synchronize().cycles
        assert cycles[0] < cycles[1] < cycles[2]

    def test_pushes_are_counted_per_scope(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(scale=0.15)
        m = runner.run("spmv", "consolidated", strategy="grid").metrics
        assert m.buffer_pushes_by_scope.get("grid", 0) == m.buffer_pushes > 0
        assert m.buffers_by_scope.get("grid") == m.buffers_acquired


class TestBarrierStallMetric:
    def test_block_barrier_attributes_stall_to_slow_warp(self):
        src = """
        __global__ void k(int* out, int n) {
            int t = threadIdx.x;
            if (t < 32) {
                for (int i = 0; i < n; i++) { atomicAdd(&out[0], 1); }
            }
            __syncthreads();
            if (t == 0) { out[1] = out[0]; }
        }
        """
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(2, np.int32))
        prog.launch("k", 1, 64, out, 50)
        m = dev.synchronize()
        # warp 1 idles while warp 0 loops 50 times before the barrier
        assert m.barrier_stall_cycles > 0

    def test_balanced_block_has_no_stall(self):
        # pure compute before the barrier: no memory accesses, so both
        # warps arrive at the same cycle (even an atomicAdd would skew
        # them — the second warp L2-hits where the first paid DRAM)
        src = """
        __global__ void k(int* out) {
            int x = threadIdx.x + 1;
            __syncthreads();
            if (threadIdx.x == 0) { out[1] = x; }
        }
        """
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(2, np.int32))
        prog.launch("k", 1, 64, out)
        m = dev.synchronize()
        assert m.barrier_stall_cycles == 0


# ---------------------------------------------------------------------------
# property: every registered strategy preserves program semantics
# ---------------------------------------------------------------------------

SOLO_THREAD_TMPL = """
__global__ void child(int* buf, int* out, int u, int n) {
    out[u] = @EXPR@;
}
__global__ void parent(int* buf, int* out, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int w = buf[u];
        #pragma dp consldt(block) work(u)
        if (w > 8) {
            child<<<1, 1>>>(buf, out, u, n);
        } else {
            out[u] = 0 - w;
        }
    }
}
"""

#: same expression space as tests/test_fuzz_programs.py, over the
#: per-item-isolated atoms a race-free child may read
_child_expr = minicuda_expr(
    atoms=["u", "n", "buf[u]", "buf[u % 16]", "buf[(u + 7) % 16]"])

N = 64


def _run_property_program(src):
    rng = np.random.default_rng(23)
    buf = rng.integers(0, 32, N).astype(np.int32)
    dev = Device()
    prog = dev.load(src)
    b = dev.from_numpy("buf", buf)
    out = dev.from_numpy("out", np.zeros(N, np.int32))
    prog.launch("parent", 2, 32, b, out, N)
    dev.synchronize()
    return out.to_numpy()


@given(_child_expr)
@settings(max_examples=8, deadline=None)
def test_every_strategy_preserves_fuzzed_child_semantics(expr):
    src = SOLO_THREAD_TMPL.replace("@EXPR@", expr)
    baseline = _run_property_program(src)
    for name in available_strategies():
        res = consolidate_source(src, granularity=name)
        got = _run_property_program(res.source)
        np.testing.assert_array_equal(
            got, baseline,
            err_msg=f"strategy {name!r} changed results for {expr!r}")


@given(st.lists(st.integers(min_value=0, max_value=40),
                min_size=8, max_size=80))
@settings(max_examples=8, deadline=None)
def test_every_strategy_preserves_degree_dependent_delegation(degrees):
    """Fuzzed degree distributions decide, per item, whether work is
    delegated to the child or kept inline; every strategy must agree
    with basic-dp on the combined result."""
    n = len(degrees)
    data = np.asarray(degrees, dtype=np.int32)
    baseline = run_parent(ANNOTATED, data, n)
    for name in available_strategies():
        res = consolidate_source(ANNOTATED, granularity=name)
        got = run_parent(res.source, data, n)
        np.testing.assert_array_equal(
            got, baseline,
            err_msg=f"strategy {name!r} changed results for degrees={degrees}")

"""End-to-end consolidation-compiler tests: structure of the generated
CUDA for all three granularities, the three child kinds, recursion and
grid-level postwork extraction."""

import pytest

from repro.compiler import consolidate_source
from repro.errors import TransformError
from repro.frontend.ast_nodes import Call, LaunchExpr, walk
from repro.frontend.parser import parse

SOLO_BLOCK_SRC = """
__global__ void child(int* a, int u) {
    int deg = a[u];
    int t = threadIdx.x;
    if (t < deg) { a[u + 1 + t] = t; }
}
__global__ void parent(int* a, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int deg = a[u];
        #pragma dp consldt(block) work(u)
        if (deg > 2) {
            child<<<1, deg>>>(a, u);
        }
    }
}
"""

SOLO_THREAD_SRC = """
__global__ void child(int* a, int u) { a[u] = a[u] + 1; }
__global__ void parent(int* a, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    #pragma dp consldt(block) work(u)
    if (u < n) {
        child<<<1, 1>>>(a, u);
    }
}
"""

MULTI_BLOCK_SRC = """
__global__ void child(int* a, int u) {
    int deg = a[u];
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < deg;
         i += gridDim.x * blockDim.x) {
        a[u + 1 + i] = i;
    }
}
__global__ void parent(int* a, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int deg = a[u];
        #pragma dp consldt(grid) work(u)
        if (deg > 2) {
            child<<<(deg + 31) / 32, 32>>>(a, u);
        }
    }
}
"""


def kernel_names(result):
    return {f.name for f in result.module.kernels()}


def launches_in(module, fn_name):
    return [n for n in walk(module.function(fn_name))
            if isinstance(n, LaunchExpr)]


def calls_in(module, fn_name, callee):
    return [n for n in walk(module.function(fn_name))
            if isinstance(n, Call) and n.callee == callee]


class TestGeneratedStructure:
    def test_new_kernel_added(self):
        res = consolidate_source(SOLO_BLOCK_SRC)
        assert kernel_names(res) == {"child", "parent", "child_cons_block"}

    def test_original_launch_replaced_by_push(self):
        res = consolidate_source(SOLO_BLOCK_SRC)
        launches = launches_in(res.module, "parent")
        assert len(launches) == 1
        assert launches[0].callee == "child_cons_block"
        # fields: u + synthetic dim
        assert calls_in(res.module, "parent", "__dp_buf_push2")

    def test_designated_thread_guard(self):
        res = consolidate_source(SOLO_BLOCK_SRC, granularity="block")
        assert "__syncthreads()" in res.source
        assert "if (threadIdx.x == 0)" in res.source

    def test_warp_granularity_uses_lane_guard(self):
        res = consolidate_source(SOLO_BLOCK_SRC, granularity="warp")
        assert "__syncwarp()" in res.source
        assert "threadIdx.x % 32 == 0" in res.source
        assert "__syncthreads()" not in res.source

    def test_grid_granularity_uses_global_barrier(self):
        res = consolidate_source(SOLO_BLOCK_SRC, granularity="grid")
        assert "__dp_grid_arrive_last()" in res.source

    def test_empty_buffer_guard(self):
        res = consolidate_source(SOLO_BLOCK_SRC)
        assert "if (__dp_n > 0)" in res.source

    def test_kc_configs_differ_by_granularity(self):
        warp = consolidate_source(SOLO_BLOCK_SRC, granularity="warp")
        block = consolidate_source(SOLO_BLOCK_SRC, granularity="block")
        grid = consolidate_source(SOLO_BLOCK_SRC, granularity="grid")
        assert warp.report.config == (3, 256)
        assert block.report.config == (6, 256)
        assert grid.report.config == (104, 256)

    def test_generated_source_reparses_and_rechecks(self):
        for gran in ("warp", "block", "grid"):
            res = consolidate_source(SOLO_BLOCK_SRC, granularity=gran)
            from repro.frontend.typecheck import check_module

            check_module(parse(res.source), allow_reserved=True)

    def test_report_describe(self):
        res = consolidate_source(SOLO_BLOCK_SRC)
        text = res.report.describe()
        assert "block-level" in text and "solo_block" in text


class TestChildKinds:
    def test_solo_thread_grid_stride_drain(self):
        res = consolidate_source(SOLO_THREAD_SRC)
        text = res.source
        assert "blockIdx.x * blockDim.x + threadIdx.x" in text
        assert "gridDim.x * blockDim.x" in text
        assert res.report.child_kind == "solo_thread"

    def test_solo_block_moldable_wrap(self):
        res = consolidate_source(SOLO_BLOCK_SRC)
        text = res.source
        assert "__dp_dim" in text
        assert "for (int __dp_t = threadIdx.x; __dp_t < __dp_dim; "
        assert res.report.child_kind == "solo_block"

    def test_multi_block_item_loop(self):
        res = consolidate_source(MULTI_BLOCK_SRC)
        assert res.report.child_kind == "multi_block"
        # outer item loop from 0 with stride 1
        assert "for (int __dp_s = 0; __dp_s < __dp_n; __dp_s += 1)" in res.source

    def test_syncthreads_in_solo_child_rejected(self):
        src = SOLO_BLOCK_SRC.replace("a[u + 1 + t] = t;",
                                     "a[u + 1 + t] = t; __syncthreads();")
        with pytest.raises(TransformError, match="syncthreads"):
            consolidate_source(src)


class TestRecursion:
    REC = """
    __global__ void r(int* a, int u, int depth) {
        int deg = a[u];
        int t = threadIdx.x;
        if (t < deg) {
            int c = u + 1 + t;
            int cdeg = a[c];
            #pragma dp consldt(grid) work(c)
            if (cdeg > 0) {
                r<<<1, cdeg>>>(a, c, depth + 1);
            } else {
                a[c] = depth;
            }
        }
    }
    """

    def test_consolidated_kernel_relaunches_itself(self):
        res = consolidate_source(self.REC)
        assert res.report.recursive
        cons_launches = launches_in(res.module, "r_cons_grid")
        assert len(cons_launches) == 1
        assert cons_launches[0].callee == "r_cons_grid"

    def test_host_facing_kernel_launches_consolidated(self):
        res = consolidate_source(self.REC)
        launches = launches_in(res.module, "r")
        assert [ln.callee for ln in launches] == ["r_cons_grid"]

    def test_both_push(self):
        res = consolidate_source(self.REC)
        assert calls_in(res.module, "r", "__dp_buf_push2")
        assert calls_in(res.module, "r_cons_grid", "__dp_buf_push2")

    def test_all_granularities_build(self):
        for gran in ("warp", "block", "grid"):
            res = consolidate_source(self.REC, granularity=gran)
            assert f"r_cons_{gran}" in {f.name for f in res.module.kernels()}


class TestPostwork:
    POST = """
    __global__ void child(int* a, int* flags, int u) {
        int t = threadIdx.x;
        if (t < a[u]) { flags[u] = 1; }
    }
    __global__ void parent(int* a, int* flags, int* count, int n) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        if (u < n) {
            int deg = a[u];
            #pragma dp consldt(grid) work(u)
            if (deg > 2) { child<<<1, deg>>>(a, flags, u); }
        }
        cudaDeviceSynchronize();
        if (u < n) {
            if (flags[u] == 1) { atomicAdd(&count[0], 1); }
        }
    }
    """

    def test_grid_level_extracts_postwork_kernel(self):
        res = consolidate_source(self.POST, granularity="grid")
        names = kernel_names(res)
        assert "parent_post_grid" in names
        assert res.report.postwork_kernel == "parent_post_grid"
        # postwork kernel re-derives `u` from the duplicated pure decl
        assert "blockIdx.x * blockDim.x + threadIdx.x" in res.source

    def test_grid_parent_has_no_inline_postwork(self):
        res = consolidate_source(self.POST, granularity="grid")
        assert not calls_in(res.module, "parent", "atomicAdd")

    def test_last_block_launches_postwork_after_sync(self):
        res = consolidate_source(self.POST, granularity="grid")
        launches = launches_in(res.module, "parent")
        assert [ln.callee for ln in launches] == ["child_cons_grid",
                                                "parent_post_grid"]
        assert calls_in(res.module, "parent", "cudaDeviceSynchronize")

    def test_block_level_keeps_postwork_inline(self):
        res = consolidate_source(self.POST, granularity="block")
        assert res.report.postwork_kernel is None
        assert calls_in(res.module, "parent", "atomicAdd")
        assert calls_in(res.module, "parent", "cudaDeviceSynchronize")

    def test_impure_postwork_dependency_rejected(self):
        # `w` is initialized with an atomic in *prework*; grid-level
        # postwork consolidation cannot duplicate it
        bad = self.POST.replace(
            "int u = blockIdx.x * blockDim.x + threadIdx.x;",
            "int u = blockIdx.x * blockDim.x + threadIdx.x;\n"
            "        int w = atomicAdd(&count[0], 0);",
        ).replace("if (flags[u] == 1)", "if (flags[u] == w + 1)")
        with pytest.raises(TransformError, match="postwork"):
            consolidate_source(bad, granularity="grid")


class TestBufferClauses:
    def test_buffer_type_threaded_through(self):
        src = SOLO_BLOCK_SRC.replace("work(u)",
                                     "buffer(type: halloc) work(u)")
        res = consolidate_source(src)
        assert res.report.buffer_type == "halloc"

    def test_per_buffer_size_literal(self):
        src = SOLO_BLOCK_SRC.replace(
            "work(u)", "buffer(type: custom, perBufferSize: 99) work(u)")
        res = consolidate_source(src)
        assert "99" in res.source

    def test_threads_clause_overrides_config(self):
        src = SOLO_BLOCK_SRC.replace("work(u)", "work(u) threads(64)")
        res = consolidate_source(src)
        assert res.report.config is not None and res.report.config[1] == 64

    def test_blocks_clause_forces_explicit(self):
        src = SOLO_BLOCK_SRC.replace("work(u)", "work(u) blocks(5) threads(64)")
        res = consolidate_source(src)
        assert res.report.config == (5, 64)

    def test_granularity_override_beats_pragma(self):
        res = consolidate_source(SOLO_BLOCK_SRC, granularity="grid")
        assert res.report.granularity == "grid"

    def test_name_collision_rejected(self):
        src = SOLO_BLOCK_SRC + "\n__global__ void child_cons_block(int* a) { a[0] = 1; }"
        with pytest.raises(TransformError, match="already contains"):
            consolidate_source(src)

"""Coalescing and L2/DRAM accounting tests."""

from hypothesis import given, strategies as st

from repro.sim.cache import L2Cache, MemorySystem
from repro.sim.coalesce import coalesce, transactions_for
from repro.sim.specs import CostModel, TINY


class TestCoalesce:
    def test_contiguous_warp_access_is_one_transaction(self):
        addrs = [1024 + 4 * lane for lane in range(32)]
        assert transactions_for(addrs, 4) == 1

    def test_strided_access_explodes(self):
        addrs = [1024 + 128 * lane for lane in range(32)]
        assert transactions_for(addrs, 4) == 32

    def test_unaligned_contiguous_spans_two_segments(self):
        addrs = [1000 + 4 * lane for lane in range(32)]
        assert transactions_for(addrs, 4) == 2

    def test_same_address_coalesces_to_one(self):
        assert transactions_for([512] * 32, 4) == 1

    def test_eight_byte_access_straddling_boundary(self):
        assert transactions_for([124], 8) == 2

    def test_empty(self):
        assert transactions_for([], 4) == 0

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    def test_transaction_count_bounds(self, addrs):
        t = transactions_for(addrs, 4)
        assert 1 <= t <= 2 * len(set(addrs))

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=32))
    def test_segments_cover_all_addresses(self, addrs):
        segments = coalesce(addrs, 4, 128)
        for a in addrs:
            assert a // 128 in segments


class TestL2Cache:
    def test_miss_then_hit(self):
        l2 = L2Cache(size_bytes=4096, line_bytes=128)
        assert l2.probe(10) is False
        assert l2.probe(10) is True

    def test_lru_eviction(self):
        l2 = L2Cache(size_bytes=2 * 128, line_bytes=128, ways=2)
        # one set of 2 ways: fill with segments mapping to set 0
        s = l2.num_sets
        a, b, c = 0, s, 2 * s  # same set
        l2.probe(a)
        l2.probe(b)
        l2.probe(c)  # evicts a (LRU)
        assert l2.probe(b) is True
        assert l2.probe(a) is False

    def test_flush(self):
        l2 = L2Cache(4096, 128)
        l2.probe(1)
        l2.flush()
        assert l2.probe(1) is False


class TestMemorySystem:
    def test_miss_counts_dram_transaction(self):
        ms = MemorySystem(TINY, CostModel())
        cycles = ms.access_segments({1, 2, 3})
        assert ms.counters.dram_transactions == 3
        assert cycles == 3 * CostModel().dram_transaction_cycles

    def test_hit_is_cheaper(self):
        cost = CostModel()
        ms = MemorySystem(TINY, cost)
        ms.access_segments({7})
        cycles = ms.access_segments({7})
        assert cycles == cost.l2_hit_cycles
        assert ms.counters.l2_hits == 1

    def test_overhead_tagging(self):
        ms = MemorySystem(TINY, CostModel())
        ms.charge_overhead("swap", 24)
        ms.charge_overhead("swap", 6)
        ms.charge_overhead("launch-params", 2)
        assert ms.counters.overhead == {"swap": 30, "launch-params": 2}
        assert ms.counters.dram_transactions == 32

    def test_zero_overhead_ignored(self):
        ms = MemorySystem(TINY, CostModel())
        ms.charge_overhead("swap", 0)
        assert ms.counters.dram_transactions == 0

    def test_reset(self):
        ms = MemorySystem(TINY, CostModel())
        ms.access_segments({1})
        ms.reset()
        assert ms.counters.dram_transactions == 0
        assert ms.l2.probe(1) is False

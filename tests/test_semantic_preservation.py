"""Semantic-preservation integration tests.

For a battery of synthetic annotated kernels (covering all child kinds,
launch-in-loop, recursion, postwork and all three granularities), the
compiler-generated consolidated code must produce *exactly* the same
global-memory results as the basic-dp original when both run on the
simulator. This is the strongest property the reproduction offers: the
paper's transforms are not just structurally plausible — they execute.
"""

import numpy as np

from repro.compiler import consolidate_source
from repro.sim.device import Device

from tests.helpers import run_source

GRANULARITIES = ("warp", "block", "grid")


def assert_equivalent(src, kernel, grid, block, arrays, scalars=()):
    baseline = run_source(src, kernel, grid, block, arrays, scalars)
    for gran in GRANULARITIES:
        res = consolidate_source(src, granularity=gran)
        got = run_source(res.source, kernel, grid, block, arrays, scalars)
        for (name, _), b, g in zip(arrays, baseline, got):
            np.testing.assert_array_equal(
                g, b, err_msg=f"{gran}-level consolidation changed {name!r}"
            )


class TestSoloBlock:
    SRC = """
    __global__ void child(int* data, int* out, int u) {
        int deg = data[u];
        int t = threadIdx.x;
        if (t < deg) { atomicAdd(&out[u], t + 1); }
    }
    __global__ void parent(int* data, int* out, int n, int threshold) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        if (u < n) {
            int deg = data[u];
            #pragma dp consldt(block) work(u)
            if (deg > threshold) {
                child<<<1, deg>>>(data, out, u);
            } else {
                for (int i = 0; i < deg; i++) { atomicAdd(&out[u], i + 1); }
            }
        }
    }
    """

    def test_equivalence(self):
        rng = np.random.default_rng(3)
        n = 100
        data = rng.integers(0, 60, n).astype(np.int32)
        out = np.zeros(n, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 2, 64,
                          [("data", data), ("out", out)], scalars=(n, 8))

    def test_equivalence_when_nothing_delegates(self):
        n = 40
        data = np.full(n, 2, dtype=np.int32)  # all below threshold
        out = np.zeros(n, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 1, 64,
                          [("data", data), ("out", out)], scalars=(n, 8))

    def test_equivalence_when_everything_delegates(self):
        n = 40
        data = np.full(n, 33, dtype=np.int32)  # all above threshold
        out = np.zeros(n, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 1, 64,
                          [("data", data), ("out", out)], scalars=(n, 0))


class TestSoloThread:
    SRC = """
    __global__ void child(int* out, int u) {
        out[u] = out[u] * 2 + 1;
    }
    __global__ void parent(int* out, int n) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        #pragma dp consldt(block) work(u)
        if (u < n) {
            child<<<1, 1>>>(out, u);
        }
    }
    """

    def test_equivalence(self):
        out = np.arange(80, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 2, 64, [("out", out)],
                          scalars=(80,))


class TestMultiBlock:
    SRC = """
    __global__ void child(int* data, int* out, int u) {
        int deg = data[u];
        for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < deg;
             i += gridDim.x * blockDim.x) {
            atomicAdd(&out[u], i);
        }
    }
    __global__ void parent(int* data, int* out, int n) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        if (u < n) {
            int deg = data[u];
            #pragma dp consldt(grid) work(u)
            if (deg > 16) {
                child<<<(deg + 31) / 32, 32>>>(data, out, u);
            } else {
                for (int i = 0; i < deg; i++) { atomicAdd(&out[u], i); }
            }
        }
    }
    """

    def test_equivalence(self):
        rng = np.random.default_rng(4)
        n = 64
        data = rng.integers(0, 100, n).astype(np.int32)
        out = np.zeros(n, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 1, 64,
                          [("data", data), ("out", out)], scalars=(n,))


class TestLaunchInLoop:
    SRC = """
    __global__ void child(int* out, int c) {
        atomicAdd(&out[c], 1);
    }
    __global__ void parent(int* out, int n) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        if (u < n) {
            #pragma dp consldt(block) work(c)
            for (int i = 0; i < u % 5; i++) {
                int c = (u + i) % n;
                child<<<1, 1>>>(out, c);
            }
        }
    }
    """

    def test_equivalence(self):
        out = np.zeros(60, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 1, 60, [("out", out)],
                          scalars=(60,))


class TestRecursion:
    # sums values over a complete binary tree laid out in an array
    SRC = """
    __global__ void walk(int* values, int* total, int u, int n) {
        int t = threadIdx.x;
        if (t < 2) {
            int c = 2 * u + 1 + t;
            if (c < n) {
                atomicAdd(&total[0], values[c]);
                int two = 2;
                #pragma dp consldt(grid) work(c)
                if (2 * c + 1 < n) {
                    walk<<<1, two>>>(values, total, c, n);
                }
            }
        }
    }
    """

    def test_equivalence(self):
        n = 127
        values = np.arange(1, n + 1, dtype=np.int32)
        total = np.zeros(1, dtype=np.int32)
        assert_equivalent(self.SRC, "walk", 1, 2,
                          [("values", values), ("total", total)],
                          scalars=(0, n))

    def test_total_is_correct(self):
        n = 63
        values = np.ones(n, dtype=np.int32)
        dev = Device()
        res = consolidate_source(self.SRC, granularity="grid")
        prog = dev.load(res.source)
        v = dev.from_numpy("values", values)
        t = dev.from_numpy("total", np.zeros(1, np.int32))
        prog.launch("walk", 1, 2, v, t, 0, n)
        dev.synchronize()
        assert t.data[0] == n - 1  # every node except the root


class TestPostworkPreservation:
    SRC = """
    __global__ void child(int* data, int* flags, int u) {
        int t = threadIdx.x;
        if (t < data[u]) { flags[u] = 1; }
    }
    __global__ void parent(int* data, int* flags, int* count, int n) {
        int u = blockIdx.x * blockDim.x + threadIdx.x;
        if (u < n) {
            int deg = data[u];
            #pragma dp consldt(block) work(u)
            if (deg > 4) { child<<<1, deg>>>(data, flags, u); }
        }
        cudaDeviceSynchronize();
        if (u < n) {
            if (flags[u] == 1) { atomicAdd(&count[0], 1); }
        }
    }
    """

    def test_equivalence_with_postwork(self):
        rng = np.random.default_rng(5)
        n = 96
        data = rng.integers(0, 12, n).astype(np.int32)
        flags = np.zeros(n, dtype=np.int32)
        count = np.zeros(1, dtype=np.int32)
        assert_equivalent(self.SRC, "parent", 1, 128,
                          [("data", data), ("flags", flags), ("count", count)],
                          scalars=(n,))

    def test_count_matches_reference(self):
        rng = np.random.default_rng(6)
        n = 96
        data = rng.integers(0, 12, n).astype(np.int32)
        expected = int(np.sum(data > 4))
        for gran in GRANULARITIES:
            res = consolidate_source(self.SRC, granularity=gran)
            (got_data, got_flags, got_count) = run_source(
                res.source, "parent", 1, 128,
                [("data", data), ("flags", np.zeros(n, np.int32)),
                 ("count", np.zeros(1, np.int32))], (n,))
            assert got_count[0] == expected, gran


class TestConfigurationsPreserveSemantics:
    def test_one2one_and_explicit_configs(self):
        from repro.sim.occupancy import LaunchConfig

        src = TestSoloBlock.SRC
        rng = np.random.default_rng(8)
        n = 80
        data = rng.integers(0, 40, n).astype(np.int32)
        out0 = np.zeros(n, dtype=np.int32)
        baseline = run_source(src, "parent", 1, 128,
                              [("data", data), ("out", out0)], (n, 6))
        for cfg in (LaunchConfig(mode="one2one"),
                    LaunchConfig(mode="explicit", blocks=2, threads=32),
                    LaunchConfig(mode="explicit", blocks=200, threads=512)):
            res = consolidate_source(src, granularity="block", config=cfg)
            got = run_source(res.source, "parent", 1, 128,
                             [("data", data), ("out", out0)], (n, 6))
            np.testing.assert_array_equal(got[1], baseline[1], str(cfg))

"""Backend semantics tests: compiled kernels must behave like the C they
were written as. Each test runs a tiny kernel on the simulator and checks
device memory afterwards."""

import numpy as np
import pytest

from repro.errors import CodegenError
from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module
from repro.backend.codegen import compile_module, generate_module_source

from tests.helpers import run_kernel


def out_i32(n=8):
    return {"out": np.zeros(n, dtype=np.int32)}


class TestArithmetic:
    def test_int_division_truncates_toward_zero(self):
        src = """__global__ void k(int* out) {
            out[0] = 7 / 2; out[1] = -7 / 2; out[2] = 7 / -2;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert list(h["out"].data[:3]) == [3, -3, -3]

    def test_modulo_sign_follows_dividend(self):
        src = """__global__ void k(int* out) {
            out[0] = 7 % 3; out[1] = -7 % 3; out[2] = 7 % -3;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert list(h["out"].data[:3]) == [1, -1, 1]

    def test_float_division(self):
        src = """__global__ void k(float* out) { out[0] = 7.0f / 2.0f; }"""
        _, _, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(1, np.float32)})
        assert h["out"].data[0] == pytest.approx(3.5)

    def test_mixed_division_promotes(self):
        src = """__global__ void k(float* out, int n) { out[0] = n / 2.0f; }"""
        _, _, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(1, np.float32)},
                             scalars=(7,))
        assert h["out"].data[0] == pytest.approx(3.5)

    def test_bitwise_and_shifts(self):
        src = """__global__ void k(int* out) {
            out[0] = 12 & 10; out[1] = 12 | 3; out[2] = 12 ^ 10;
            out[3] = 3 << 4; out[4] = 256 >> 3; out[5] = ~0;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert list(h["out"].data[:6]) == [8, 15, 6, 48, 32, -1]

    def test_ternary_and_comparison(self):
        src = """__global__ void k(int* out, int n) {
            out[0] = n > 3 ? 10 : 20;
            out[1] = (n == 5 && n != 4) ? 1 : 0;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32(), scalars=(5,))
        assert list(h["out"].data[:2]) == [10, 1]

    def test_int_truncation_on_assignment(self):
        src = """__global__ void k(int* out) {
            int x = 0;
            x = 7 / 2.0f;
            out[0] = x;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 3

    def test_math_intrinsics(self):
        src = """__global__ void k(float* out) {
            out[0] = sqrtf(16.0f);
            out[1] = fabsf(-2.5f);
            out[2] = powf(2.0f, 10.0f);
            out[3] = min(3.0f, 1.0f);
            out[4] = max(3.0f, 1.0f);
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, {"out": np.zeros(8, np.float32)})
        assert list(h["out"].data[:5]) == [4.0, 2.5, 1024.0, 1.0, 3.0]


class TestControlFlow:
    def test_for_loop(self):
        src = """__global__ void k(int* out) {
            int acc = 0;
            for (int i = 1; i <= 10; i++) acc += i;
            out[0] = acc;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 55

    def test_while_with_break(self):
        src = """__global__ void k(int* out) {
            int i = 0;
            while (true) { i++; if (i == 7) break; }
            out[0] = i;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 7

    def test_do_while_runs_once(self):
        src = """__global__ void k(int* out) {
            int i = 0;
            do { i++; } while (false);
            out[0] = i;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 1

    def test_continue_in_while(self):
        src = """__global__ void k(int* out) {
            int i = 0, acc = 0;
            while (i < 10) { i++; if (i % 2 == 0) continue; acc += i; }
            out[0] = acc;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 25

    def test_continue_in_for_rejected(self):
        src = """__global__ void k(int* out) {
            for (int i = 0; i < 4; i++) { if (i == 2) continue; out[i] = i; }
        }"""
        info = check_module(parse(src))
        with pytest.raises(CodegenError):
            compile_module(info)

    def test_early_return(self):
        src = """__global__ void k(int* out, int n) {
            if (n < 0) return;
            out[0] = 1;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32(), scalars=(-5,))
        assert h["out"].data[0] == 0


class TestMemoryAndThreads:
    def test_thread_indexing(self):
        src = """__global__ void k(int* out) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            out[t] = t * 10;
        }"""
        _, _, h = run_kernel(src, "k", 2, 4, out_i32())
        assert list(h["out"].data) == [0, 10, 20, 30, 40, 50, 60, 70]

    def test_pointer_arithmetic(self):
        src = """__global__ void k(int* out) {
            int* p = out + 2;
            p[0] = 42;
            *(out + 5) = 7;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[2] == 42 and h["out"].data[5] == 7

    def test_local_array(self):
        src = """__global__ void k(int* out) {
            int tmp[4];
            for (int i = 0; i < 4; i++) tmp[i] = i * i;
            for (int i = 0; i < 4; i++) out[i] = tmp[i];
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert list(h["out"].data[:4]) == [0, 1, 4, 9]

    def test_shared_memory_with_barrier(self):
        src = """__global__ void k(int* out, int n) {
            __shared__ int tile[64];
            int t = threadIdx.x;
            tile[t] = t;
            __syncthreads();
            out[t] = tile[(t + 1) % n];
        }"""
        _, _, h = run_kernel(src, "k", 1, 8, out_i32(), scalars=(8,))
        assert list(h["out"].data) == [1, 2, 3, 4, 5, 6, 7, 0]

    def test_shared_scalar(self):
        src = """__global__ void k(int* out) {
            __shared__ int total;
            if (threadIdx.x == 0) total = 100;
            __syncthreads();
            out[threadIdx.x] = total;
        }"""
        _, _, h = run_kernel(src, "k", 1, 4, out_i32())
        assert list(h["out"].data[:4]) == [100] * 4

    def test_compound_assignment_to_global(self):
        src = """__global__ void k(int* out) {
            out[0] = 5;
            out[0] += 3;
            out[0] *= 2;
        }"""
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 16

    def test_global_device_variable(self):
        src = """
        __device__ int counter = 0;
        __global__ void k(int* out) { out[0] = counter; }
        """
        # file-scope globals are not yet materialized as device arrays;
        # reads resolve to their initializer value via the namespace
        info = check_module(parse(src))
        source = generate_module_source(info)
        assert "__mc_k" in source


class TestAtomics:
    def test_atomic_add_from_many_threads(self):
        src = """__global__ void k(int* out) { atomicAdd(&out[0], 1); }"""
        _, _, h = run_kernel(src, "k", 4, 64, out_i32())
        assert h["out"].data[0] == 256

    def test_atomic_returns_old_value(self):
        src = """__global__ void k(int* out) {
            int old = atomicAdd(&out[0], 5);
            out[1 + old / 5] = old;
        }"""
        _, _, h = run_kernel(src, "k", 1, 3, out_i32())
        assert h["out"].data[0] == 15
        assert sorted(h["out"].data[1:4]) == [0, 5, 10]

    def test_atomic_min_max(self):
        src = """__global__ void k(int* out) {
            int t = threadIdx.x;
            atomicMin(&out[0], t);
            atomicMax(&out[1], t);
        }"""
        arrays = {"out": np.array([99, -1, 0, 0], dtype=np.int32)}
        _, _, h = run_kernel(src, "k", 1, 8, arrays)
        assert h["out"].data[0] == 0 and h["out"].data[1] == 7

    def test_atomic_cas(self):
        src = """__global__ void k(int* out) {
            atomicCAS(&out[0], 0, threadIdx.x + 1);
        }"""
        _, _, h = run_kernel(src, "k", 1, 8, out_i32())
        assert h["out"].data[0] == 1  # first lane wins

    def test_float_atomic_add(self):
        src = """__global__ void k(float* out) { atomicAdd(&out[0], 0.5f); }"""
        _, _, h = run_kernel(src, "k", 1, 32, {"out": np.zeros(1, np.float32)})
        assert h["out"].data[0] == pytest.approx(16.0)


class TestDeviceFunctions:
    def test_device_function_call(self):
        src = """
        __device__ int square(int x) { return x * x; }
        __global__ void k(int* out) { out[threadIdx.x] = square(threadIdx.x); }
        """
        _, _, h = run_kernel(src, "k", 1, 5, out_i32())
        assert list(h["out"].data[:5]) == [0, 1, 4, 9, 16]

    def test_device_function_with_memory_access(self):
        src = """
        __device__ int load2(int* p, int i) { return p[i] + p[i + 1]; }
        __global__ void k(int* out) { out[4] = load2(out, 0); }
        """
        arrays = {"out": np.array([10, 20, 0, 0, 0], dtype=np.int32)}
        _, _, h = run_kernel(src, "k", 1, 1, arrays)
        assert h["out"].data[4] == 30

    def test_nested_device_functions(self):
        src = """
        __device__ int inc(int x) { return x + 1; }
        __device__ int inc2(int x) { return inc(inc(x)); }
        __global__ void k(int* out) { out[0] = inc2(40); }
        """
        _, _, h = run_kernel(src, "k", 1, 1, out_i32())
        assert h["out"].data[0] == 42


class TestGeneratedSource:
    def test_source_is_deterministic(self):
        src = "__global__ void k(int* a) { a[0] = 1; }"
        info1 = check_module(parse(src))
        info2 = check_module(parse(src))
        assert generate_module_source(info1) == generate_module_source(info2)

    def test_kernels_table_lists_kernels_only(self):
        src = """
        __device__ int f(int x) { return x; }
        __global__ void k(int* a) { a[0] = f(1); }
        """
        compiled = compile_module(check_module(parse(src)))
        assert set(compiled.kernels) == {"k"}
        assert set(compiled.functions) == {"f", "k"}

"""Tests for the workload subsystem: registry + canonicalization,
generator/loader structural properties (hypothesis), golden-file loader
checks, the dataset cache, the workload axis through the runner and
tuner, cache-key backward compatibility, and the sensitivity harness."""

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import get_app
from repro.data.structures import Graph, Tree
from repro.experiments import ExperimentRunner, RunSpec, WorkPlan
from repro.experiments.store import STORE_FORMAT, run_key
from repro.sim.specs import DEFAULT_COST_MODEL, K20C
from repro.workloads import (
    DatasetCache,
    WorkloadSpec,
    available_workloads,
    canonical_workload,
    dataset_key,
    get_workload,
    incompatibility,
    materialize,
    parse_workload,
    register_workload,
    unregister_workload,
)
from repro.workloads.loaders import (
    load_dimacs_gr,
    load_graph,
    load_matrix_market,
    load_snap_edgelist,
)

FIXTURES = Path(__file__).parent / "fixtures"
SCALE = 0.12

#: one representative scale per generator property check keeps the
#: hypothesis sweep fast while still fuzzing the scaling path
GEN_SCALES = st.floats(0.1, 1.0)


class TestRegistry:
    def test_builtin_workloads_present(self):
        names = available_workloads()
        for expected in ("citeseer", "kron", "uniform", "road", "star",
                         "chain", "bimodal", "tree1", "tree2",
                         "tree-skewed", "tree-balanced", "tree-deep",
                         "usa-tiny"):
            assert expected in names

    def test_kind_filter(self):
        trees = available_workloads("tree")
        assert "tree1" in trees and "citeseer" not in trees

    def test_unknown_workload_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("nope")

    def test_register_requires_spec(self):
        with pytest.raises(TypeError):
            register_workload("not-a-spec")

    def test_duplicate_rejected_unless_replace(self):
        spec = get_workload("star")
        with pytest.raises(ValueError, match="already registered"):
            register_workload(spec)
        register_workload(spec, replace=True)  # no-op

    def test_plugin_workload_end_to_end(self):
        """A registered plugin workload is immediately runnable through
        the experiment runner, like plugin strategies/searches."""
        from repro.workloads.generators import uniform_graph

        spec = WorkloadSpec(
            "plugin-test", "graph", "registry plug-in",
            lambda scale, seed: uniform_graph(scale, seed=seed),
            defaults={"seed": 77})
        register_workload(spec)
        try:
            runner = ExperimentRunner(scale=SCALE)
            run = runner.run("sssp", "basic-dp",
                             workload="plugin-test(seed=78)")
            assert run.checked
            assert run.dataset.startswith("uniform")
        finally:
            unregister_workload("plugin-test")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WorkloadSpec("x", "matrix", "bad", lambda scale: None)


class TestImportOrder:
    def test_workloads_importable_first(self):
        """Regression: importing repro.workloads before anything else
        must not trip the workloads <-> experiments import cycle."""
        import subprocess
        import sys

        for mod in ("repro.workloads", "repro.workloads.loaders",
                    "repro.workloads.cache"):
            proc = subprocess.run(
                [sys.executable, "-c", f"import {mod}"],
                capture_output=True, text=True)
            assert proc.returncode == 0, (mod, proc.stderr)


class TestCanonicalization:
    def test_parse_forms(self):
        assert parse_workload("star") == ("star", {})
        assert parse_workload("citeseer(seed=9)") == ("citeseer",
                                                      {"seed": 9})
        name, params = parse_workload("bimodal(high=64, low=2)")
        assert name == "bimodal" and params == {"high": 64, "low": 2}

    def test_malformed_rejected(self):
        for bad in ("", "a b", "star(seed)", "star(=3)",
                    "star(seed=abc)", "citeseer(seed=1))"):
            with pytest.raises(ValueError):
                parse_workload(bad)

    def test_defaults_collapse(self):
        assert canonical_workload("citeseer(seed=1)") == "citeseer"
        assert canonical_workload("uniform(avg_degree=8,seed=3)") == \
            "uniform"

    def test_params_sorted_and_kept(self):
        assert canonical_workload("bimodal(low=2,high=64)") == \
            canonical_workload("bimodal(high=64,low=2)") == \
            "bimodal(high=64,low=2)"

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            canonical_workload("star(fanout=3)")

    def test_app_defaults_are_canonical(self):
        """Every app's default_workload reference must already be in
        canonical form (the fold-onto-None comparison depends on it)."""
        from repro.apps import all_apps

        for app in all_apps():
            assert canonical_workload(app.default_workload) == \
                app.default_workload, app.key


class TestGeneratorProperties:
    """Every registered generator produces a structurally valid dataset
    at any scale, honouring its declared symmetry and the block-launch
    degree cap."""

    @pytest.mark.parametrize("name", [
        n for n in available_workloads()
        if get_workload(n).source is None])
    @given(scale=GEN_SCALES)
    @settings(max_examples=3, deadline=None)
    def test_valid_and_declared_properties(self, name, scale):
        spec = get_workload(name)
        dataset = spec.build(scale)
        dataset.validate()  # CSR monotonicity / tree multiplicity
        if spec.kind == "graph":
            assert isinstance(dataset, Graph)
            if dataset.num_edges:
                # basic-dp children launch <<<1, deg>>>: one block max
                assert dataset.degrees.max() <= 1023
            if spec.symmetric:
                src = np.repeat(np.arange(dataset.num_nodes),
                                np.diff(dataset.row_ptr))
                fwd = set(zip(src.tolist(), dataset.col_idx.tolist()))
                assert fwd == {(b, a) for a, b in fwd}
        else:
            assert isinstance(dataset, Tree)
            fanout = np.diff(dataset.child_ptr)
            assert fanout.max() <= 1023

    @pytest.mark.parametrize("name", ["road", "star", "chain", "bimodal"])
    def test_deterministic(self, name):
        a = materialize(name, 0.3)
        b = materialize(name, 0.3)
        arrays = [f.name for f in dataclasses.fields(a)
                  if isinstance(getattr(a, f.name), np.ndarray)]
        for field in arrays:
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_builder_bounds_rejected_cleanly(self):
        """Exposed numeric knobs at silly values raise ValueError (the
        CLI's clean-error path), never raw numpy/index errors."""
        with pytest.raises(ValueError, match="depth"):
            materialize("chain(depth=0)", 0.2)
        with pytest.raises(ValueError, match="hub"):
            materialize("star(hubs=0)", 0.2)
        with pytest.raises(ValueError, match="modes"):
            materialize("bimodal(low=0)", 0.2)
        # an oversized high mode clamps to the block limit, not a crash
        g = materialize("bimodal(high=2048)", 0.2)
        assert g.degrees.max() <= 1023

    def test_bimodal_is_bimodal(self):
        g = materialize("bimodal", 0.5)
        d = g.degrees
        assert (d > 64).sum() > 0 and (d <= 8).sum() > len(d) // 2

    def test_road_is_mostly_low_degree(self):
        g = materialize("road", 0.5)
        d = g.degrees
        assert np.median(d) <= 4 and d.max() > 8

    def test_tree_balanced_has_one_fanout(self):
        t = materialize("tree-balanced", 0.5)
        fanout = np.diff(t.child_ptr)
        assert len(set(fanout[fanout > 0].tolist())) == 1

    def test_tree_deep_is_deeper(self):
        assert materialize("tree-deep", 0.3).depth > \
            materialize("tree1", 0.3).depth


class TestLoaderGoldenFiles:
    """Hand-checked expectations for the tiny checked-in fixtures, in
    plain and gzipped form."""

    @pytest.mark.parametrize("suffix", ["", ".gz"])
    def test_dimacs_gr(self, suffix):
        g = load_dimacs_gr(FIXTURES / f"tiny.gr{suffix}")
        g.validate()
        assert g.num_nodes == 4 and g.num_edges == 6
        assert g.row_ptr.tolist() == [0, 2, 3, 5, 6]
        assert g.col_idx.tolist() == [1, 2, 2, 0, 3, 0]
        assert g.weights.tolist() == [3, 9, 1, 9, 2, 5]

    @pytest.mark.parametrize("suffix", ["", ".gz"])
    def test_matrix_market_symmetric(self, suffix):
        g = load_matrix_market(FIXTURES / f"tiny.mtx{suffix}")
        g.validate()
        assert g.num_nodes == 4 and g.num_edges == 8  # mirrored
        assert g.row_ptr.tolist() == [0, 2, 4, 6, 8]
        assert g.col_idx.tolist() == [1, 3, 0, 2, 1, 3, 0, 2]
        assert g.weights.tolist() == [5, 2, 5, 7, 7, 1, 2, 1]
        assert g.weights.dtype == np.int32  # integer field

    @pytest.mark.parametrize("suffix", ["", ".gz"])
    def test_snap_edgelist_compacts_ids(self, suffix):
        g = load_snap_edgelist(FIXTURES / f"tiny_edges.txt{suffix}")
        g.validate()
        assert g.num_nodes == 4  # ids {0,1,2,5} compacted
        assert g.row_ptr.tolist() == [0, 1, 2, 3, 4]
        assert g.col_idx.tolist() == [1, 2, 0, 2]
        assert g.weights.tolist() == [1, 1, 1, 1]

    def test_dispatch_by_suffix(self):
        assert load_graph(FIXTURES / "tiny.gr.gz").num_edges == 6
        assert load_graph(FIXTURES / "tiny.mtx").num_edges == 8
        assert load_graph(FIXTURES / "tiny_edges.txt").num_edges == 4

    def test_gzip_sniffed_by_magic_not_name(self, tmp_path):
        """A gzipped file without the .gz suffix still loads."""
        disguised = tmp_path / "tiny.gr"
        disguised.write_bytes((FIXTURES / "tiny.gr.gz").read_bytes())
        assert load_dimacs_gr(disguised).num_edges == 6

    def test_missing_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.gr"
        bad.write_text("a 1 2 3\n")
        with pytest.raises(ValueError, match="p sp"):
            load_dimacs_gr(bad)
        bad = tmp_path / "bad.mtx"
        bad.write_text("1 1 0\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            load_matrix_market(bad)

    def test_complex_field_rejected(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex "
                        "general\n2 2 1\n1 2 3.7 1.5\n")
        with pytest.raises(ValueError, match="complex"):
            load_matrix_market(path)

    def test_skew_symmetric_mirrors_negated(self, tmp_path):
        path = tmp_path / "skew.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real "
                        "skew-symmetric\n3 3 2\n2 1 4.0\n3 2 1.5\n")
        g = load_matrix_market(path)
        got = dict(zip(zip(
            np.repeat(np.arange(3), np.diff(g.row_ptr)).tolist(),
            g.col_idx.tolist()), g.weights.tolist()))
        assert got[(1, 0)] == 4.0 and got[(0, 1)] == -4.0
        assert got[(2, 1)] == 1.5 and got[(1, 2)] == -1.5

    def test_usa_tiny_workload_registered(self):
        spec = get_workload("usa-tiny")
        assert spec.symmetric and spec.source is not None
        g = materialize("usa-tiny", 1.0)
        assert g.num_nodes == 16 and g.num_edges == 38


class TestLoaderRoundTrip:
    """Property: a random edge set written in each format loads back to
    a validating Graph with the same edges."""

    @given(edges=st.lists(st.tuples(st.integers(0, 11),
                                    st.integers(0, 11),
                                    st.integers(1, 9)),
                          min_size=1, max_size=40))
    @settings(max_examples=15, deadline=None)
    def test_dimacs_round_trip(self, tmp_path_factory, edges):
        tmp = tmp_path_factory.mktemp("rt")
        n = 12
        path = tmp / "g.gr"
        lines = [f"p sp {n} {len(edges)}"]
        lines += [f"a {u + 1} {v + 1} {w}" for u, v, w in edges]
        path.write_text("\n".join(lines) + "\n")
        g = load_dimacs_gr(path)
        g.validate()
        assert g.num_nodes == n
        got = sorted(zip(
            np.repeat(np.arange(n), np.diff(g.row_ptr)).tolist(),
            g.col_idx.tolist(), g.weights.tolist()))
        assert got == sorted(edges)

    @given(edges=st.lists(st.tuples(st.integers(0, 9),
                                    st.integers(0, 9)),
                          min_size=1, max_size=30, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_edgelist_round_trip(self, tmp_path_factory, edges):
        tmp = tmp_path_factory.mktemp("rt")
        path = tmp / "g.txt"
        path.write_text("# header\n" +
                        "".join(f"{u} {v}\n" for u, v in edges))
        g = load_snap_edgelist(path)
        g.validate()
        ids = sorted({x for e in edges for x in e})
        remap = {x: i for i, x in enumerate(ids)}
        got = sorted(zip(
            np.repeat(np.arange(g.num_nodes),
                      np.diff(g.row_ptr)).tolist(),
            g.col_idx.tolist()))
        assert got == sorted((remap[u], remap[v]) for u, v in edges)


class TestDatasetCache:
    def test_materialize_through_cache(self, tmp_path):
        cache = DatasetCache(tmp_path)
        a = materialize("star", 0.2, cache=cache)
        assert len(cache) == 1
        b = materialize("star", 0.2, cache=cache)
        assert np.array_equal(a.col_idx, b.col_idx)
        assert len(cache) == 1

    def test_key_tracks_params_and_scale(self):
        spec = get_workload("star")
        base = dataset_key(spec, spec.resolve_params(), 0.5)
        assert base == dataset_key(spec, spec.resolve_params(), 0.5)
        assert base != dataset_key(spec, spec.resolve_params(), 0.6)
        assert base != dataset_key(
            spec, spec.resolve_params({"hubs": 3}), 0.5)

    def test_file_workload_key_tracks_content_not_scale(self, tmp_path):
        from repro.workloads.loaders import file_workload

        path = tmp_path / "a.gr"
        path.write_text("p sp 2 1\na 1 2 1\n")
        spec = file_workload("tmp-file", path, description="t")
        k1 = dataset_key(spec, {}, 0.5)
        assert k1 == dataset_key(spec, {}, 1.0)  # scale is ignored
        path.write_text("p sp 2 2\na 1 2 1\na 2 1 1\n")
        assert dataset_key(spec, {}, 0.5) != k1  # content is not

    def test_cache_clear_reports_count(self, tmp_path):
        cache = DatasetCache(tmp_path)
        materialize("star", 0.2, cache=cache)
        materialize("chain", 0.2, cache=cache)
        assert cache.clear() == 2 and len(cache) == 0


def _legacy_pr3_run_key(**kw):
    """The exact PR-3 run_key payload, frozen for the byte-compat
    regression below (see run_key's docstring + DESIGN.md §12)."""
    payload = {
        "format": STORE_FORMAT,
        "version": kw["version"],
        "app": kw["app"],
        "variant": kw["variant"],
        "strategy": kw["strategy"],
        "allocator": kw["allocator"],
        "config": list(kw["config"]) if kw["config"] is not None else None,
        "dataset": kw["dataset_fp"],
        "cost": dataclasses.asdict(kw["cost"]),
        "spec": dataclasses.asdict(kw["spec"]),
        "threshold": kw["threshold"],
        "verify": kw["verify"],
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class TestRunnerWorkloadAxis:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(scale=SCALE)

    def test_default_workload_folds_onto_none(self, runner):
        a = runner.run("sssp", "basic-dp")
        b = runner.run("sssp", "basic-dp", workload="citeseer")
        c = runner.run("sssp", "basic-dp", workload="citeseer(seed=1)")
        assert a is b is c
        assert runner.run("spmv", "basic-dp") is \
            runner.run("spmv", "basic-dp", workload="citeseer(seed=21)")

    def test_spellings_of_one_workload_share_entry(self, runner):
        a = runner.run("sssp", "basic-dp", workload="star")
        b = runner.run("sssp", "basic-dp",
                       workload="star(hubs=2,seed=5)")
        assert a is b

    def test_run_keys_byte_identical_when_workload_omitted(self):
        """Acceptance regression: with no workload, run keys must equal
        the PR-3 formula byte for byte (existing caches stay valid)."""
        kw = dict(app="sssp", variant="grid-level", allocator="custom",
                  config=None, dataset_fp="f" * 64,
                  cost=DEFAULT_COST_MODEL, spec=K20C, threshold=8,
                  verify=True, version="1.0.0", strategy=None)
        assert run_key(**kw) == _legacy_pr3_run_key(**kw)
        assert run_key(workload=None, **kw) == _legacy_pr3_run_key(**kw)
        assert run_key(workload="star", **kw) != _legacy_pr3_run_key(**kw)

    def test_workload_and_dataset_are_exclusive(self, runner):
        with pytest.raises(ValueError, match="not both"):
            runner.run_spec(RunSpec("sssp", "basic-dp",
                                    dataset="x", workload="star"))

    def test_kind_and_symmetry_guards(self, runner):
        with pytest.raises(ValueError, match="tree dataset"):
            runner.run("sssp", "basic-dp", workload="tree1")
        with pytest.raises(ValueError, match="symmetric"):
            runner.run("gc", "basic-dp", workload="bimodal")

    def test_depth_guard_for_level_recursion(self, runner):
        assert incompatibility(get_app("bfs_rec"),
                               get_workload("chain")) is not None
        with pytest.raises(ValueError, match="nesting"):
            runner.run("bfs_rec", "basic-dp", workload="chain")

    def test_default_dataset_goes_through_cache(self, tmp_path):
        """Review fix: the app-default workload (the most common
        dataset) must hit the dataset cache too, not only named ones."""
        cache = DatasetCache(tmp_path)
        runner = ExperimentRunner(scale=SCALE, dataset_cache=cache)
        runner.dataset("sssp")
        assert len(cache) == 1
        fresh = ExperimentRunner(scale=SCALE, dataset_cache=cache)
        d = fresh.dataset("sssp")
        assert len(cache) == 1  # served from the cache, not regenerated
        assert np.array_equal(d.col_idx, runner.dataset("sssp").col_idx)

    def test_canonical_for_app_shared_rule(self):
        from repro.workloads import canonical_for_app

        app = get_app("spmv")
        assert canonical_for_app(app, None) is None
        assert canonical_for_app(app, "citeseer(seed=21)") is None
        assert canonical_for_app(app, "star(seed=5)") == "star"

    def test_workload_runs_persist_and_warm_start(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path)
        cache = DatasetCache(tmp_path / "datasets")
        cold = ExperimentRunner(scale=SCALE, store=store,
                                dataset_cache=cache)
        cold.run("sssp", "grid-level", workload="bimodal")
        assert cold.stats.executed == 1
        assert len(cache) == 1  # the materialized bimodal graph

        warm = ExperimentRunner(scale=SCALE, store=store,
                                dataset_cache=cache)
        warm.run("sssp", "grid-level", workload="bimodal")
        assert warm.stats.executed == 0
        assert warm.stats.disk_hits == 1

    def test_parallel_prefetch_with_workloads(self):
        runner = ExperimentRunner(scale=SCALE)
        plan = WorkPlan([
            RunSpec("sssp", "basic-dp", workload="star"),
            RunSpec("sssp", "grid-level", workload="star"),
            RunSpec("sssp", "basic-dp", workload="road"),
        ])
        stats = runner.prefetch(plan, jobs=2)
        assert stats.executed == 3
        assert runner.run("sssp", "basic-dp", workload="star").checked

    def test_six_workloads_run_including_fixture(self):
        """Acceptance: >= 6 registered workloads run end to end for one
        app x variant, one of them loaded from a checked-in file."""
        runner = ExperimentRunner(scale=SCALE)
        for ref in ("citeseer", "uniform", "road", "star", "chain",
                    "bimodal", "usa-tiny"):
            run = runner.run("sssp", "consolidated", workload=ref)
            assert run.checked, ref


class TestTunedWorkloadAxis:
    def test_tuned_key_back_compat(self):
        from repro.tuning.registry import tuned_key

        kw = dict(app="sssp", objective="cycles", spec=K20C,
                  cost=DEFAULT_COST_MODEL, scale=0.5, verify=True,
                  version="1.0.0")
        assert tuned_key(**kw) == tuned_key(workload=None, **kw)
        assert tuned_key(workload="star", **kw) != tuned_key(**kw)

    def test_tuned_config_round_trips_without_workload(self):
        from repro.tuning import Candidate, TunedConfig

        old_style = {
            "app": "sssp", "objective": "cycles",
            "candidate": {"strategy": None, "threshold": None,
                          "kc_x": None, "threads": None, "one2one": False},
            "value": 1.0, "baseline_value": 1.0, "algorithm": "grid",
            "evaluations": 1, "scale": 0.5, "device": "K20c",
            "version": "1.0.0",
        }
        config = TunedConfig.from_json(old_style)
        assert config.workload is None
        assert config.candidate == Candidate()
        again = TunedConfig.from_json(config.to_json())
        assert again == config

    def test_lookup_filters_by_workload(self, tmp_path):
        from repro.tuning import Candidate, TunedConfig, TunedConfigRegistry

        reg = TunedConfigRegistry(tmp_path / "tuned.json")

        def entry(workload, value):
            return TunedConfig(
                app="sssp", objective="cycles", candidate=Candidate(),
                value=value, baseline_value=value, algorithm="grid",
                evaluations=1, scale=0.5, device="K20c",
                version="1.0.0", workload=workload)

        reg.put("k1", entry(None, 100.0))
        reg.put("k2", entry("star", 50.0))
        assert reg.lookup("sssp", "cycles").workload is None
        assert reg.lookup("sssp", "cycles",
                          workload="star").workload == "star"
        assert reg.lookup("sssp", "cycles", workload="road") is None

    def test_tune_and_consume_per_workload(self, tmp_path):
        """End to end: tune on a workload, then the 'tuned' variant with
        the same workload resolves the per-workload entry."""
        from repro.tuning import (ConfigChoice, Tuner,
                                  TunedConfigRegistry, TuningSpace)

        registry = TunedConfigRegistry(tmp_path / "tuned.json")
        space = TuningSpace(strategies=(None, "warp"),
                            thresholds=(None,),
                            configs=(ConfigChoice(),))
        tuner = Tuner(scale=SCALE, registry=registry)
        result = tuner.tune("sssp", algorithm="grid", space=space,
                            workload="star")
        assert result.config.workload == "star"
        # the default-workload slot stays empty: nothing shadows it
        assert registry.lookup("sssp", "cycles") is None

        runner = ExperimentRunner(scale=SCALE, tuned=registry)
        run = runner.run("sssp", "tuned", workload="star")
        assert run.checked
        with pytest.raises(KeyError, match="workload"):
            runner.run("sssp", "tuned", workload="road")

    def test_default_workload_tunes_as_none(self, tmp_path):
        from repro.tuning import (ConfigChoice, Tuner,
                                  TunedConfigRegistry, TuningSpace)

        registry = TunedConfigRegistry(tmp_path / "tuned.json")
        space = TuningSpace(strategies=(None,), thresholds=(None,),
                            configs=(ConfigChoice(),))
        tuner = Tuner(scale=SCALE, registry=registry)
        result = tuner.tune("sssp", algorithm="grid", space=space,
                            workload="citeseer(seed=1)")
        assert result.config.workload is None


class TestSensitivity:
    def test_workloads_for_respects_requirements(self):
        from repro.experiments import input_sensitivity as sens

        sssp = sens.workloads_for(get_app("sssp"))
        assert sssp == [None, "road", "star", "chain", "bimodal"]
        bfs = sens.workloads_for(get_app("bfs_rec"))
        assert bfs == [None, "star"]  # symmetric + shallow only
        th = sens.workloads_for(get_app("th"))
        assert th == [None, "tree-skewed", "tree-balanced", "tree-deep"]

    def test_paper_granularity_parsed_from_pragma(self):
        from repro.experiments import input_sensitivity as sens

        assert sens.paper_granularity(get_app("sssp")) == "grid"

    def test_plan_covers_basic_plus_strategies(self):
        from repro.compiler.strategies import available_strategies
        from repro.experiments import input_sensitivity as sens

        runner = ExperimentRunner(scale=SCALE)
        plan = sens.plan(runner, apps=["bfs_rec"])
        per_workload = 1 + len(available_strategies())
        assert len(plan) == 2 * per_workload

    def test_compute_one_app(self):
        from repro.experiments import input_sensitivity as sens

        runner = ExperimentRunner(scale=SCALE)
        runner.prefetch(sens.plan(runner, apps=["th"]), jobs=2)
        before = runner.stats.executed
        table = sens.compute(runner, apps=["th"])
        assert runner.stats.executed == before  # plan was complete
        assert len(table.rows) == 4
        assert table.rows[0][1].endswith("(default)")
        for claim in sens.claims(table):
            assert claim.render()


class TestWorkloadCli:
    def test_workloads_list(self, capsys):
        from repro.cli import main

        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "usa-tiny" in out and "file-backed" in out
        assert "[default for pagerank, spmv, sssp]" in out

    def test_workloads_info(self, capsys):
        from repro.cli import main

        assert main(["workloads", "info", "star(hubs=3)"]) == 0
        out = capsys.readouterr().out
        assert "canonical : star(hubs=3)" in out

    def test_workloads_gen_and_cache(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["workloads", "gen", "usa-tiny",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "16 nodes" in out and "cached under" in out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "datasets  : 1 cached" in capsys.readouterr().out

    def test_workloads_gen_requires_name(self, capsys):
        from repro.cli import main

        assert main(["workloads", "gen"]) == 2
        assert "needs a workload" in capsys.readouterr().err

    def test_workloads_unknown_name_errors(self, capsys):
        from repro.cli import main

        assert main(["workloads", "info", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_with_workload_warm_start(self, capsys, tmp_path):
        from repro.cli import main

        args = ["run", "sssp", "consolidated", "--workload", "usa-tiny",
                "--scale", "0.1", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1 executed" in cold and "usa-tiny" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ": 0 executed" in warm

    def test_run_incompatible_workload_errors(self, capsys):
        from repro.cli import main

        assert main(["run", "gc", "basic-dp", "--workload", "bimodal",
                     "--scale", "0.1"]) == 2
        assert "symmetric" in capsys.readouterr().err

    def test_sensitivity_command(self, capsys):
        from repro.cli import main

        assert main(["sensitivity", "--apps", "bfs_rec",
                     "--scale", "0.12", "--no-cache", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Input sensitivity" in out
        assert "star" in out

    def test_tune_incompatible_workload_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["tune", "sssp", "--workload", "tree1",
                     "--scale", "0.1", "--no-cache"]) == 2
        assert "tree dataset" in capsys.readouterr().err

    def test_sensitivity_unknown_app_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["sensitivity", "--apps", "nope", "--scale", "0.1",
                     "--no-cache"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_workloads_list_tags_parameterized_defaults(self, capsys):
        from repro.cli import main

        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        kron_line = next(line for line in out.splitlines()
                         if line.startswith("kron "))
        assert "default for" in kron_line  # gc + bfs_rec use kron(seed=N)

    def test_list_shows_workloads(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "workloads" in capsys.readouterr().out

"""Discrete-event timing model tests.

These exercise the scheduler directly with synthetic traces (no MiniCUDA
involved) so each structural rule of DESIGN.md §5 is pinned down."""

from repro.sim.engine import BlockTrace, KernelInstance, LaunchRecord
from repro.sim.specs import CostModel, TINY
from repro.sim.timing import DeviceScheduler


def make_instance(uid, name="k", grid=1, block_dim=32, cycles=1000,
                  parent=None, segments=None):
    inst = KernelInstance(uid=uid, name=name, grid=grid, block_dim=block_dim,
                          args=(), depth=0 if parent is None else parent.depth + 1,
                          parent_uid=None if parent is None else parent.uid,
                          from_device=parent is not None)
    for bx in range(grid):
        trace = BlockTrace(block_idx=bx, num_threads=block_dim,
                           num_warps=(block_dim + 31) // 32)
        trace.segments = list(segments) if segments else [cycles]
        inst.blocks.append(trace)
    if parent is not None:
        parent.children.append(inst)
    return inst


def schedule(roots, spec=TINY, cost=None):
    return DeviceScheduler(spec, cost or CostModel()).run(roots)


class TestBasics:
    def test_single_kernel_makespan(self):
        inst = make_instance(1, cycles=5000)
        result = schedule([inst])
        assert result.makespan >= 5000
        assert result.completion[1] == result.makespan

    def test_host_kernels_serialize(self):
        a = make_instance(1, cycles=1000)
        b = make_instance(2, cycles=1000)
        result = schedule([a, b])
        assert result.completion[2] > result.completion[1] + 999

    def test_blocks_run_in_parallel_across_sms(self):
        # TINY: 2 SMs x 4 blocks => 8 blocks fit at once
        one = make_instance(1, grid=1, cycles=1000)
        eight = make_instance(2, grid=8, cycles=1000)
        r1 = schedule([one])
        r8 = schedule([eight])
        assert r8.makespan < r1.makespan * 2.2

    def test_more_blocks_than_device_waves(self):
        # 32 blocks of 32 threads on TINY: SM thread limit (256) allows 8
        # blocks per SM => 16 resident; two waves needed
        inst = make_instance(1, grid=32, cycles=1000)
        result = schedule([inst])
        assert result.makespan >= 2000


class TestChildLaunches:
    def test_child_completion_gates_parent(self):
        cost = CostModel()
        parent = make_instance(1, cycles=100)
        child = make_instance(2, cycles=5000, parent=parent)
        parent.blocks[0].launches.append(LaunchRecord(0, 50, child))
        result = schedule([parent], cost=cost)
        assert result.completion[1] >= result.completion[2]

    def test_launch_latency_applies(self):
        cost = CostModel()
        parent = make_instance(1, cycles=100)
        child = make_instance(2, cycles=10, parent=parent)
        parent.blocks[0].launches.append(LaunchRecord(0, 0, child))
        result = schedule([parent], cost=cost)
        assert result.completion[2] >= cost.launch_latency_cycles

    def test_dispatch_serialization_queues_many_children(self):
        cost = CostModel()
        parent = make_instance(1, cycles=100)
        n = 20
        for i in range(n):
            child = make_instance(2 + i, cycles=10, parent=parent)
            parent.blocks[0].launches.append(LaunchRecord(0, 0, child))
        result = schedule([parent], cost=cost)
        # the last child cannot start before n dispatch slots have passed
        assert result.makespan >= n * cost.dispatch_serialization_cycles

    def test_concurrency_cap(self):
        # TINY allows 4 concurrent kernels; 8 children of 1 block each
        # (all fit on the device spatially) must still run in 2 batches
        cost = CostModel(dispatch_serialization_cycles=1,
                         launch_latency_cycles=1)
        parent = make_instance(1, cycles=10)
        for i in range(8):
            child = make_instance(2 + i, cycles=10_000, parent=parent)
            parent.blocks[0].launches.append(LaunchRecord(0, 0, child))
        result = schedule([parent], cost=cost)
        assert result.makespan >= 20_000
        assert result.avg_active_kernels <= TINY.max_concurrent_kernels + 1


class TestPendingPool:
    def test_virtual_pool_penalty(self):
        cost = CostModel(dispatch_serialization_cycles=2000,
                         launch_latency_cycles=1)
        parent = make_instance(1, cycles=10)
        # TINY fixed pool = 16; 30 children overflow it while queued
        for i in range(30):
            child = make_instance(2 + i, cycles=10, parent=parent)
            parent.blocks[0].launches.append(LaunchRecord(0, 0, child))
        result = schedule([parent], cost=cost)
        assert result.max_pending > TINY.fixed_pool_size
        assert result.virtual_pool_kernels > 0


class TestDeviceSync:
    def test_devsync_swaps_and_waits(self):
        cost = CostModel()
        parent = make_instance(1, segments=[100, 200])
        child = make_instance(2, cycles=8000, parent=parent)
        parent.blocks[0].launches.append(LaunchRecord(0, 50, child))
        result = schedule([parent], cost=cost)
        assert result.swaps == 1
        # the parent's second segment runs after the child completes
        assert result.completion[1] >= result.completion[2] + 200

    def test_occupancy_integrates_resident_warps(self):
        inst = make_instance(1, grid=8, block_dim=128, cycles=10_000)
        result = schedule([inst])
        # 8 blocks x 4 warps = 32 warps resident of TINY's 16 slots ->
        # capped by what fits; occupancy should be substantial
        assert 0.2 < result.achieved_occupancy <= 1.0

    def test_tiny_kernels_give_low_occupancy(self):
        insts = [make_instance(i + 1, grid=1, block_dim=32, cycles=50)
                 for i in range(4)]
        result = schedule(insts)
        assert result.achieved_occupancy < 0.2

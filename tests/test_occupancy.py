"""Occupancy calculator and KC_X configuration tests (§IV.E)."""

import pytest

from repro.sim.occupancy import (
    DEFAULT_BLOCK_THREADS,
    KC_FOR_GRANULARITY,
    LaunchConfig,
    blocks_per_sm,
    exhaustive_candidates,
    kc_config,
    occupancy_config,
    theoretical_occupancy,
)
from repro.sim.specs import K20C


class TestBlocksPerSM:
    def test_256_threads_on_k20c(self):
        # 2048 threads/SM / 256 = 8 blocks; 64 warps / 8 warps = 8 blocks
        assert blocks_per_sm(K20C, 256) == 8

    def test_tiny_blocks_hit_block_limit(self):
        # 32-thread blocks: thread limit allows 64, but block limit is 16
        assert blocks_per_sm(K20C, 32) == 16

    def test_max_block(self):
        assert blocks_per_sm(K20C, 1024) == 2

    def test_oversized_block(self):
        assert blocks_per_sm(K20C, 2048) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            blocks_per_sm(K20C, 0)


class TestOccupancyConfig:
    def test_full_device_config(self):
        blocks, threads = occupancy_config(K20C, 256)
        assert (blocks, threads) == (8 * 13, 256)

    def test_full_occupancy_at_256(self):
        assert theoretical_occupancy(K20C, 256) == 1.0

    def test_small_blocks_cap_occupancy(self):
        # 16 blocks x 1 warp = 16 warps of 64 slots
        assert theoretical_occupancy(K20C, 32) == pytest.approx(16 / 64)

    def test_oversized_raises(self):
        with pytest.raises(ValueError):
            occupancy_config(K20C, 4096)


class TestKCConfig:
    def test_kc1_is_full_config(self):
        assert kc_config(K20C, 1) == occupancy_config(K20C)

    def test_kc16_divides_blocks(self):
        full, t = occupancy_config(K20C)
        b16, _ = kc_config(K20C, 16)
        assert b16 == max(1, full // 16) == 6

    def test_kc32(self):
        assert kc_config(K20C, 32)[0] == 3

    def test_kc_never_zero_blocks(self):
        assert kc_config(K20C, 10_000)[0] == 1

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            kc_config(K20C, 0)

    def test_paper_granularity_map(self):
        assert KC_FOR_GRANULARITY == {"grid": 1, "block": 16, "warp": 32}


class TestLaunchConfig:
    def test_kc_mode_resolution(self):
        cfg = LaunchConfig(mode="kc")
        assert cfg.resolve(K20C, "grid") == (104, DEFAULT_BLOCK_THREADS)
        assert cfg.resolve(K20C, "block") == (6, DEFAULT_BLOCK_THREADS)
        assert cfg.resolve(K20C, "warp") == (3, DEFAULT_BLOCK_THREADS)

    def test_explicit_mode(self):
        cfg = LaunchConfig(mode="explicit", blocks=7, threads=64)
        assert cfg.resolve(K20C, "grid") == (7, 64)

    def test_explicit_requires_blocks(self):
        with pytest.raises(ValueError):
            LaunchConfig(mode="explicit").resolve(K20C, "grid")

    def test_one2one_defers_blocks(self):
        blocks, threads = LaunchConfig(mode="one2one").resolve(K20C, "grid")
        assert blocks is None

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            LaunchConfig(mode="magic").resolve(K20C, "grid")

    def test_thread_override(self):
        cfg = LaunchConfig(mode="kc", threads=128)
        blocks, threads = cfg.resolve(K20C, "grid")
        assert threads == 128 and blocks == blocks_per_sm(K20C, 128) * 13


class TestExhaustiveCandidates:
    def test_candidates_are_valid(self):
        for blocks, threads in exhaustive_candidates(K20C):
            assert blocks >= 1
            assert threads <= K20C.max_threads_per_block

    def test_candidate_grid_covers_kc_points(self):
        cands = set(exhaustive_candidates(K20C))
        assert (kc_config(K20C, 1)) in cands or len(cands) > 8

"""Tests for :mod:`repro.service`: the wire protocol, the asyncio
daemon (request coalescing, micro-batching, per-scale runners, graceful
drain), both client libraries, and the service-backed tuning path.

The server fixture runs the real daemon — real unix socket, real event
loop — on a background thread against a tmp-path sharded store, so
every test exercises the same code paths ``repro serve`` does.
"""

import asyncio
import socket
import threading

import pytest

from repro.experiments import ExperimentRunner, ResultStore, RunSpec
from repro.service import (AsyncServiceClient, ExperimentService,
                           PROTOCOL_VERSION, ServiceClient, ServiceError)
from repro.service import protocol
from repro.service.metrics import ServiceMetrics, describe_status

SCALE = 0.1


def start_service(tmp_path, **kw):
    """Run an ExperimentService on a background thread; returns
    (service, socket path, thread) once it is accepting connections."""
    kw.setdefault("scale", SCALE)
    kw.setdefault("batch_window", 0.05)
    kw.setdefault("store", ResultStore(tmp_path / "cache"))
    svc = ExperimentService(**kw)
    sock = tmp_path / "svc.sock"
    ready = threading.Event()
    thread = threading.Thread(
        target=svc.run, kwargs=dict(socket_path=sock, ready=ready.set),
        daemon=True)
    thread.start()
    assert ready.wait(15), "service did not come up"
    return svc, sock, thread


def stop_service(sock, thread):
    if thread.is_alive():
        try:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
        except (ServiceError, protocol.ProtocolError):
            pass
        thread.join(15)
    assert not thread.is_alive()


@pytest.fixture()
def service(tmp_path):
    svc, sock, thread = start_service(tmp_path)
    yield svc, sock
    stop_service(sock, thread)


# -- protocol ------------------------------------------------------------------

class TestProtocol:
    def test_spec_round_trip(self):
        from repro.sim.specs import DEFAULT_COST_MODEL

        spec = RunSpec(app="sssp", variant="consolidated", strategy="block",
                       allocator="halloc", config=(1, 13, 128),
                       threshold=32, workload="star",
                       cost=DEFAULT_COST_MODEL.scaled(atomic_cycles=7))
        wire = protocol.spec_to_wire(spec)
        assert protocol.spec_from_wire(wire) == spec

    def test_defaults_stay_off_the_wire(self):
        wire = protocol.spec_to_wire(RunSpec(app="spmv", variant="no-dp"))
        assert wire == {"app": "spmv", "variant": "no-dp"}

    def test_unknown_field_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="grannularity"):
            protocol.spec_from_wire({"app": "sssp", "variant": "basic-dp",
                                     "grannularity": "warp"})

    def test_bad_config_shape_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="config"):
            protocol.spec_from_wire({"app": "sssp", "variant": "basic-dp",
                                     "config": [1, 2]})

    def test_non_scalar_config_elements_rejected(self):
        # a nested list would make the RunSpec unhashable and break the
        # server's in-flight keying — must die at the protocol layer
        with pytest.raises(protocol.ProtocolError, match="config"):
            protocol.spec_from_wire({"app": "sssp", "variant": "basic-dp",
                                     "config": ["moldable", [2], 3]})

    def test_bad_cost_field_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="cost"):
            protocol.spec_from_wire({"app": "sssp", "variant": "basic-dp",
                                     "cost": {"not_a_knob": 3}})

    def test_non_scalar_axis_values_rejected(self):
        # every axis must stay hashable: a list-valued threshold (or a
        # dict-valued cost entry) would make the frozen RunSpec
        # unhashable and kill the server's in-flight keying
        for bad in ({"threshold": [1, 2]}, {"strategy": ["warp"]},
                    {"workload": {"name": "star"}},
                    {"cost": {"atomic_cycles": [1]}}):
            with pytest.raises(protocol.ProtocolError):
                protocol.spec_from_wire({"app": "sssp",
                                         "variant": "basic-dp", **bad})

    def test_unhashable_axis_gets_a_reply_not_a_hang(self, service):
        """The live-reproduced regression: a submit whose spec survives
        parsing but cannot be hashed must be answered with an error."""
        _, sock = service
        replies = _raw_exchange(sock, [
            {"op": "hello", "protocol": PROTOCOL_VERSION},
            {"op": "submit", "id": 7,
             "spec": {"app": "sssp", "variant": "basic-dp",
                      "threshold": [1, 2]}},
        ], expect=2)
        assert replies[1]["ok"] is False

    def test_numpy_scalars_encode(self):
        import numpy as np

        line = protocol.encode({"a": np.int64(3), "b": np.float32(0.5),
                                "c": {"d": [np.bool_(True)]}})
        assert protocol.decode(line) == {"a": 3, "b": 0.5, "c": {"d": [True]}}

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_metrics_rate_properties(self):
        m = ServiceMetrics()
        assert m.dedup_rate == 0.0 and m.cache_hit_rate == 0.0
        m.requests, m.coalesced, m.cache_hits = 8, 2, 4
        assert m.dedup_rate == 0.25
        assert m.cache_hit_rate == 0.5


# -- handshake -----------------------------------------------------------------

def _raw_exchange(sock_path, messages, expect=None):
    """Send raw wire lines; read ``expect`` responses (default: until
    the server hangs up)."""
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10)
    s.connect(str(sock_path))
    fh = s.makefile("rwb")
    for msg in messages:
        fh.write(protocol.encode(msg))
    fh.flush()
    out = []
    while expect is None or len(out) < expect:
        line = fh.readline()
        if not line:
            break
        out.append(protocol.decode(line))
    s.close()
    return out


class TestHandshake:
    def test_version_mismatch_rejected_cleanly(self, service):
        _, sock = service
        replies = _raw_exchange(sock, [{"op": "hello", "protocol": 99},
                                       {"op": "status", "id": 1}])
        # one error reply, then the server hung up (no status reply)
        assert len(replies) == 1
        assert replies[0]["ok"] is False
        assert "protocol" in replies[0]["error"]
        assert str(PROTOCOL_VERSION) in replies[0]["error"]

    def test_non_hello_first_message_rejected(self, service):
        _, sock = service
        replies = _raw_exchange(sock, [{"op": "status", "id": 1}])
        assert len(replies) == 1 and replies[0]["ok"] is False

    def test_hello_reports_server_context(self, service):
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            info = client.server_info
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["scale"] == SCALE
        assert info["device"] == svc.spec.name


# -- the metrics op / feature advertisement (PR 8) -----------------------------

class TestMetricsOp:
    def test_hello_advertises_metrics_feature(self, service):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            assert "metrics" in client.server_info["features"]
            assert client.supports("metrics")
            assert not client.supports("time-travel")

    def test_metrics_round_trip(self, service):
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            client.submit("spmv", "no-dp")
            resp = client.metrics()
        assert resp["metrics"] == svc.metrics.snapshot()
        assert resp["metrics"]["requests"] >= 1
        registry = resp["registry"]
        assert registry["service_requests"]["value"] == \
            resp["metrics"]["requests"]
        # the daemon-only histograms ride along in the same registry
        assert registry["service_request_seconds"]["kind"] == "histogram"
        assert registry["service_batch_size"]["count"] >= 1
        assert resp["text"].startswith("# HELP")
        assert "service_requests" in resp["text"]

    def test_async_client_metrics(self, service):
        _, sock = service

        async def go():
            client = await AsyncServiceClient.connect(socket_path=sock)
            try:
                assert client.supports("metrics")
                return await client.metrics()
            finally:
                await client.close()

        resp = asyncio.run(go())
        assert resp["metrics"]["connections"] >= 1

    def test_v1_exchange_unchanged_for_old_clients(self, service):
        """A pre-PR-8 client speaks exactly this: hello + status on
        protocol 1, never reading ``features``. Both replies must stay
        well-formed v1 responses."""
        _, sock = service
        replies = _raw_exchange(sock, [
            {"op": "hello", "protocol": PROTOCOL_VERSION},
            {"op": "status", "id": 1},
        ], expect=2)
        assert replies[0]["ok"] is True
        assert replies[0]["protocol"] == PROTOCOL_VERSION
        assert replies[1]["ok"] is True
        assert "metrics" in replies[1]  # the v1 status payload, as ever
        assert describe_status(replies[1])  # still renders

    def test_new_client_degrades_against_old_daemon(self):
        """Against a daemon whose hello carries no ``features``, the
        client must refuse the op with a clear error, not send it."""
        client = ServiceClient(socket_path="/nonexistent.sock")
        client._fh = object()  # pretend connected...
        client.server_info = {"ok": True, "protocol": 1}  # ...pre-PR-8
        assert not client.supports("metrics")
        with pytest.raises(ServiceError, match="metrics"):
            client.metrics()

    def test_daemon_trace_written_on_shutdown(self, tmp_path):
        import json

        from repro.telemetry import validate_chrome_trace

        trace = tmp_path / "daemon-trace.json"
        svc, sock, thread = start_service(tmp_path, trace=str(trace))
        try:
            with ServiceClient(socket_path=sock) as client:
                client.submit("spmv", "no-dp")
        finally:
            stop_service(sock, thread)
        with open(trace, encoding="utf-8") as fh:
            obj = json.load(fh)
        assert validate_chrome_trace(obj) > 0
        names = {e["name"] for e in obj["traceEvents"] if e["ph"] == "X"}
        assert {"service.accept", "service.request",
                "service.reply"} <= names


# -- submit / coalescing / batching --------------------------------------------

class TestSubmit:
    def test_cold_then_warm(self, service):
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            cold = client.submit("spmv", "no-dp")
        assert cold.source == "executed"
        assert cold.checked
        assert cold.metrics.cycles > 0
        assert cold.stats.executed == 1
        with ServiceClient(socket_path=sock) as client:
            warm = client.submit("spmv", "no-dp")
        assert warm.source == "cached"
        assert warm.stats.executed == 0
        assert warm.metrics.cycles == cold.metrics.cycles
        assert svc.metrics.executed == 1

    def test_matches_local_runner(self, service, tmp_path):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            remote = client.submit("sssp", "grid-level")
        local = ExperimentRunner(scale=SCALE).run("sssp", "grid-level")
        assert remote.metrics.cycles == local.metrics.cycles
        assert remote.metrics.dram_transactions == \
            local.metrics.dram_transactions

    def test_bad_app_is_clean_and_connection_survives(self, service):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            with pytest.raises(ServiceError, match="nope"):
                client.submit("nope", "basic-dp")
            ok = client.submit("spmv", "no-dp")
        assert ok.source in ("executed", "cached")

    def test_variant_strategy_contradiction_is_clean(self, service):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            with pytest.raises(ServiceError, match="contradicts"):
                client.submit("sssp", "warp-level", strategy="grid")

    def test_missing_tuned_config_is_clean(self, service):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            with pytest.raises(ServiceError, match="tuned"):
                client.submit("sssp", "tuned")

    def test_bad_scale_rejected(self, service):
        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            with pytest.raises(ServiceError, match="scale"):
                client.submit("spmv", "no-dp", scale=-1.0)

    def test_non_numeric_scale_gets_a_reply(self, service):
        """A malformed submit must be answered, never leave the client
        hanging on a silently-dead handler task."""
        _, sock = service
        replies = _raw_exchange(sock, [
            {"op": "hello", "protocol": PROTOCOL_VERSION},
            {"op": "submit", "id": 7,
             "spec": {"app": "spmv", "variant": "no-dp"}, "scale": {}},
            {"op": "submit", "id": 8,
             "spec": {"app": "spmv", "variant": "no-dp"}, "scale": "x"},
        ], expect=3)
        by_id = {r.get("id"): r for r in replies}
        assert by_id[7]["ok"] is False
        assert by_id[8]["ok"] is False

    def test_non_finite_scale_rejected(self, service):
        """NaN never equals itself, so it would poison the in-flight
        and runner maps; it must be rejected at validation."""
        _, sock = service
        replies = _raw_exchange(sock, [
            {"op": "hello", "protocol": PROTOCOL_VERSION},
            {"op": "submit", "id": 1,
             "spec": {"app": "spmv", "variant": "no-dp"},
             "scale": float("nan")},
            {"op": "submit", "id": 2,
             "spec": {"app": "spmv", "variant": "no-dp"},
             "scale": float("inf")},
        ], expect=3)
        by_id = {r.get("id"): r for r in replies}
        assert by_id[1]["ok"] is False and "scale" in by_id[1]["error"]
        assert by_id[2]["ok"] is False and "scale" in by_id[2]["error"]

    def test_failing_spec_does_not_fail_batchmates(self, service,
                                                   monkeypatch):
        """One broken run in a batch: its batchmates still get their
        results (prefetch aborts fall back to per-spec isolation)."""
        svc, sock = service
        real = ExperimentRunner.prefetch

        def flaky(self, specs, jobs=None, executed=None):
            real(self, specs, jobs=jobs, executed=executed)
            raise RuntimeError("injected batch failure")

        monkeypatch.setattr(ExperimentRunner, "prefetch", flaky)
        with ServiceClient(socket_path=sock) as client:
            results = client.submit_many([RunSpec("spmv", "no-dp"),
                                          RunSpec("spmv", "basic-dp")])
        assert [r.checked for r in results] == [True, True]
        assert svc.metrics.failed == 0

    def test_runner_map_is_lru_bounded(self, service):
        """A client sweeping arbitrary scales must not grow the daemon
        by one runner (and its pinned datasets) per distinct float."""
        from repro.service.server import MAX_RUNNERS

        svc, sock = service
        scales = [round(0.05 + 0.01 * i, 3) for i in range(MAX_RUNNERS + 3)]
        with ServiceClient(socket_path=sock) as client:
            for s in scales:
                client.submit("spmv", "no-dp", scale=s)
        assert len(svc._runners) <= MAX_RUNNERS
        # an evicted scale still works (runner is rebuilt, run is cached)
        with ServiceClient(socket_path=sock) as client:
            res = client.submit("spmv", "no-dp", scale=scales[0])
        assert res.source == "cached"
        assert res.stats.executed == 0

    def test_second_daemon_refuses_live_socket(self, service):
        _, sock = service
        other = ExperimentService(scale=SCALE)
        with pytest.raises(RuntimeError, match="already listening"):
            asyncio.run(other.serve(socket_path=sock))

    def test_stale_socket_file_is_replaced(self, tmp_path):
        sock = tmp_path / "svc.sock"
        # a dead daemon's leftover: a bound-then-abandoned socket file
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(sock))
        leftover.close()  # closed without listening: connect refuses
        assert sock.exists()
        svc, sock2, thread = start_service(tmp_path)
        assert sock2 == sock
        try:
            with ServiceClient(socket_path=sock) as client:
                assert client.status()["metrics"]["requests"] == 0
        finally:
            stop_service(sock, thread)

    def test_daemon_does_not_hoard_result_arrays(self, service):
        """With a store attached, the in-process AppRun cache is
        dropped after every batch — a long-lived daemon must not grow
        by one result array per unique run."""
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            client.submit("spmv", "no-dp")
            warm = client.submit("spmv", "no-dp")
        assert svc._runners[SCALE]._cache == {}
        assert warm.source == "cached"
        assert warm.stats.executed == 0

    def test_pipelined_submit_many_dedupes(self, service):
        svc, sock = service
        specs = [RunSpec("spmv", "no-dp"), RunSpec("spmv", "basic-dp"),
                 RunSpec("spmv", "no-dp"), RunSpec("spmv", "basic-dp"),
                 RunSpec("spmv", "no-dp")]
        with ServiceClient(socket_path=sock) as client:
            results = client.submit_many(specs)
        assert len(results) == 5
        # two unique runs executed, duplicates coalesced or cached
        assert svc.metrics.executed == 2
        assert svc.metrics.completed == 5
        by_variant = {r.variant: r.metrics.cycles for r in results}
        for r in results:
            assert r.metrics.cycles == by_variant[r.variant]

    def test_scale_axis_keeps_runs_apart(self, service):
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            a = client.submit("spmv", "no-dp")
            b = client.submit("spmv", "no-dp", scale=0.15)
        assert svc.metrics.executed == 2
        assert a.metrics.cycles != b.metrics.cycles

    def test_status_endpoint(self, service):
        svc, sock = service
        with ServiceClient(socket_path=sock) as client:
            client.submit("spmv", "no-dp")
            payload = client.status()
        assert payload["queue_depth"] == 0
        assert payload["inflight"] == 0
        assert payload["metrics"]["executed"] == 1
        assert payload["store"]["shards"] == svc.store.shards
        assert payload["store"]["entries"] == 1
        # and the human rendering holds the load-bearing counters
        text = describe_status(payload)
        assert "dedup rate" in text and "executed  : 1" in text


class TestConcurrentClients:
    def test_unique_specs_execute_exactly_once(self, service):
        """12 racing clients over 3 unique specs: 3 executions total,
        every client gets the (identical) result."""
        svc, sock = service
        specs = [RunSpec("spmv", "no-dp"), RunSpec("spmv", "basic-dp"),
                 RunSpec("spmv", "grid-level")]
        n = 12
        barrier = threading.Barrier(n)
        results, errors = [None] * n, []

        def worker(i):
            try:
                with ServiceClient(socket_path=sock) as client:
                    barrier.wait(timeout=15)
                    results[i] = client.submit_spec(specs[i % len(specs)])
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        assert all(r is not None and r.checked for r in results)
        assert svc.metrics.executed == len(specs)
        assert svc.metrics.completed == n
        assert svc.metrics.coalesced + svc.metrics.cache_hits == \
            n - len(specs)
        # value-identical responses per spec, regardless of source
        for i, r in enumerate(results):
            assert r.metrics.cycles == results[i % len(specs)].metrics.cycles

    def test_async_client_coalesces_on_one_connection(self, service):
        svc, sock = service

        async def drive():
            client = await AsyncServiceClient.connect(socket_path=sock)
            try:
                spec = RunSpec("spmv", "no-dp")
                return await asyncio.gather(
                    *(client.submit_spec(spec) for _ in range(5)))
            finally:
                await client.close()

        results = asyncio.run(drive())
        sources = sorted(r.source for r in results)
        assert sources == ["coalesced"] * 4 + ["executed"]
        assert svc.metrics.executed == 1
        assert len({r.metrics.cycles for r in results}) == 1


class TestShutdown:
    def test_graceful_shutdown_drains_queue(self, tmp_path):
        """A shutdown racing queued work: every accepted submit still
        gets its result before the server stops."""
        svc, sock, thread = start_service(tmp_path, batch_window=0.5)
        specs = [RunSpec("spmv", "no-dp"), RunSpec("spmv", "basic-dp"),
                 RunSpec("spmv", "grid-level")]
        results, errors = [], []

        def submitter():
            try:
                with ServiceClient(socket_path=sock) as client:
                    results.extend(client.submit_many(specs))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        t = threading.Thread(target=submitter)
        t.start()
        # land the shutdown inside the batching window, while the
        # submits are still queued
        import time

        time.sleep(0.15)
        with ServiceClient(socket_path=sock) as client:
            report = client.shutdown()
        t.join(60)
        thread.join(15)
        assert not thread.is_alive()
        assert not errors
        assert len(results) == len(specs)
        assert all(r.checked for r in results)
        assert report["metrics"]["completed"] == len(specs)
        assert svc.metrics.executed == len(specs)

    def test_submit_after_drain_starts_is_rejected(self, tmp_path):
        svc, sock, thread = start_service(tmp_path)
        with ServiceClient(socket_path=sock) as client:
            client.shutdown()
        thread.join(15)
        with pytest.raises(ServiceError):
            ServiceClient(socket_path=sock).submit("spmv", "no-dp")

    def test_socket_file_removed_on_exit(self, tmp_path):
        svc, sock, thread = start_service(tmp_path)
        with ServiceClient(socket_path=sock) as client:
            client.shutdown()
        thread.join(15)
        assert not sock.exists()


# -- tuning through the service ------------------------------------------------

class TestServiceTuning:
    def test_tune_matches_local_and_warm_resubmits_zero(self, service,
                                                        tmp_path):
        from repro.tuning import TunedConfigRegistry, Tuner

        _, sock = service
        with ServiceClient(socket_path=sock) as client:
            remote = Tuner(scale=SCALE, service=client,
                           registry=TunedConfigRegistry(tmp_path / "t.json"))
            first = remote.tune("sssp", algorithm="random", budget=4, seed=3)
            again = remote.tune("sssp", algorithm="random", budget=4, seed=3)
        local = Tuner(scale=SCALE).tune("sssp", algorithm="random",
                                        budget=4, seed=3)
        assert first.best.candidate == local.best.candidate
        assert first.best.value == local.best.value
        assert first.stats.executed > 0
        # deterministic re-tune through the warm service: zero executions
        assert again.stats.executed == 0
        # and the winner persisted for `repro run sssp tuned`
        assert len(remote.registry) == 1

    def test_tuned_variant_submits_after_tune(self, tmp_path):
        from repro.tuning import TunedConfigRegistry, Tuner

        # the daemon reads the same registry the tuner writes
        registry = TunedConfigRegistry(tmp_path / "tuned.json")
        svc, sock, thread = start_service(tmp_path, tuned=registry)
        try:
            with ServiceClient(socket_path=sock) as client:
                Tuner(scale=SCALE, service=client, registry=registry).tune(
                    "sssp", algorithm="random", budget=4, seed=3)
                res = client.submit("sssp", "tuned")
        finally:
            stop_service(sock, thread)
        assert res.variant != "tuned"  # lowered onto a concrete variant
        assert res.checked

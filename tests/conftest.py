"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.device import Device
from repro.sim.specs import TINY


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/fixtures/golden_cuda/*.cu from the current "
             "emitter output instead of comparing against it")


@pytest.fixture
def update_goldens(request):
    """Whether this run should rewrite golden files instead of asserting
    against them (the ``--update-goldens`` flag)."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def device():
    """A default simulated K20c with the pre-allocated pool allocator."""
    return Device()


@pytest.fixture
def tiny_device():
    """A tiny GPU: saturation effects appear with very small workloads."""
    return Device(spec=TINY, heap_bytes=1024 * 1024)


@pytest.fixture
def simple_graph():
    """A small deterministic CSR graph: 0->1,2; 1->2; 2->0,3; 3->(none)."""
    row_ptr = np.array([0, 2, 3, 5, 5], dtype=np.int64)
    col_idx = np.array([1, 2, 2, 0, 3], dtype=np.int32)
    weights = np.array([1, 4, 2, 7, 1], dtype=np.int32)
    from repro.data.structures import Graph

    return Graph("tiny", row_ptr, col_idx, weights)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.device import Device
from repro.sim.specs import TINY


@pytest.fixture
def device():
    """A default simulated K20c with the pre-allocated pool allocator."""
    return Device()


@pytest.fixture
def tiny_device():
    """A tiny GPU: saturation effects appear with very small workloads."""
    return Device(spec=TINY, heap_bytes=1024 * 1024)


@pytest.fixture
def simple_graph():
    """A small deterministic CSR graph: 0->1,2; 1->2; 2->0,3; 3->(none)."""
    row_ptr = np.array([0, 2, 3, 5, 5], dtype=np.int64)
    col_idx = np.array([1, 2, 2, 0, 3], dtype=np.int32)
    weights = np.array([1, 4, 2, 7, 1], dtype=np.int32)
    from repro.data.structures import Graph

    return Graph("tiny", row_ptr, col_idx, weights)

"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from repro.sim.device import Device


#: binary operators that are total over int (no /, % — divide-by-zero)
FUZZ_BINOPS = ("+", "-", "*", "&", "|", "^")


def minicuda_expr(atoms, binops: tuple = FUZZ_BINOPS, max_leaves: int = 6):
    """Hypothesis strategy for random, well-formed MiniCUDA int
    expressions over the given atom spellings.

    Shared by the frontend round-trip fuzzing (test_fuzz_programs) and
    the strategy semantic-preservation property test (test_strategies),
    so both shake the same expression space."""
    from hypothesis import strategies as st

    atom = st.one_of(st.integers(min_value=0, max_value=64).map(str),
                     st.sampled_from(list(atoms)))
    ops = st.sampled_from(list(binops))

    def combine(children):
        return st.builds(lambda a, op, b: f"({a} {op} {b})", children, ops,
                         children)

    return st.recursive(atom, combine, max_leaves=max_leaves)


#: atoms the statement-level fuzzer assigns to (and reads back through
#: the expression space) — locals plus aliased global cells, so writes
#: interleave across threads
FUZZ_TARGETS = ("acc", "out[t]", "out[n % 8]")

FUZZ_ATOMS = ("n", "t", "acc", "out[t]", "out[n % 8]", "out[0]")


def minicuda_body(atoms=FUZZ_ATOMS, targets=FUZZ_TARGETS,
                  max_statements: int = 5):
    """Hypothesis strategy for random MiniCUDA kernel *bodies*: a short
    sequence of assignments, ifs and bounded for-loops built over
    :func:`minicuda_expr`.

    Hoisted from test_fuzz_programs so the backend differential harness
    (test_backends) fuzzes the exact same program space that shook out
    the frontend precedence/scoping bugs."""
    from hypothesis import strategies as st

    expr = minicuda_expr(atoms=list(atoms))
    conds = st.builds(
        lambda a, op, b: f"({a} {op} {b})", expr,
        st.sampled_from(["<", ">", "==", "!=", "<=", ">="]), expr)
    assign = st.builds(lambda t, e: f"{t} = {e};",
                       st.sampled_from(list(targets)), expr)

    def ifstmt(stmt):
        return st.builds(lambda c, s: f"if {c} {{ {s} }}", conds, stmt)

    def forstmt(stmt):
        return st.builds(
            lambda k, s:
            f"for (int i{k} = 0; i{k} < {k + 1}; i{k}++) {{ {s} }}",
            st.integers(0, 3), stmt,
        )

    stmt = st.recursive(assign, lambda s: st.one_of(ifstmt(s), forstmt(s)),
                        max_leaves=4)
    return st.lists(stmt, min_size=1, max_size=max_statements).map(" ".join)


def make_fuzz_kernel(body: str) -> str:
    """Wrap a fuzzed body in the canonical single-kernel test program."""
    return (
        "__global__ void fuzz(int* out, int n) {\n"
        "    int t = threadIdx.x;\n"
        "    int acc = 0;\n"
        f"    {body}\n"
        "    out[(t + 1) % 8] = acc;\n"
        "}\n"
    )


def run_source(src: str, kernel: str, grid: int, block: int, arrays,
               scalars: tuple = (), device_factory=Device):
    """Load `src` on a fresh device, upload `arrays` (list of
    ``(name, np array)`` pairs — each copied first), launch once,
    synchronize, and return the arrays read back in order.

    ``device_factory`` selects the execution engine: the default
    simulator :class:`Device`, or e.g. ``repro.backends.CpuDevice`` —
    this one driver is what the backend differential harness runs on
    both sides of the comparison."""
    dev = device_factory()
    prog = dev.load(src)
    handles = [dev.from_numpy(name, arr.copy()) for name, arr in arrays]
    prog.launch(kernel, grid, block, *handles, *scalars)
    dev.synchronize()
    return [h.to_numpy() for h in handles]


def run_kernel(src: str, kernel: str, grid: int, block: int, arrays: dict,
               scalars: tuple = (), device: Device | None = None):
    """Load `src`, upload `arrays` (name -> np array), launch once,
    synchronize, and return (device, metrics, uploaded handles)."""
    dev = device or Device()
    prog = dev.load(src)
    handles = {name: dev.from_numpy(name, arr) for name, arr in arrays.items()}
    prog.launch(kernel, grid, block, *handles.values(), *scalars)
    metrics = dev.synchronize()
    return dev, metrics, handles

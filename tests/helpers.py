"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.sim.device import Device


def run_kernel(src: str, kernel: str, grid: int, block: int, arrays: dict,
               scalars: tuple = (), device: Device | None = None):
    """Load `src`, upload `arrays` (name -> np array), launch once,
    synchronize, and return (device, metrics, uploaded handles)."""
    dev = device or Device()
    prog = dev.load(src)
    handles = {name: dev.from_numpy(name, arr) for name, arr in arrays.items()}
    prog.launch(kernel, grid, block, *handles.values(), *scalars)
    metrics = dev.synchronize()
    return dev, metrics, handles

"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from repro.sim.device import Device


#: binary operators that are total over int (no /, % — divide-by-zero)
FUZZ_BINOPS = ("+", "-", "*", "&", "|", "^")


def minicuda_expr(atoms, binops: tuple = FUZZ_BINOPS, max_leaves: int = 6):
    """Hypothesis strategy for random, well-formed MiniCUDA int
    expressions over the given atom spellings.

    Shared by the frontend round-trip fuzzing (test_fuzz_programs) and
    the strategy semantic-preservation property test (test_strategies),
    so both shake the same expression space."""
    from hypothesis import strategies as st

    atom = st.one_of(st.integers(min_value=0, max_value=64).map(str),
                     st.sampled_from(list(atoms)))
    ops = st.sampled_from(list(binops))

    def combine(children):
        return st.builds(lambda a, op, b: f"({a} {op} {b})", children, ops,
                         children)

    return st.recursive(atom, combine, max_leaves=max_leaves)


def run_kernel(src: str, kernel: str, grid: int, block: int, arrays: dict,
               scalars: tuple = (), device: Device | None = None):
    """Load `src`, upload `arrays` (name -> np array), launch once,
    synchronize, and return (device, metrics, uploaded handles)."""
    dev = device or Device()
    prog = dev.load(src)
    handles = {name: dev.from_numpy(name, arr) for name, arr in arrays.items()}
    prog.launch(kernel, grid, block, *handles.values(), *scalars)
    metrics = dev.synchronize()
    return dev, metrics, handles

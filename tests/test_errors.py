"""Error-hierarchy and diagnostic-rendering tests."""

import pytest

from repro.errors import (
    AllocationError,
    CodegenError,
    LaunchError,
    LexError,
    ParseError,
    PragmaError,
    ReproError,
    SimulationError,
    SourceError,
    TransformError,
    TypeCheckError,
)
from repro.frontend.source import SourceFile, SourceLocation


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (LexError, ParseError, PragmaError, TypeCheckError,
                    TransformError, CodegenError, SimulationError,
                    LaunchError, AllocationError):
            assert issubclass(exc, ReproError)

    def test_frontend_errors_are_source_errors(self):
        for exc in (LexError, ParseError, PragmaError, TypeCheckError,
                    TransformError, CodegenError):
            assert issubclass(exc, SourceError)

    def test_sim_errors_are_not_source_errors(self):
        assert not issubclass(SimulationError, SourceError)

    def test_catching_the_family(self):
        with pytest.raises(ReproError):
            raise TransformError("nope")


class TestRendering:
    def test_location_prefix(self):
        loc = SourceLocation("kernel.cu", 12, 5)
        err = ParseError("unexpected token", loc)
        assert str(err) == "kernel.cu:12:5: unexpected token"

    def test_no_location(self):
        assert str(TransformError("plain message")) == "plain message"

    def test_attributes_preserved(self):
        loc = SourceLocation("x.cu", 1, 1)
        err = TypeCheckError("msg", loc)
        assert err.message == "msg" and err.loc is loc


class TestSourceFile:
    def test_location_mapping(self):
        sf = SourceFile("ab\ncde\nf", "t.cu")
        assert (sf.location(0).line, sf.location(0).col) == (1, 1)
        assert (sf.location(3).line, sf.location(3).col) == (2, 1)
        assert (sf.location(5).line, sf.location(5).col) == (2, 3)
        assert (sf.location(7).line, sf.location(7).col) == (3, 1)

    def test_offset_clamped(self):
        sf = SourceFile("abc", "t.cu")
        assert sf.location(999).line == 1

    def test_line_text(self):
        sf = SourceFile("first\nsecond\n", "t.cu")
        assert sf.line_text(1) == "first"
        assert sf.line_text(2) == "second"
        assert sf.line_text(99) == ""

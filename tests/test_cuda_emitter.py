"""CUDA-C emitter tests: goldens, determinism, and syntax sanity.

The emitter lowers consolidated MiniCUDA to self-contained ``.cu`` files
with real ``<<<grid, block>>>`` child launches — nothing here needs a
GPU. Three properties are locked down:

1. **Goldens** — one checked-in ``.cu`` per app x strategy under
   ``tests/fixtures/golden_cuda/``; emission must match modulo comments
   and whitespace (``normalize_cuda``). Regenerate with
   ``pytest --update-goldens``.
2. **Determinism / idempotence** — byte-identical output across repeated
   emission, across cache clears, and across *processes* (no timestamps,
   no dict-order or hash-seed dependence).
3. **Syntax sanity** — every emitted file passes ``check_cu_syntax``
   (balanced brackets outside strings/comments, every launched or called
   kernel declared before use), including hypothesis-fuzzed programs.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.apps import all_apps
from repro.backends import (
    check_cu_syntax,
    clear_emit_cache,
    emit_cuda,
    normalize_cuda,
)
from repro.compiler import consolidate_source

from tests.helpers import make_fuzz_kernel, minicuda_body

GOLDEN_DIR = Path(__file__).parent / "fixtures" / "golden_cuda"
STRATEGIES = ("warp", "block", "grid")

APP_KEYS = [a.key for a in all_apps()]
GOLDEN_CASES = [(key, gran) for key in APP_KEYS for gran in STRATEGIES]


def emit_app(key: str, gran: str) -> str:
    from repro.apps import get_app

    src = consolidate_source(get_app(key).annotated_source(),
                             granularity=gran).source
    return emit_cuda(src, name=f"{key}_{gran}")


# -- goldens ------------------------------------------------------------------


@pytest.mark.parametrize("key,gran", GOLDEN_CASES,
                         ids=[f"{k}_{g}" for k, g in GOLDEN_CASES])
def test_golden(key, gran, update_goldens):
    cu = emit_app(key, gran)
    path = GOLDEN_DIR / f"{key}_{gran}.cu"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(cu)
        return
    assert path.exists(), (
        f"missing golden {path.name}; run `pytest --update-goldens` "
        "and commit the result")
    assert normalize_cuda(cu) == normalize_cuda(path.read_text()), (
        f"emitter output changed for {key} x {gran}; if intended, "
        "regenerate with `pytest --update-goldens`")


def test_no_stale_goldens():
    expected = {f"{k}_{g}.cu" for k, g in GOLDEN_CASES}
    actual = {p.name for p in GOLDEN_DIR.glob("*.cu")}
    assert actual == expected


@pytest.mark.parametrize("key,gran", GOLDEN_CASES,
                         ids=[f"{k}_{g}" for k, g in GOLDEN_CASES])
def test_goldens_pass_syntax_check(key, gran):
    assert check_cu_syntax(emit_app(key, gran)) == []


# -- determinism / idempotence ------------------------------------------------


class TestDeterminism:
    def test_cache_returns_identical_object(self):
        src = consolidate_source(
            all_apps()[0].annotated_source(), granularity="block").source
        first = emit_cuda(src, name="det")
        assert emit_cuda(src, name="det") is first

    def test_byte_identical_across_cache_clears(self):
        src = consolidate_source(
            all_apps()[0].annotated_source(), granularity="block").source
        first = emit_cuda(src, name="det")
        clear_emit_cache()
        assert emit_cuda(src, name="det") == first

    def test_byte_identical_across_processes(self):
        """Emission in a fresh interpreter (fresh hash seed, fresh import
        order) must produce the same bytes — no hidden nondeterminism."""
        key, gran = APP_KEYS[0], "block"
        local = emit_app(key, gran)
        code = (
            "import sys; sys.path.insert(0, 'src'); sys.path.insert(0, '.')\n"
            "from tests.test_cuda_emitter import emit_app\n"
            f"sys.stdout.write(emit_app({key!r}, {gran!r}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], cwd=Path(__file__).parent.parent,
            capture_output=True, text=True, check=True)
        assert out.stdout == local


# -- structural content -------------------------------------------------------


_PLAIN = """
__global__ void add_one(int* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = out[i] + 1; }
}
"""


class TestEmittedStructure:
    def test_plain_kernel_has_stub_but_no_dp_runtime(self):
        cu = emit_cuda(_PLAIN, name="plain")
        assert 'extern "C" void launch_add_one' in cu
        # no consolidation intrinsics used -> the runtime block stays out
        assert "__dp_buffer_t" not in cu

    def test_consolidated_kernel_has_real_child_launches(self):
        cu = emit_app(APP_KEYS[0], "grid")
        assert "<<<" in cu and ">>>" in cu
        assert "__dp_buffer_t" in cu
        assert "cudaDeviceSynchronize" in cu or "__syncthreads" in cu

    def test_pragmas_are_stripped(self):
        for key, gran in GOLDEN_CASES[:3]:
            assert "#pragma dp" not in emit_app(key, gran)


# -- the normalizer and the checker -------------------------------------------


class TestNormalize:
    def test_strips_comments_and_whitespace(self):
        a = "int  x = 1;  // say hi\n\n/* block\ncomment */\nint y;\n"
        b = "int x = 1;\nint y;\n"
        assert normalize_cuda(a) == normalize_cuda(b)

    def test_preserves_code_differences(self):
        assert normalize_cuda("int x = 1;") != normalize_cuda("int x = 2;")


class TestSyntaxCheck:
    def test_unbalanced_brace_detected(self):
        problems = check_cu_syntax("void f() { if (1) { }")
        assert any("{" in p or "brace" in p for p in problems)

    def test_undeclared_kernel_launch_detected(self):
        problems = check_cu_syntax(
            "__global__ void parent() { child<<<1, 1>>>(); }")
        assert any("child" in p for p in problems)

    def test_brackets_inside_strings_ignored(self):
        assert check_cu_syntax(
            '__global__ void k() { printf("}{)("); }') == []


# -- fuzzed emission ----------------------------------------------------------


@given(minicuda_body())
@settings(max_examples=25, deadline=None)
def test_fuzzed_emission_deterministic_and_sane(body):
    src = make_fuzz_kernel(body)
    cu = emit_cuda(src, name="fuzz")
    clear_emit_cache()
    assert emit_cuda(src, name="fuzz") == cu
    assert check_cu_syntax(cu) == []
    assert 'extern "C" void launch_fuzz' in cu

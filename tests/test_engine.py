"""SIMT functional-engine tests: lockstep accounting, barriers, divergence,
device-sync semantics and launch plumbing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.device import Device

from tests.helpers import run_kernel


class TestWarpAccounting:
    def test_full_warp_high_efficiency(self):
        src = """__global__ void k(int* out) {
            out[threadIdx.x] = threadIdx.x;
        }"""
        _, m, _ = run_kernel(src, "k", 1, 32, {"out": np.zeros(32, np.int32)})
        assert m.warp_execution_efficiency > 0.9

    def test_partial_warp_low_efficiency(self):
        src = """__global__ void k(int* out) {
            out[threadIdx.x] = threadIdx.x;
        }"""
        _, m, _ = run_kernel(src, "k", 1, 4, {"out": np.zeros(32, np.int32)})
        assert m.warp_execution_efficiency < 0.25

    def test_divergent_loop_trip_counts_reduce_efficiency(self):
        # lane i iterates i times: massive intra-warp imbalance
        src = """__global__ void k(int* out, int* work) {
            int t = threadIdx.x;
            int acc = 0;
            for (int i = 0; i < work[t]; i++) acc += out[i];
            out[t] = acc;
        }"""
        work = np.arange(32, dtype=np.int32) * 8
        _, m, _ = run_kernel(src, "k", 1, 32,
                             {"out": np.zeros(300, np.int32), "work": work})
        assert m.warp_execution_efficiency < 0.6

    def test_balanced_vs_divergent_cycles(self):
        template = """__global__ void k(int* out, int* work) {
            int t = threadIdx.x;
            for (int i = 0; i < work[t]; i++) out[t] += 1;
        }"""
        balanced = np.full(32, 16, dtype=np.int32)
        skewed = np.zeros(32, dtype=np.int32)
        skewed[0] = 16 * 32  # same total work, all in lane 0
        _, m_bal, _ = run_kernel(template, "k", 1, 32,
                                 {"out": np.zeros(32, np.int32), "work": balanced})
        _, m_skew, _ = run_kernel(template, "k", 1, 32,
                                  {"out": np.zeros(32, np.int32), "work": skewed})
        assert m_skew.cycles > 2 * m_bal.cycles


class TestBarriers:
    def test_syncthreads_across_warps(self):
        src = """__global__ void k(int* out, int n) {
            __shared__ int tile[128];
            int t = threadIdx.x;
            tile[t] = t * 2;
            __syncthreads();
            out[t] = tile[n - 1 - t];
        }"""
        _, _, h = run_kernel(src, "k", 1, 128,
                             {"out": np.zeros(128, np.int32)}, scalars=(128,))
        expected = [(127 - t) * 2 for t in range(128)]
        assert list(h["out"].data) == expected

    def test_barrier_with_early_returned_threads(self):
        src = """__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            if (t >= n) return;
            __syncthreads();
            out[t] = 1;
        }"""
        _, _, h = run_kernel(src, "k", 1, 64,
                             {"out": np.zeros(64, np.int32)}, scalars=(10,))
        assert h["out"].data[:10].sum() == 10

    def test_double_barrier(self):
        src = """__global__ void k(int* out) {
            __shared__ int s[2];
            int t = threadIdx.x;
            if (t == 0) s[0] = 5;
            __syncthreads();
            if (t == 1) s[1] = s[0] * 2;
            __syncthreads();
            out[t] = s[1];
        }"""
        _, _, h = run_kernel(src, "k", 1, 64, {"out": np.zeros(64, np.int32)})
        assert all(v == 10 for v in h["out"].data)


class TestDynamicParallelism:
    CHILD_PARENT = """
    __global__ void child(int* out, int base) {
        out[base + threadIdx.x] = 100 + threadIdx.x;
    }
    __global__ void parent(int* out, int n) {
        int t = threadIdx.x;
        if (t == 0) {
            child<<<1, n>>>(out, 8);
        }
    }
    """

    def test_child_effects_visible_after_sync(self):
        _, m, h = run_kernel(self.CHILD_PARENT, "parent", 1, 4,
                             {"out": np.zeros(16, np.int32)}, scalars=(4,))
        assert list(h["out"].data[8:12]) == [100, 101, 102, 103]
        assert m.device_launches == 1
        assert m.kernel_instances == 2

    def test_launch_depth_limit(self):
        src = """__global__ void r(int* out, int d) {
            if (threadIdx.x == 0) {
                out[0] = d;
                r<<<1, 1>>>(out, d + 1);
            }
        }"""
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(SimulationError):
            prog.launch("r", 1, 1, out, 0)

    def test_bounded_recursion_ok(self):
        src = """__global__ void r(int* out, int d) {
            if (threadIdx.x == 0 && d < 10) {
                out[d] = d;
                r<<<1, 1>>>(out, d + 1);
            }
        }"""
        _, m, h = run_kernel(src, "r", 1, 1,
                             {"out": np.zeros(16, np.int32)}, scalars=(0,))
        assert list(h["out"].data[:10]) == list(range(10))
        assert m.device_launches == 10

    def test_device_sync_joins_children(self):
        src = """
        __global__ void child(int* out) { out[0] = 41; }
        __global__ void parent(int* out) {
            if (threadIdx.x == 0) {
                child<<<1, 1>>>(out);
                cudaDeviceSynchronize();
                out[1] = out[0] + 1;
            }
        }
        """
        _, m, h = run_kernel(src, "parent", 1, 1, {"out": np.zeros(4, np.int32)})
        assert h["out"].data[1] == 42
        assert m.parent_swaps >= 1  # the block was swapped at the sync

    def test_launch_in_loop(self):
        src = """
        __global__ void child(int* out, int i) { atomicAdd(&out[i], 1); }
        __global__ void parent(int* out, int n) {
            if (threadIdx.x == 0) {
                for (int i = 0; i < n; i++) {
                    child<<<1, 1>>>(out, i);
                }
            }
        }
        """
        _, m, h = run_kernel(src, "parent", 1, 1,
                             {"out": np.zeros(8, np.int32)}, scalars=(8,))
        assert list(h["out"].data) == [1] * 8
        assert m.device_launches == 8

    def test_fifo_sibling_order(self):
        # children run in launch order (FIFO across the forest)
        src = """
        __global__ void child(int* out, int i) {
            out[i] = atomicAdd(&out[7], 1);
        }
        __global__ void parent(int* out) {
            if (threadIdx.x == 0) {
                child<<<1, 1>>>(out, 0);
                child<<<1, 1>>>(out, 1);
                child<<<1, 1>>>(out, 2);
            }
        }
        """
        _, _, h = run_kernel(src, "parent", 1, 1, {"out": np.zeros(8, np.int32)})
        assert list(h["out"].data[:3]) == [0, 1, 2]

    def test_empty_launch_config_rejected(self):
        src = """
        __global__ void child(int* out) { out[0] = 1; }
        __global__ void parent(int* out, int n) {
            if (threadIdx.x == 0) { child<<<1, n>>>(out); }
        }
        """
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(SimulationError):
            prog.launch("parent", 1, 1, out, 0)


class TestDeterminism:
    def test_runs_are_reproducible(self):
        src = """__global__ void k(int* out) {
            atomicAdd(&out[threadIdx.x % 4], threadIdx.x);
        }"""
        results = []
        cycles = []
        for _ in range(2):
            _, m, h = run_kernel(src, "k", 2, 64, {"out": np.zeros(4, np.int32)})
            results.append(list(h["out"].data))
            cycles.append(m.cycles)
        assert results[0] == results[1]
        assert cycles[0] == cycles[1]

"""Template-analysis tests (§IV.C preconditions)."""

import pytest

from repro.compiler.analysis import (
    MULTI_BLOCK,
    SOLO_BLOCK,
    SOLO_THREAD,
    expr_is_uniform,
    find_template,
)
from repro.errors import TransformError
from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module


def template_for(src, parent=None):
    return find_template(check_module(parse(src)), parent)


BASE = """
__global__ void child(int* a, int u) {{
    int t = threadIdx.x;
    a[u + t] = t;
}}
__global__ void parent(int* a, int n) {{
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {{
        int deg = a[u];
        #pragma dp consldt(block) work(u)
        if (deg > 4) {{
            child<<<{config}>>>(a, u);
        }}
    }}
}}
"""


class TestClassification:
    def test_solo_thread(self):
        tpl = template_for(BASE.format(config="1, 1"))
        assert tpl.child_kind == SOLO_THREAD

    def test_solo_block(self):
        tpl = template_for(BASE.format(config="1, deg"))
        assert tpl.child_kind == SOLO_BLOCK

    def test_solo_block_constant(self):
        tpl = template_for(BASE.format(config="1, 64"))
        assert tpl.child_kind == SOLO_BLOCK
        assert tpl.dim_const == 64

    def test_multi_block(self):
        tpl = template_for(BASE.format(config="(deg + 63) / 64, 64"))
        assert tpl.child_kind == MULTI_BLOCK


class TestSections:
    def test_anchor_and_postwork(self):
        src = """
        __global__ void child(int* a, int u) { a[u] = 1; }
        __global__ void parent(int* a, int n) {
            int u = threadIdx.x;
            #pragma dp consldt(grid) work(u)
            if (u < n) { child<<<1, 1>>>(a, u); }
            cudaDeviceSynchronize();
            a[n + u] = 2;
            a[n + u + 1] = 3;
        }
        """
        tpl = template_for(src)
        assert tpl.anchor_index == 1
        assert tpl.had_device_sync
        assert len(tpl.postwork_indexes) == 2

    def test_no_postwork(self):
        tpl = template_for(BASE.format(config="1, deg"))
        assert tpl.postwork_indexes == []
        assert not tpl.had_device_sync

    def test_recursion_detected(self):
        src = """
        __global__ void r(int* a, int u) {
            int deg = a[u];
            #pragma dp consldt(grid) work(u)
            if (deg > 0) { r<<<1, deg>>>(a, u + 1); }
        }
        """
        tpl = template_for(src)
        assert tpl.recursive


class TestBindings:
    def test_uniform_vs_work_split(self):
        tpl = template_for(BASE.format(config="1, deg"))
        modes = {b.param_name: b.mode for b in tpl.bindings}
        assert modes == {"a": "uniform", "u": "work"}

    def test_dim_variable_buffered_as_synthetic_field(self):
        tpl = template_for(BASE.format(config="1, deg"))
        assert tpl.fields == ["u", "deg"]
        assert tpl.dim_field == 1

    def test_dim_already_in_work_reused(self):
        src = BASE.format(config="1, deg").replace("work(u)", "work(u, deg)")
        tpl = template_for(src)
        assert tpl.fields == ["u", "deg"]
        assert tpl.dim_field == 1

    def test_thread_dependent_arg_not_in_work_rejected(self):
        src = """
        __global__ void child(int* a, int u, int v) { a[u] = v; }
        __global__ void parent(int* a, int n) {
            int u = threadIdx.x;
            int v = a[u];
            #pragma dp consldt(block) work(u)
            if (u < n) { child<<<1, 1>>>(a, u, v); }
        }
        """
        with pytest.raises(TransformError, match="work"):
            template_for(src)

    def test_uniform_expression_arg_allowed(self):
        src = """
        __global__ void child(int* a, int u, int m) { a[u] = m; }
        __global__ void parent(int* a, int n) {
            int u = threadIdx.x;
            #pragma dp consldt(block) work(u)
            if (u < n) { child<<<1, 1>>>(a, u, n * 2 + 1); }
        }
        """
        tpl = template_for(src)
        assert [b.mode for b in tpl.bindings] == ["uniform", "work", "uniform"]

    def test_float_work_variable_rejected(self):
        src = """
        __global__ void child(float* a, float x) { a[0] = x; }
        __global__ void parent(float* a, int n) {
            float x = a[threadIdx.x];
            #pragma dp consldt(block) work(x)
            if (n > 0) { child<<<1, 1>>>(a, x); }
        }
        """
        with pytest.raises(TransformError, match="integer"):
            template_for(src)


class TestErrors:
    def test_no_pragma(self):
        src = "__global__ void k(int* a) { a[0] = 1; }"
        with pytest.raises(TransformError, match="no #pragma dp"):
            template_for(src)

    def test_two_pragmas_rejected(self):
        src = """
        __global__ void c(int* a, int u) { a[u] = 1; }
        __global__ void p(int* a, int n) {
            int u = threadIdx.x;
            #pragma dp consldt(block) work(u)
            if (u < n) { c<<<1, 1>>>(a, u); }
            #pragma dp consldt(block) work(u)
            if (u > n) { c<<<1, 1>>>(a, u); }
        }
        """
        with pytest.raises(TransformError, match="exactly one"):
            template_for(src)

    def test_pragma_without_launch(self):
        src = """
        __global__ void p(int* a, int n) {
            int u = threadIdx.x;
            #pragma dp consldt(block) work(u)
            if (u < n) { a[u] = 1; }
        }
        """
        with pytest.raises(TransformError, match="exactly one kernel"):
            template_for(src)

    def test_launch_dim_expression_rejected_without_variable(self):
        src = """
        __global__ void child(int* a, int u) { a[u] = threadIdx.x; }
        __global__ void parent(int* a, int n) {
            int u = threadIdx.x;
            #pragma dp consldt(block) work(u)
            if (u < n) { child<<<1, a[u] + 1>>>(a, u); }
        }
        """
        with pytest.raises(TransformError, match="block dimension"):
            template_for(src)


class TestUniformity:
    def test_uniform_expression_analysis(self):
        src = BASE.format(config="1, deg")
        info = check_module(parse(src))
        parent = info.module.function("parent")
        from repro.compiler.analysis import uniform_names

        uniforms = uniform_names(parent, info)
        assert uniforms == {"a", "n"}
        e_n = parse("__global__ void x(int n) { n = n + 1; }")
        expr = e_n.function("x").body.stmts[0].expr.value
        assert expr_is_uniform(expr, {"n"})
        assert not expr_is_uniform(expr, set())

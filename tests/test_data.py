"""Dataset structure and generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import citeseer_like, kron_like
from repro.data.structures import Graph as GraphCls
from repro.workloads.generators import (
    tree_dataset1,
    tree_dataset2,
    uniform_graph,
)


class TestGraphStructure:
    def test_basic_accessors(self, simple_graph):
        g = simple_graph
        assert g.num_nodes == 4 and g.num_edges == 5
        assert g.out_degree(0) == 2
        assert list(g.neighbors(2)) == [0, 3]
        assert list(g.degrees) == [2, 1, 2, 0]

    def test_validate_rejects_bad_col(self):
        with pytest.raises(ValueError):
            GraphCls("bad", np.array([0, 1]), np.array([7], dtype=np.int32),
                     np.array([1], dtype=np.int32)).validate()

    def test_stats_string(self, simple_graph):
        assert "4 nodes" in simple_graph.stats()


class TestCiteseerLike:
    def test_deterministic(self):
        a, b = citeseer_like(0.5, seed=7), citeseer_like(0.5, seed=7)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_seed_changes_graph(self):
        a, b = citeseer_like(0.5, seed=7), citeseer_like(0.5, seed=8)
        assert not np.array_equal(a.col_idx, b.col_idx)

    def test_degree_skew(self):
        g = citeseer_like(1.0)
        d = g.degrees
        assert d.min() >= 1
        assert d.max() > 10 * np.median(d)  # heavy tail

    def test_in_degree_skew_for_pagerank(self):
        g = citeseer_like(1.0)
        in_deg = np.bincount(g.col_idx, minlength=g.num_nodes)
        assert in_deg.max() > 10 * max(1, int(np.median(in_deg)))

    def test_scaling(self):
        small = citeseer_like(0.25)
        big = citeseer_like(1.0)
        assert big.num_nodes > 2 * small.num_nodes

    @given(st.floats(0.1, 1.5))
    @settings(max_examples=5, deadline=None)
    def test_always_valid(self, scale):
        citeseer_like(scale).validate()


class TestKronLike:
    def test_symmetric(self):
        g = kron_like(0.5)
        n = g.num_nodes
        src = np.repeat(np.arange(n), np.diff(g.row_ptr))
        fwd = set(zip(src.tolist(), g.col_idx.tolist()))
        assert fwd == {(b, a) for a, b in fwd}

    def test_min_degree_floor(self):
        g = kron_like(0.5)
        # the floor is 8 before hub-capping; allow the cap to dent a few
        assert np.median(g.degrees) >= 8

    def test_max_degree_capped_for_block_launch(self):
        g = kron_like(1.0)
        assert g.degrees.max() <= 1023

    def test_no_self_loops(self):
        g = kron_like(0.5)
        src = np.repeat(np.arange(g.num_nodes), np.diff(g.row_ptr))
        assert not np.any(src == g.col_idx)

    def test_deterministic(self):
        assert np.array_equal(kron_like(0.5).col_idx, kron_like(0.5).col_idx)


class TestTrees:
    @pytest.mark.parametrize("gen", [tree_dataset1, tree_dataset2])
    def test_valid_tree(self, gen):
        t = gen(0.5)
        t.validate()
        assert t.num_nodes > 50

    def test_dataset1_properties(self):
        t = tree_dataset1(1.0)
        assert t.depth == 5
        nc = np.diff(t.child_ptr)
        fertile = nc[nc > 0]
        assert fertile.min() >= 2
        # fanout spans the warp size (the load-bearing scaled property)
        assert fertile.max() >= 32

    def test_dataset2_wider_fanout_ratio(self):
        t = tree_dataset2(1.0)
        nc = np.diff(t.child_ptr)
        fertile = nc[nc > 0]
        assert fertile.max() / max(fertile.min(), 1) >= 2.0

    def test_height_matches_depth_budget(self):
        t = tree_dataset2(1.0)
        assert t.height() == 6  # depth 5 => 6 levels including the root

    def test_node_depths(self):
        t = tree_dataset1(0.5)
        depths = t.node_depths()
        assert depths[0] == 0
        assert depths.max() == t.height() - 1

    def test_parents_consistent_with_children(self):
        t = tree_dataset2(0.5)
        parents = t.parents()
        assert parents[0] == -1
        for u in range(min(200, t.num_nodes)):
            for c in t.children(u):
                assert parents[c] == u

    def test_deterministic(self):
        a, b = tree_dataset1(0.5), tree_dataset1(0.5)
        assert np.array_equal(a.child_idx, b.child_idx)


class TestUniformRandom:
    def test_flat_degrees(self):
        g = uniform_graph(n=100, avg_degree=8, seed=1)
        assert set(g.degrees.tolist()) == {8}


class TestRetiredShims:
    """The PR-2/PR-4 shims (``uniform_random``, the ``treegen`` module)
    are gone per the two-PR cadence (repro.errors.DeprecationPolicy);
    the registry spellings are the only ones left."""

    def test_uniform_random_retired(self):
        with pytest.raises(ImportError):
            from repro.data import uniform_random  # noqa: F401

    def test_treegen_module_retired(self):
        with pytest.raises(ImportError):
            from repro.data import treegen  # noqa: F401

"""Backend registry + CPU-backend differential harness.

The headline property of the backend subsystem is *differential*: for
every benchmark app under every consolidation strategy — and for a fuzzed
stream of MiniCUDA programs — the NumPy/multiprocessing CPU backend must
produce exactly the simulator's functional output, element for element.
The CPU interpreter mirrors the simulator's canonical schedule (block
order, warp rounds, lockstep lanes), so even schedule-dependent results
(float atomicAdd accumulation order, CAS claim winners) must match
bitwise; any divergence is an interpreter/codegen semantics bug, not
noise.

Alongside the harness: registry contract tests, CpuDevice/CpuJob unit
tests, the run-key backward-compatibility regression (an omitted backend
must leave every pre-existing cache address byte-identical), and the
runner's sim-folds-to-None canonicalization.
"""

import dataclasses
import hashlib
import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from repro import __version__
from repro.apps import BASIC, BLOCK, GRID, WARP, all_apps, get_app
from repro.backends import (
    Backend,
    BackendError,
    CpuDevice,
    CpuJob,
    available_backends,
    get_backend,
    register_backend,
    run_job,
    run_jobs,
    unregister_backend,
)
from repro.errors import LaunchError, SimulationError
from repro.experiments.plan import RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import STORE_FORMAT, ResultStore, run_key
from repro.sim.device import Device
from repro.sim.specs import DEFAULT_COST_MODEL, K20C

from tests.helpers import (
    make_fuzz_kernel,
    minicuda_body,
    minicuda_expr,
    run_source,
)

DP_VARIANTS = (BASIC, WARP, BLOCK, GRID)

#: small enough to keep the 7 apps x 4 variants x 2 backends matrix in
#: test time, large enough that every app actually delegates work
SCALE = 0.08


# -- registry contract --------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == ("sim", "cpu", "cuda")

    def test_get_backend_by_name_and_instance(self):
        cpu = get_backend("cpu")
        assert cpu.name == "cpu" and cpu.executes and not cpu.emits
        assert get_backend(cpu) is cpu

    def test_sim_is_default_and_executes(self):
        sim = get_backend("sim")
        assert sim.executes
        dev = sim.make_device(spec=K20C, cost=DEFAULT_COST_MODEL,
                              allocator="custom", heap_bytes=None)
        assert isinstance(dev, Device)

    def test_cuda_emits_only(self):
        cuda = get_backend("cuda")
        assert cuda.emits and not cuda.executes
        with pytest.raises(BackendError, match="repro compile"):
            cuda.make_device(spec=K20C, cost=DEFAULT_COST_MODEL,
                             allocator="custom", heap_bytes=None)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(BackendError, match="cpu"):
            get_backend("tpu")

    def test_register_validates_and_replaces(self):
        class Fake(Backend):
            name = "fake"
            summary = "test double"
            executes = True

            def make_device(self, **kwargs):
                raise NotImplementedError

        register_backend(Fake())
        try:
            assert "fake" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Fake())
            register_backend(Fake(), replace=True)
        finally:
            unregister_backend("fake")
        assert "fake" not in available_backends()
        with pytest.raises(KeyError):
            unregister_backend("fake")

    def test_register_rejects_inert_backend(self):
        class Inert(Backend):
            name = "inert"
            summary = "neither executes nor emits"

        with pytest.raises(ValueError, match="execute|emit"):
            register_backend(Inert())


# -- CpuDevice unit behaviour -------------------------------------------------


_ADD_ONE = """
__global__ void add_one(int* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = out[i] + 1; }
}
"""


class TestCpuDevice:
    def test_roundtrip_preserves_dtype(self):
        dev = CpuDevice()
        for dtype in (np.int32, np.int64, np.float32, np.float64):
            arr = np.arange(5, dtype=dtype)
            h = dev.from_numpy("a", arr)
            back = h.to_numpy()
            assert back.dtype == arr.dtype
            np.testing.assert_array_equal(back, arr)

    def test_launch_validation(self):
        dev = CpuDevice()
        prog = dev.load(_ADD_ONE)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(LaunchError):
            prog.launch("add_one", 0, 32, out, 4)
        with pytest.raises(LaunchError):
            prog.launch("add_one", 1, dev.spec.max_threads_per_block + 1,
                        out, 4)

    def test_load_collision_rejected(self):
        dev = CpuDevice()
        dev.load(_ADD_ONE)
        with pytest.raises(SimulationError, match="already loaded"):
            dev.load(_ADD_ONE)

    def test_out_of_bounds_access_raises(self):
        # unlike the sim (which defers work to synchronize), the CPU
        # backend executes eagerly, so the fault surfaces at launch
        dev = CpuDevice()
        prog = dev.load(_ADD_ONE)
        out = dev.from_numpy("out", np.zeros(4, np.int32))
        with pytest.raises(SimulationError, match="out-of-bounds"):
            prog.launch("add_one", 1, 32, out, 99)

    def test_metrics_are_functional_only(self):
        dev = CpuDevice()
        prog = dev.load(_ADD_ONE)
        out = dev.from_numpy("out", np.zeros(64, np.int32))
        prog.launch("add_one", 2, 32, out, 64)
        metrics = dev.synchronize()
        assert metrics.cycles == 0
        assert metrics.host_launches == 1
        assert metrics.allocator_kind == "cpu"
        np.testing.assert_array_equal(out.to_numpy(),
                                      np.ones(64, np.int32))


class TestCpuJobs:
    def _job(self, n):
        return CpuJob(
            source=_ADD_ONE,
            arrays={"out": np.arange(n, dtype=np.int32)},
            launches=[("add_one", 2, 32, ("out", n))],
        )

    def test_run_job(self):
        result = run_job(self._job(40))
        np.testing.assert_array_equal(result["out"],
                                      np.arange(40, dtype=np.int32) + 1)

    def test_run_jobs_parallel_matches_serial(self):
        jobs = [self._job(n) for n in (8, 16, 24)]
        serial = run_jobs(jobs, processes=1)
        parallel = run_jobs(jobs, processes=2)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s["out"], p["out"])


# -- the differential harness -------------------------------------------------


APP_KEYS = [a.key for a in all_apps()]


@pytest.fixture(scope="module")
def datasets():
    return {key: get_app(key).default_dataset(SCALE) for key in APP_KEYS}


@pytest.mark.parametrize("key", APP_KEYS)
@pytest.mark.parametrize("variant", DP_VARIANTS)
def test_cpu_backend_matches_sim(key, variant, datasets):
    """Every app x strategy pair: the CPU backend's functional result
    must equal the simulator's element for element (bitwise — the CPU
    interpreter replays the sim's exact schedule)."""
    app = get_app(key)
    sim = app.run(variant, dataset=datasets[key], verify=False)
    cpu = app.run(variant, dataset=datasets[key], verify=False,
                  backend="cpu")
    assert cpu.backend == "cpu" and sim.backend is None
    np.testing.assert_array_equal(
        cpu.result, sim.result,
        err_msg=f"cpu backend diverged from sim on {key} [{variant}]")


_fuzz_body = minicuda_body()


@given(_fuzz_body)
@settings(max_examples=60, deadline=None)
def test_fuzzed_programs_match_sim(body):
    """>=50 hypothesis-fuzzed MiniCUDA programs (the same space as
    test_fuzz_programs): CPU backend output equals sim output exactly,
    including racy interleaved writes — both engines run the identical
    canonical schedule."""
    src = make_fuzz_kernel(body)
    arrays = [("out", np.arange(8, dtype=np.int32))]
    sim = run_source(src, "fuzz", 1, 8, arrays, (5,))
    cpu = run_source(src, "fuzz", 1, 8, arrays, (5,),
                     device_factory=CpuDevice)
    np.testing.assert_array_equal(cpu[0], sim[0], err_msg=src)


_DP_TMPL = """
__global__ void child(int* buf, int* out, int u, int n) {
    out[u] = @EXPR@;
}
__global__ void parent(int* buf, int* out, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int w = buf[u % 16];
        #pragma dp consldt(block) work(u)
        if (w > 8) {
            child<<<1, 1>>>(buf, out, u, n);
        } else {
            out[u] = 0 - w;
        }
    }
}
"""

_child_expr = minicuda_expr(
    atoms=["u", "n", "buf[u]", "buf[u % 16]", "buf[(u + 7) % 16]"])


@given(_child_expr)
@settings(max_examples=10, deadline=None)
def test_fuzzed_dp_programs_match_sim(expr):
    """Fuzzed dynamic-parallelism programs, basic and consolidated: the
    CPU backend's __dp_* runtime (buffer table, designated launchers)
    must agree with the simulator's."""
    from repro.compiler import consolidate_source

    rng = np.random.default_rng(23)
    arrays = [("buf", rng.integers(0, 32, 64).astype(np.int32)),
              ("out", np.zeros(64, np.int32))]
    for src in (_DP_TMPL.replace("@EXPR@", expr),
                consolidate_source(_DP_TMPL.replace("@EXPR@", expr),
                                   granularity="block").source):
        sim = run_source(src, "parent", 2, 32, arrays, (64,))
        cpu = run_source(src, "parent", 2, 32, arrays, (64,),
                         device_factory=CpuDevice)
        np.testing.assert_array_equal(cpu[1], sim[1], err_msg=expr)


# -- run-key backward compatibility -------------------------------------------


class TestRunKeyCompat:
    KWARGS = dict(
        app="sssp", variant="grid-level", allocator="custom",
        config=None, dataset_fp="ab" * 32, cost=DEFAULT_COST_MODEL,
        spec=K20C, threshold=8, verify=True, version=__version__,
    )

    def _legacy_key(self, **extra):
        """The content address exactly as computed before the backend
        axis existed (and, without ``workload``, before the workload
        axis): the payload rebuilt by hand, field for field."""
        payload = {
            "format": STORE_FORMAT,
            "version": self.KWARGS["version"],
            "app": self.KWARGS["app"],
            "variant": self.KWARGS["variant"],
            "strategy": None,
            "allocator": self.KWARGS["allocator"],
            "config": None,
            "dataset": self.KWARGS["dataset_fp"],
            "cost": dataclasses.asdict(DEFAULT_COST_MODEL),
            "spec": dataclasses.asdict(K20C),
            "threshold": 8,
            "verify": True,
        }
        payload.update(extra)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def test_omitted_backend_is_byte_identical_to_legacy(self):
        assert run_key(**self.KWARGS) == self._legacy_key()
        assert run_key(**self.KWARGS, backend=None) == self._legacy_key()

    def test_workload_and_backend_only_enter_when_set(self):
        assert (run_key(**self.KWARGS, workload="kron(seed=9)")
                == self._legacy_key(workload="kron(seed=9)"))
        assert (run_key(**self.KWARGS, backend="cpu")
                == self._legacy_key(backend="cpu"))

    def test_backend_forks_the_address(self):
        base = run_key(**self.KWARGS)
        assert run_key(**self.KWARGS, backend="cpu") != base

    def test_runspec_default_backend_is_none(self):
        assert RunSpec(app="sssp", variant="basic-dp").backend is None


# -- runner integration -------------------------------------------------------


class TestRunnerBackendAxis:
    def _runner(self, tmp):
        return ExperimentRunner(store=ResultStore(Path(tmp)), scale=0.05)

    def test_explicit_sim_folds_to_none(self):
        with tempfile.TemporaryDirectory() as tmp:
            runner = self._runner(tmp)
            implicit = runner.run("sssp", "basic-dp")
            explicit = runner.run("sssp", "basic-dp", backend="sim")
            assert implicit.backend is None and explicit.backend is None
            # the fold makes them one cache entry, not two executions
            assert runner.stats.executed == 1
            assert runner.stats.memory_hits == 1

    def test_cpu_backend_gets_its_own_cache_entry(self):
        with tempfile.TemporaryDirectory() as tmp:
            runner = self._runner(tmp)
            sim = runner.run("sssp", "basic-dp")
            cpu = runner.run("sssp", "basic-dp", backend="cpu")
            assert runner.stats.executed == 2
            assert cpu.backend == "cpu"
            np.testing.assert_array_equal(cpu.result, sim.result)

    def test_emit_only_backend_rejected_up_front(self):
        with tempfile.TemporaryDirectory() as tmp:
            with pytest.raises(ValueError, match="does not execute"):
                self._runner(tmp).run("sssp", "basic-dp", backend="cuda")

    def test_unknown_backend_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            with pytest.raises(BackendError, match="tpu"):
                self._runner(tmp).run("sssp", "basic-dp", backend="tpu")


class TestCliBackend:
    def test_run_with_cpu_backend(self, capsys):
        from repro.cli import main

        assert main(["run", "spmv", "block-level", "--scale", "0.1",
                     "--backend", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "@cpu" in out
        assert "verified=True" in out

    def test_list_shows_backends(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cpu" in out and "cuda" in out and "sim" in out

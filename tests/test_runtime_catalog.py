"""Cross-checks between the device-library catalogue, the frontend's
builtin registrations and the runtime's intrinsic dispatcher."""

import pytest

from repro.frontend.symbols import BUILTIN_FUNCTIONS
from repro.runtime import DEVICE_LIBRARY, render_reference
from repro.sim.dp import DPRuntime


class TestCatalogue:
    def test_every_catalogued_intrinsic_is_registered(self):
        names = set(BUILTIN_FUNCTIONS)
        for doc in DEVICE_LIBRARY:
            base = doc.name.split("..")[0].split(" /")[0]
            if base.endswith("push1"):
                for k in (1, 2, 3, 4):
                    assert f"__dp_buf_push{k}" in names
            else:
                assert base in names, base

    def test_every_registered_dp_builtin_is_catalogued(self):
        catalogued = set()
        for doc in DEVICE_LIBRARY:
            if "push" in doc.name:
                catalogued.update(f"__dp_buf_push{k}" for k in range(1, 5))
            else:
                for part in doc.name.split(" / "):
                    catalogued.add(part.strip())
        registered = {n for n in BUILTIN_FUNCTIONS if n.startswith("__dp_")}
        # __dp_buf_child is a reserved forward-compat hook
        registered.discard("__dp_buf_child")
        assert registered <= catalogued | {"__dp_lane", "__dp_warp_id"}

    def test_reference_renders_all(self):
        text = render_reference()
        for doc in DEVICE_LIBRARY:
            assert doc.signature.splitlines()[0] in text

    def test_dispatcher_rejects_unknown(self):
        from repro.errors import SimulationError
        from repro.sim.cache import MemorySystem
        from repro.sim.memory import GlobalMemory
        from repro.sim.specs import CostModel, TINY
        from repro.alloc import make_allocator

        mem = GlobalMemory(TINY.global_mem_bytes, 1 << 20)
        cost = CostModel()
        memsys = MemorySystem(TINY, cost)
        alloc = make_allocator("custom", mem.heap_base, 1 << 20, cost)
        rt = DPRuntime(TINY, cost, mem, memsys, alloc)
        with pytest.raises(SimulationError):
            rt.handle_intrinsic("frobnicate", (), None, None)

"""Tests for :mod:`repro.telemetry` and its hard invariants.

Three families:

* the subsystem itself — span nesting/scoping/bounding, the Chrome
  trace exporter (every export is schema-checked), the metrics
  registry and its Prometheus rendering;
* the **never-perturb** invariants the ISSUE pins: telemetry off
  allocates no spans, ``RunConfig.trace`` stays out of equality /
  hashing / ``axes()`` / cache keys, and a traced run's ``RunMetrics``
  are bitwise-identical to an untraced one;
* the ``ServiceMetrics`` fold onto the registry — the original
  attribute surface, ``snapshot()`` and ``describe_status`` rendering
  must survive the re-backing byte for byte.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.telemetry import (NULL_SPAN, MetricsRegistry, Tracer, attribution,
                             attribution_table, chrome_trace, coverage,
                             enabled, install, span, span_tree, tracing,
                             uninstall, validate_chrome_trace,
                             write_chrome_trace)

SCALE = 0.05


# -- spans ---------------------------------------------------------------------

class TestSpans:
    def test_off_path_is_the_null_singleton(self):
        assert not enabled()
        s = span("anything", app="sssp")
        assert s is NULL_SPAN
        with span("nested") as inner:
            assert inner is NULL_SPAN
            assert inner.set(key="value") is NULL_SPAN

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracing(tracer):
            assert enabled()
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.parent is outer
            assert outer.parent is None
        assert not enabled()
        names = [s.name for s in tracer.spans()]
        # children finish (and record) first; spans() re-sorts by start
        assert names == ["outer", "inner"]

    def test_attrs_and_live_set(self):
        tracer = Tracer()
        with tracing(tracer):
            # the name parameter is positional-only, so instrumentation
            # may attach a `name=...` attribute without a collision
            with span("phase", name="citeseer", scale=0.5) as sp:
                sp.set(rounds=3)
        (rec,) = tracer.spans()
        assert rec.attrs == {"name": "citeseer", "scale": 0.5, "rounds": 3}
        assert rec.duration >= 0.0

    def test_collector_is_bounded(self):
        tracer = Tracer(max_spans=3)
        with tracing(tracer):
            for i in range(5):
                with span(f"s{i}"):
                    pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_scoped_tracer_wins_over_global(self):
        global_tracer, scoped = Tracer(), Tracer()
        install(global_tracer)
        try:
            with span("to-global"):
                pass
            with tracing(scoped):
                with span("to-scoped"):
                    pass
        finally:
            uninstall(global_tracer)
        assert [s.name for s in global_tracer.spans()] == ["to-global"]
        assert [s.name for s in scoped.spans()] == ["to-scoped"]
        assert span("off-again") is NULL_SPAN

    def test_global_tracer_crosses_threads(self):
        # the daemon's executor threads have fresh contexts; only the
        # installed global tracer can see their spans
        tracer = Tracer()
        install(tracer)
        try:
            worker = threading.Thread(target=lambda: span("in-thread")
                                      .__enter__().__exit__(None, None, None))
            worker.start()
            worker.join()
        finally:
            uninstall(tracer)
        (rec,) = tracer.spans()
        assert rec.name == "in-thread"
        assert rec.thread != threading.get_ident()

    def test_uninstall_only_removes_its_own(self):
        first, second = Tracer(), Tracer()
        install(first)
        install(second)
        uninstall(first)  # stale uninstall must not evict the newer one
        try:
            with span("kept"):
                pass
        finally:
            uninstall(second)
        assert len(second) == 1 and len(first) == 0


# -- chrome trace export -------------------------------------------------------

def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracing(tracer):
        with span("outer", app="sssp"):
            with span("inner", kernel="sssp_parent"):
                time.sleep(0.001)
    return tracer


class TestChromeExport:
    def test_export_validates_and_orders(self):
        tracer = _sample_tracer()
        obj = chrome_trace(tracer)
        assert validate_chrome_trace(obj) == 2
        complete = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["outer", "inner"]
        assert complete[0]["args"] == {"app": "sssp"}
        assert obj["otherData"]["spans"] == 2
        assert obj["otherData"]["dropped"] == 0
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"

    def test_export_is_deterministic(self):
        tracer = _sample_tracer()
        assert chrome_trace(tracer) == chrome_trace(tracer)

    def test_write_round_trips(self, tmp_path):
        tracer = _sample_tracer()
        path = write_chrome_trace(tmp_path / "out" / "trace.json", tracer)
        with open(path, encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == 2

    def test_validator_rejects_bad_events(self):
        for bad in ([{"ph": "B", "name": "x", "pid": 1, "tid": 1}],
                    [{"ph": "X", "name": 3, "pid": 1, "tid": 1,
                      "ts": 0, "dur": 0}],
                    [{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                      "ts": 0, "dur": -1}],
                    "not-a-list"):
            with pytest.raises(ValueError):
                validate_chrome_trace({"traceEvents": bad})

    def test_attribution_self_time(self):
        tracer = _sample_tracer()
        rows = {r["phase"]: r for r in attribution(tracer)}
        outer, inner = rows["outer"], rows["inner"]
        # the parent's self-time excludes its child's whole duration
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"])
        assert coverage(tracer, outer["total_s"]) == pytest.approx(1.0)

    def test_text_renderings(self):
        tracer = _sample_tracer()
        table = attribution_table(tracer)
        assert "outer" in table and "inner" in table
        assert "2 spans cover" in table and "0 dropped" in table
        tree = span_tree(tracer)
        assert tree.splitlines()[0].startswith("outer")
        assert tree.splitlines()[1].startswith("  inner")
        empty = Tracer()
        assert attribution_table(empty) == "(no spans recorded)"
        assert span_tree(empty) == "(no spans recorded)"


# -- metrics registry ----------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", help="requests")
        c.inc()
        c.inc(2)
        assert c.value == 3 and isinstance(c.value, int)
        g = reg.gauge("queue_depth")
        g.set(5)
        g.dec(2)
        assert g.value == 3
        h = reg.histogram("latency_seconds", edges=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert h.count == 3 and h.sum == pytest.approx(2.55)

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        with pytest.raises(TypeError):
            reg.gauge("hits")  # same name, different type
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 1}
        assert snap["h"] == {"kind": "histogram", "edges": [1.0],
                             "counts": [1, 0], "sum": 0.5, "count": 1}

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("service_requests", help="submit requests").inc(7)
        h = reg.histogram("request_seconds", edges=(0.5, 1.0))
        h.observe(0.25)
        h.observe(0.75)
        text = reg.render()
        assert "# HELP service_requests submit requests" in text
        assert "# TYPE service_requests counter" in text
        assert "service_requests 7" in text
        # buckets are cumulative and +Inf-terminated, per exposition spec
        assert 'request_seconds_bucket{le="0.5"} 1' in text
        assert 'request_seconds_bucket{le="1"} 2' in text
        assert 'request_seconds_bucket{le="+Inf"} 2' in text
        assert "request_seconds_sum 1" in text
        assert "request_seconds_count 2" in text


# -- never-perturb invariants --------------------------------------------------

class TestNonPerturbation:
    def test_trace_is_not_identity(self):
        from repro.run_config import RunConfig

        plain = RunConfig(variant="consolidated", strategy="warp")
        traced = RunConfig(variant="consolidated", strategy="warp",
                           trace="/tmp/t.json")
        assert plain == traced
        assert hash(plain) == hash(traced)
        assert "trace" not in plain.axes()
        assert plain.axes() == traced.axes()

    def test_trace_never_reaches_the_cache_key(self):
        from repro.experiments import RunSpec
        from repro.run_config import RunConfig

        traced = RunConfig(variant="grid-level", trace="t.json")
        spec = RunSpec.from_config("sssp", traced)
        assert spec == RunSpec.from_config("sssp", RunConfig(
            variant="grid-level"))
        assert not hasattr(spec, "trace")

    def test_traced_store_entry_is_shared(self, tmp_path):
        from repro.experiments import ExperimentRunner, ResultStore
        from repro.run_config import RunConfig

        runner = ExperimentRunner(scale=SCALE, verify=False,
                                  store=ResultStore(tmp_path / "cache"))
        runner.run_config("sssp", RunConfig(variant="basic-dp"))
        assert runner.stats.executed == 1
        runner.run_config("sssp", RunConfig(variant="basic-dp",
                                            trace=str(tmp_path / "t.json")))
        assert runner.stats.executed == 1  # a hit, not a fork

    def test_traced_run_metrics_bitwise_identical(self, tmp_path):
        from repro.apps import get_app
        from repro.run_config import RunConfig

        app = get_app("sssp")
        dataset = app.default_dataset(SCALE)
        plain = app.run(RunConfig(variant="consolidated"), dataset=dataset)
        trace_path = tmp_path / "run.json"
        traced = app.run(RunConfig(variant="consolidated",
                                   trace=str(trace_path)), dataset=dataset)
        assert dataclasses.asdict(plain.metrics) == \
            dataclasses.asdict(traced.metrics)
        assert traced.checked == plain.checked
        with open(trace_path, encoding="utf-8") as fh:
            obj = json.load(fh)
        assert validate_chrome_trace(obj) >= 4
        names = {e["name"] for e in obj["traceEvents"] if e["ph"] == "X"}
        # the deterministic sim-phase taxonomy, rooted at app.run
        assert {"app.run", "app.verify", "sim.codegen",
                "sim.round-loop"} <= names

    def test_untraced_run_records_no_spans(self):
        from repro.apps import get_app
        from repro.run_config import RunConfig

        tracer = Tracer()
        app = get_app("sssp")
        dataset = app.default_dataset(SCALE)
        app.run(RunConfig(variant="basic-dp"), dataset=dataset, verify=False)
        assert len(tracer) == 0 and not enabled()

    def test_cli_trace_covers_wall_clock(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "sssp", "consolidated", "--scale", str(SCALE),
                     "--trace", str(out), "--tree"]) == 0
        text = capsys.readouterr().out
        assert "repro.trace" in text and "spans cover" in text
        # the acceptance bar: the root span brackets the measured wall,
        # so coverage is structural — assert it stays >= 95%
        pct = float(text.split(" spans cover ")[1].split("%")[0])
        assert pct >= 95.0
        with open(out, encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) > 0


# -- the ServiceMetrics fold ---------------------------------------------------

class TestServiceMetricsFold:
    def test_original_attribute_surface(self):
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        m.requests += 1
        m.requests += 1
        m.coalesced, m.cache_hits = 1, 1
        assert m.requests == 2
        assert m.dedup_rate == 0.5 and m.cache_hit_rate == 0.5
        assert m == ServiceMetrics(requests=2, coalesced=1, cache_hits=1)
        with pytest.raises(TypeError):
            ServiceMetrics(not_a_counter=1)

    def test_snapshot_is_dataclass_era_shape(self):
        from repro.service.metrics import ServiceMetrics

        snap = ServiceMetrics(requests=8, completed=7, failed=1,
                              coalesced=2, executed=3, cache_hits=2,
                              batches=2, max_batch=3,
                              connections=4).snapshot()
        assert snap == {
            "requests": 8, "completed": 7, "failed": 1, "coalesced": 2,
            "executed": 3, "cache_hits": 2, "batches": 2, "max_batch": 3,
            "connections": 4, "dedup_rate": 0.25, "cache_hit_rate": 0.25,
        }

    def test_counters_flow_into_the_registry(self):
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        m.requests += 3
        assert m.registry.get("service_requests").value == 3
        assert "service_requests 3" in m.registry.render()

    def test_describe_status_byte_identical(self):
        from repro.service.metrics import ServiceMetrics, describe_status

        payload = {
            "server": "repro-service", "version": "1.0.0", "protocol": 1,
            "endpoint": "unix:/tmp/svc.sock", "device": "Tesla K20c "
            "(simulated)", "scale": 0.1, "jobs": 1, "verify": True,
            "uptime_s": 3.04, "queue_depth": 0, "inflight": 0,
            "batch_window": 0.05,
            "metrics": ServiceMetrics(requests=1, completed=1, executed=1,
                                      batches=1, max_batch=1,
                                      connections=2).snapshot(),
            "store": {"root": "/tmp/svc", "entries": 1, "shards": 16},
        }
        assert describe_status(payload) == (
            "service   : repro-service v1.0.0 (protocol 1)\n"
            "endpoint  : unix:/tmp/svc.sock\n"
            "device    : Tesla K20c (simulated)  scale 0.1  jobs 1  "
            "verify True\n"
            "uptime    : 3.0s  connections 2\n"
            "queue     : depth 0  in-flight 0\n"
            "requests  : 1 (1 completed, 0 failed)\n"
            "executed  : 1\n"
            "cache hits: 0 (rate 0.0%)\n"
            "coalesced : 0 (dedup rate 0.0%)\n"
            "batches   : 1 (largest 1, window 0.05s)\n"
            "store     : /tmp/svc (1 entries, 16 shards)")


# -- span-overflow surfacing (repro.perf PR) ----------------------------------

class TestDroppedSpanSurfacing:
    """An overflowed tracer must announce itself at export time: once as
    a RuntimeWarning, and cumulatively as the
    ``repro_trace_dropped_spans`` counter in the default registry."""

    def _overflowed_tracer(self):
        tracer = Tracer(max_spans=2)
        with tracing(tracer):
            for i in range(5):
                with span(f"s{i}"):
                    pass
        assert tracer.dropped == 3
        return tracer

    def test_export_warns_once_and_counts(self):
        from repro.telemetry import default_registry

        registry = default_registry()
        counter = registry.counter("repro_trace_dropped_spans")
        before = counter.value
        tracer = self._overflowed_tracer()
        with pytest.warns(RuntimeWarning, match="dropped 3 span"):
            obj = chrome_trace(tracer)
        assert obj["otherData"]["dropped"] == 3
        assert counter.value == before + 3
        # a second export of the same tracer neither re-warns nor
        # double-counts
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            chrome_trace(tracer)
        assert counter.value == before + 3

    def test_clean_export_stays_silent(self):
        import warnings as _warnings

        tracer = Tracer()
        with tracing(tracer), span("only"):
            pass
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            obj = chrome_trace(tracer)
        assert obj["otherData"]["dropped"] == 0

    def test_counter_events_validate(self):
        # the profiler's occupancy track uses ph "C"; the validator must
        # accept it and still reject malformed counters
        obj = {"traceEvents": [
            {"name": "occupancy", "ph": "C", "ts": 1.0, "pid": 0,
             "tid": 0, "args": {"resident_warps": 8}},
        ]}
        assert validate_chrome_trace(obj) == 0
        bad = {"traceEvents": [
            {"name": "occupancy", "ph": "C", "ts": 1.0, "pid": 0,
             "tid": 0, "args": {"resident_warps": "eight"}},
        ]}
        with pytest.raises(ValueError, match="numeric"):
            validate_chrome_trace(bad)

"""Semantic-analysis tests."""

import pytest

from repro.errors import TypeCheckError
from repro.frontend.ast_nodes import BOOL, FLOAT, INT, Type
from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module


def check(src):
    return check_module(parse(src))


def check_body(body, params="int* a, int n"):
    return check(f"__global__ void k({params}) {{ {body} }}")


def expr_type(expr, params="int* a, int n"):
    info = check_body(f"a[0] = 0; {expr};", params)
    fn = info.module.function("k")
    # last statement is the expression statement
    return fn.body.stmts[-1].expr.ty


class TestTypes:
    def test_int_arith(self):
        assert expr_type("n + 1") == INT

    def test_float_promotion(self):
        assert expr_type("n + 1.5f") == FLOAT

    def test_comparison_is_bool(self):
        assert expr_type("n < 2") == BOOL

    def test_pointer_index(self):
        assert expr_type("a[n]") == INT

    def test_pointer_arithmetic(self):
        assert expr_type("a + n") == Type("int", 1)

    def test_deref(self):
        assert expr_type("*a") == INT

    def test_address_of_element(self):
        assert expr_type("&a[0]") == Type("int", 1)

    def test_builtin_vars_are_uint(self):
        assert expr_type("threadIdx.x") == Type("uint")

    def test_atomic_returns_pointee(self):
        assert expr_type("atomicAdd(&a[0], 1)") == INT

    def test_float_atomic(self):
        assert expr_type("atomicAdd(&x[0], 1.0f)",
                         params="float* x, int* a, int n") == FLOAT

    def test_cast(self):
        assert expr_type("(float)n") == FLOAT

    def test_min_follows_args(self):
        assert expr_type("min(n, 3)") == INT

    def test_builtin_constant(self):
        assert expr_type("INT_MAX") == INT


class TestFunctionFacts:
    SRC = """
    __global__ void child(int* a, int u) { a[u] = 1; }
    __global__ void parent(int* a, int n) {
        __syncthreads();
        child<<<1, n>>>(a, 0);
        cudaDeviceSynchronize();
    }
    __device__ int helper(int x) { return x; }
    __global__ void caller(int* a) { a[0] = helper(3); }
    """

    def test_launch_sites_recorded(self):
        info = check(self.SRC)
        launches = info.info("parent").launches
        assert len(launches) == 1 and launches[0].callee == "child"

    def test_sync_flags(self):
        info = check(self.SRC)
        assert info.info("parent").uses_syncthreads
        assert info.info("parent").uses_device_sync
        assert not info.info("child").uses_syncthreads

    def test_call_graph(self):
        info = check(self.SRC)
        assert "helper" in info.info("caller").calls

    def test_recursive_launcher_flag(self):
        info = check("""
        __global__ void r(int* a, int n) {
            if (n > 0) { r<<<1, 1>>>(a, n - 1); }
        }
        """)
        assert info.info("r").is_recursive_launcher

    def test_kernel_names(self):
        info = check(self.SRC)
        assert set(info.kernel_names()) == {"child", "parent", "caller"}


class TestErrors:
    @pytest.mark.parametrize("body", [
        "undeclared = 1;",                 # unknown identifier
        "int x = 1; int x = 2;",           # redeclaration in same scope
        "n();",                            # calling a non-function
        "5 = n;",                          # non-lvalue assignment
        "n[0] = 1;",                       # indexing a scalar
        "a[1.5f] = 1;",                    # non-integer index
        "*n;",                             # deref non-pointer
        "int x = &n;",                     # address of scalar local
        "break;",                          # break outside loop
        "return 5;",                       # value return from void kernel
        "atomicAdd(n, 1);",                # atomic on non-pointer
        "atomicAdd(&a[0]);",               # wrong arity
        "__syncthreads(1);",               # builtin arity
        "int __dp_x = 1;" if False else "a.foo = 1;",  # member access
    ])
    def test_bad_bodies(self, body):
        with pytest.raises(TypeCheckError):
            check_body(body)

    def test_kernel_must_return_void(self):
        with pytest.raises(TypeCheckError):
            check("__global__ int k() { return 1; }")

    def test_kernel_cannot_be_called(self):
        with pytest.raises(TypeCheckError):
            check("""
            __global__ void a(int* p, int n) { p[0] = n; }
            __global__ void b(int* p) { a(p, 1); }
            """)

    def test_launch_of_device_function_rejected(self):
        with pytest.raises(TypeCheckError):
            check("""
            __device__ int f(int x) { return x; }
            __global__ void k(int* a) { f<<<1, 1>>>(1); }
            """)

    def test_launch_arity_checked(self):
        with pytest.raises(TypeCheckError):
            check("""
            __global__ void c(int* a, int u) { a[u] = 1; }
            __global__ void p(int* a) { c<<<1, 1>>>(a); }
            """)

    def test_launch_of_unknown_kernel(self):
        with pytest.raises(TypeCheckError):
            check("__global__ void k(int* a) { nope<<<1, 1>>>(a); }")

    def test_launch_dim_must_be_integer(self):
        with pytest.raises(TypeCheckError):
            check("""
            __global__ void c(int* a) { a[0] = 1; }
            __global__ void k(int* a) { c<<<1.5f, 1>>>(a); }
            """)

    def test_redefinition_of_function(self):
        with pytest.raises(TypeCheckError):
            check("__global__ void k() {}\n__global__ void k() {}")

    def test_shadowing_builtin_rejected(self):
        with pytest.raises(TypeCheckError):
            check("__device__ int atomicAdd(int x) { return x; }")

    def test_scoped_shadowing_allowed(self):
        # an inner scope may shadow an outer local (C semantics)
        check_body("int x = 1; { int x = 2; a[0] = x; } a[1] = x;")

    def test_reserved_dp_prefix_rejected_in_user_code(self):
        with pytest.raises(TypeCheckError, match="reserved"):
            check_body("int __dp_mine = 1;")
        with pytest.raises(TypeCheckError, match="reserved"):
            check("__global__ void k(int __dp_h) {}")

    def test_reserved_prefix_allowed_for_generated_code(self):
        from repro.frontend.typecheck import check_module as cm
        from repro.frontend.parser import parse as p

        cm(p("__global__ void k(int __dp_h) { int __dp_n = __dp_h; }"),
           allow_reserved=True)

    def test_error_carries_location(self):
        with pytest.raises(TypeCheckError) as exc:
            check("__global__ void k() {\n  mystery = 3;\n}")
        assert ":2:" in str(exc.value)

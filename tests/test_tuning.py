"""Tuning-subsystem tests: space enumeration, the search-algorithm
registry (including plugin registration end-to-end), seeded-search
determinism, warm-start caching (a repeated tune executes zero
simulations), TunedConfig persistence and the ``tuned`` app variant,
and ``best_threshold`` (canonical in :mod:`repro.tuning`; its old
``ablation_threshold`` spelling is retired per the deprecation
policy)."""

import json

import pytest

from repro.experiments import ExperimentRunner, ResultStore, ablation_threshold
from repro.sim.occupancy import kc_config
from repro.sim.specs import K20C
from repro.tuning import (
    Candidate,
    ConfigChoice,
    OBJECTIVES,
    SearchAlgorithm,
    TunedConfig,
    TunedConfigRegistry,
    Tuner,
    TuningSpace,
    available_searches,
    best_threshold,
    get_objective,
    get_search,
    register_search,
    unregister_search,
)

SCALE = 0.15


def small_space() -> TuningSpace:
    """A 12-candidate space keeping these tests in the seconds range."""
    return TuningSpace(strategies=(None, "warp", "grid"),
                       thresholds=(None, 32),
                       configs=(ConfigChoice(), ConfigChoice(kc_x=1)))


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One on-disk result store shared by every tuner in this module, so
    later tests are served by earlier tests' simulations."""
    return ResultStore(tmp_path_factory.mktemp("tune-cache"))


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    return TunedConfigRegistry(
        tmp_path_factory.mktemp("tune-reg") / "tuned.json")


def make_tuner(store, registry=None, **kw) -> Tuner:
    return Tuner(scale=SCALE, store=store, registry=registry, **kw)


class TestSpace:
    def test_first_candidate_is_the_paper_default(self):
        space = TuningSpace.default()
        assert space.candidates()[0] == space.default_candidate() == Candidate()

    def test_len_is_the_axis_product(self):
        space = small_space()
        assert len(space) == 3 * 2 * 2 == len(space.candidates())

    def test_default_strategy_axis_tracks_registry(self):
        assert TuningSpace.default().strategies == (None, "warp", "block",
                                                    "grid")

    def test_for_app_drops_threshold_axis_without_guard(self):
        # tree descendants has no `deg > threshold` guard to tune
        assert TuningSpace.for_app("td").thresholds == (None,)
        assert TuningSpace.for_app("sssp").thresholds != (None,)

    def test_config_key_resolution(self):
        assert Candidate().config_key(K20C) is None
        assert Candidate(one2one=True).config_key(K20C) == \
            ("one2one", None, None)
        assert Candidate(threads=128).config_key(K20C) == ("kc", None, 128)
        blocks, threads = kc_config(K20C, 16, 128)
        assert Candidate(kc_x=16, threads=128).config_key(K20C) == \
            ("explicit", blocks, threads)

    def test_config_choice_validation(self):
        with pytest.raises(ValueError, match="KC_X"):
            ConfigChoice(kc_x=4, one2one=True)
        with pytest.raises(ValueError, match="kc_x"):
            ConfigChoice(kc_x=0)

    def test_candidate_validation_mirrors_config_choice(self):
        """Candidates may be built directly (plugins, tuned.json round
        trips), so contradictory combinations must fail loudly too."""
        with pytest.raises(ValueError, match="KC_X"):
            Candidate(kc_x=4, one2one=True)
        with pytest.raises(ValueError, match="threads"):
            Candidate(threads=0)

    def test_candidate_lowers_onto_canonical_cache_entry(self, store):
        """A built-in-strategy candidate shares its cache entry with the
        legacy per-granularity variant (same canonicalization as PR 2)."""
        runner = ExperimentRunner(scale=SCALE, store=store)
        cand_run = runner.run_spec(
            Candidate(strategy="grid").run_spec("sssp", K20C))
        assert cand_run is runner.run("sssp", "grid-level")


class TestSearchRegistry:
    def test_builtins_registered(self):
        assert available_searches() == ("grid", "random", "halving")

    def test_get_unknown_lists_available(self):
        with pytest.raises(KeyError, match="grid, random, halving"):
            get_search("annealing")

    def test_instances_pass_through(self):
        algo = get_search("halving")
        assert get_search(algo) is algo

    def test_duplicate_name_rejected(self):
        from repro.tuning import GridSearch

        with pytest.raises(ValueError, match="already registered"):
            register_search(GridSearch())

    def test_nameless_rejected(self):
        class Nameless(SearchAlgorithm):
            name = ""

            def search(self, oracle, candidates, *, budget=None, seed=0):
                return []

        with pytest.raises(ValueError, match="must define a name"):
            register_search(Nameless())

    def test_non_algorithm_rejected(self):
        with pytest.raises(TypeError):
            register_search(object())

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_search("never-registered")

    def test_objective_registry(self):
        assert set(OBJECTIVES) == {"cycles", "warp-eff", "dram"}
        with pytest.raises(KeyError, match="cycles"):
            get_objective("latency")


class TestTuner:
    def test_grid_never_worse_than_paper_default(self, store, registry):
        res = make_tuner(store, registry).tune("sssp", algorithm="grid",
                                               space=small_space())
        assert res.best.value <= res.baseline.value
        assert res.gain() >= 1.0
        assert res.config.value == res.best.value
        # grid already visits the paper default, so no extra baseline
        # evaluation is added (or double-counted in the trial list)
        assert res.evaluations == len(small_space())
        defaults = [t for t in res.trials
                    if t.candidate == small_space().default_candidate()]
        assert len(defaults) == 1

    def test_maximized_objective_improves_upward(self, store):
        res = make_tuner(store).tune("sssp", objective="warp-eff",
                                     algorithm="grid", space=small_space())
        assert res.best.value >= res.baseline.value
        assert res.gain() >= 1.0

    def test_seeded_random_is_deterministic(self, store):
        kw = dict(objective="cycles", algorithm="random",
                  space=small_space(), budget=4, seed=7)
        a = make_tuner(store).tune("sssp", **kw)
        b = make_tuner(store).tune("sssp", **kw)
        assert [t.candidate for t in a.trials] == \
            [t.candidate for t in b.trials]
        assert a.best == b.best
        # the repeat was served entirely from the shared cache
        assert b.stats.executed == 0

    def test_halving_warm_start_executes_nothing(self, store, registry):
        """Acceptance: an immediate re-tune reports 0 executed — every
        candidate evaluation is served from the shared result cache."""
        kw = dict(algorithm="halving", space=small_space(), seed=0)
        cold = make_tuner(store, registry).tune("sssp", **kw)
        warm = make_tuner(store, registry).tune("sssp", **kw)
        assert warm.stats.executed == 0
        assert warm.best == cold.best
        assert warm.config == cold.config

    def test_halving_final_rung_is_full_fidelity(self, store):
        res = make_tuner(store).tune("sssp", algorithm="halving",
                                     space=small_space())
        assert res.best.scale == SCALE
        assert any(t.scale < SCALE for t in res.trials)

    def test_parallel_tune_matches_serial(self, store):
        serial = make_tuner(store).tune("sssp", algorithm="grid",
                                        space=small_space())
        parallel = make_tuner(store, jobs=2).tune("sssp", algorithm="grid",
                                                  space=small_space())
        assert parallel.best == serial.best

    def test_surrogate_report_rides_the_result(self, store):
        # exact oracles carry no surrogate trail...
        plain = make_tuner(store).tune("sssp", algorithm="grid",
                                       space=small_space())
        assert plain.surrogate is None
        # ...the surrogate prefilter reports its per-rung decisions
        res = make_tuner(store, oracle="surrogate").tune(
            "sssp", algorithm="halving", space=small_space())
        rep = res.surrogate
        assert rep is not None and rep["oracle"] == "surrogate"
        assert rep["decisions"]
        assert all(d["mode"] in ("predicted", "simulated", "fallback")
                   for d in rep["decisions"])
        # the winner always comes from a simulated (full-fidelity) rung
        assert rep["decisions"][-1]["mode"] == "simulated"

    def test_unknown_app_rejected_before_any_simulation(self, store):
        with pytest.raises(KeyError):
            make_tuner(store).tune("nonesuch", space=small_space())


class TestPluginSearch:
    def test_custom_algorithm_end_to_end(self, store):
        """A registered plugin algorithm drives a full tune (registry ->
        tuner -> oracle -> cache) without touching any of them."""

        class TakeTwo(SearchAlgorithm):
            name = "take-two"
            summary = "first two candidates only"

            def search(self, oracle, candidates, *, budget=None, seed=0):
                return oracle.evaluate(candidates[:2])

        register_search(TakeTwo())
        try:
            assert "take-two" in available_searches()
            res = make_tuner(store).tune("sssp", algorithm="take-two",
                                         space=small_space())
        finally:
            unregister_search("take-two")
        assert res.algorithm == "take-two"
        # the space's first candidate is the paper default, so the two
        # visited candidates already include the baseline
        assert res.evaluations == 2
        assert res.best.value <= res.baseline.value

    def test_plugin_visible_in_cli_list(self, capsys):
        from repro.cli import main

        class Probe(SearchAlgorithm):
            name = "probe-zz"
            summary = "listed while registered"

            def search(self, oracle, candidates, *, budget=None, seed=0):
                return []

        register_search(Probe())
        try:
            assert main(["list"]) == 0
        finally:
            unregister_search("probe-zz")
        assert "probe-zz" in capsys.readouterr().out


class TestTunedConfigRegistry:
    def entry(self, app="sssp", scale=SCALE, value=100.0, **kw):
        fields = dict(app=app, objective="cycles",
                      candidate=Candidate(strategy="grid", threshold=2),
                      value=value, baseline_value=150.0, algorithm="grid",
                      evaluations=13, scale=scale, device=K20C.name,
                      version="1.0")
        fields.update(kw)
        return TunedConfig(**fields)

    def test_round_trip_through_json(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "tuned.json")
        reg.put("k1", self.entry())
        assert TunedConfigRegistry(tmp_path / "tuned.json").get("k1") == \
            self.entry()
        data = json.loads((tmp_path / "tuned.json").read_text())
        assert data["format"] == 1
        assert data["entries"]["k1"]["candidate"]["strategy"] == "grid"

    def test_missing_and_corrupt_files_are_empty(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "nope" / "tuned.json")
        assert len(reg) == 0 and reg.get("k") is None
        assert not (tmp_path / "nope").exists()  # reads never create dirs
        bad = tmp_path / "tuned.json"
        bad.write_text("not json")
        assert len(TunedConfigRegistry(bad)) == 0

    def test_lookup_prefers_exact_then_largest_scale(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "tuned.json")
        reg.put("small", self.entry(scale=0.1, value=90.0))
        reg.put("large", self.entry(scale=0.5, value=110.0))
        assert reg.lookup("sssp", "cycles").scale == 0.5
        assert reg.lookup("sssp", "cycles", scale=0.1).value == 90.0
        assert reg.lookup("spmv", "cycles") is None

    def test_lookup_prefers_matching_device(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "tuned.json")
        reg.put("k20", self.entry(device=K20C.name, value=120.0))
        reg.put("tiny", self.entry(device="tiny-test-gpu", value=80.0))
        assert reg.lookup("sssp", "cycles",
                          device="tiny-test-gpu").value == 80.0
        assert reg.lookup("sssp", "cycles", device=K20C.name).value == 120.0

    def test_lookup_tie_break_respects_objective_direction(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "tuned.json")
        reg.put("lo", self.entry(objective="warp-eff", value=0.6))
        reg.put("hi", self.entry(objective="warp-eff", value=0.9))
        # warp efficiency is maximized: the better (higher) entry wins
        assert reg.lookup("sssp", "warp-eff").value == 0.9
        reg.put("fast", self.entry(value=90.0))
        reg.put("slow", self.entry(value=110.0))
        assert reg.lookup("sssp", "cycles").value == 90.0

    def test_clear(self, tmp_path):
        reg = TunedConfigRegistry(tmp_path / "tuned.json")
        reg.put("k1", self.entry())
        assert reg.clear() == 1
        assert len(reg) == 0


class TestTunedVariant:
    def test_runner_without_registry_raises(self, store):
        runner = ExperimentRunner(scale=SCALE, store=store)
        with pytest.raises(RuntimeError, match="tuned-config registry"):
            runner.run("sssp", "tuned")

    def test_missing_entry_raises_with_hint(self, store, tmp_path):
        runner = ExperimentRunner(
            scale=SCALE, store=store,
            tuned=TunedConfigRegistry(tmp_path / "tuned.json"))
        with pytest.raises(KeyError, match="repro tune sssp"):
            runner.run("sssp", "tuned")

    def test_tuned_variant_consumes_stored_config(self, store, registry):
        """`repro run <app> tuned` semantics: the stored winner resolves
        onto a concrete consolidated run, served from the shared cache."""
        res = make_tuner(store, registry).tune("sssp", algorithm="grid",
                                               space=small_space())
        runner = ExperimentRunner(scale=SCALE, store=store, tuned=registry)
        run = runner.run("sssp", "tuned")
        assert run.metrics.cycles == res.best.value
        assert runner.stats.executed == 0  # pure cache consumption

    def test_exact_context_entry_beats_fuzzy_match(self, store, registry):
        """A stale or foreign entry (here: a larger tuning scale, which
        the fuzzy lookup prefers) must not shadow the entry tuned for
        exactly this runner's device/cost/scale/version context."""
        res = make_tuner(store, registry).tune("sssp", algorithm="grid",
                                               space=small_space())
        registry.put("decoy", TunedConfig(
            app="sssp", objective="cycles",
            candidate=Candidate(strategy="warp"), value=1.0,
            baseline_value=2.0, algorithm="grid", evaluations=1,
            scale=9.9, device=K20C.name, version="0.0"))
        try:
            runner = ExperimentRunner(scale=SCALE, store=store,
                                      tuned=registry)
            assert runner.tuned_entry("sssp") == res.config
        finally:
            registry.clear()

    def test_explicit_strategy_contradicts_tuned(self, store, registry):
        runner = ExperimentRunner(scale=SCALE, store=store, tuned=registry)
        with pytest.raises(ValueError, match="consolidated"):
            runner.run("sssp", "tuned", strategy="warp")

    def test_direct_app_run_rejects_tuned(self):
        from repro.apps import get_app

        with pytest.raises(ValueError, match="tuned-config registry"):
            get_app("sssp").run("tuned", scale=SCALE)


class TestBestThreshold:
    @pytest.fixture(scope="class")
    def sweep_runner(self, store):
        return ExperimentRunner(scale=SCALE, store=store)

    def test_ablation_shim_retired(self):
        """The PR-3 ``ablation_threshold.best_threshold`` shim is gone
        (two-PR cadence, repro.errors.DeprecationPolicy)."""
        assert not hasattr(ablation_threshold, "best_threshold")

    def test_matches_manual_argmin(self, sweep_runner):
        """The 1-D grid search gives the same answer (and hits the same
        cache entries) as the hand-rolled sweep it replaced."""
        best, best_cycles = None, float("inf")
        for t in ablation_threshold.THRESHOLDS:
            cycles = sweep_runner.run("sssp", "grid-level",
                                      threshold=t).metrics.cycles
            if cycles < best_cycles:
                best, best_cycles = t, cycles
        assert best_threshold(
            "sssp", thresholds=ablation_threshold.THRESHOLDS,
            runner=sweep_runner) == best

    def test_variant_without_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            best_threshold("sssp", variant="basic-dp")


class TestCliTune:
    def test_tune_run_tuned_and_cache_info(self, capsys, tmp_path):
        from repro.cli import main

        args = ["tune", "sssp", "--search", "random", "--budget", "3",
                "--scale", str(SCALE), "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "saved tuned config" in cold
        assert "gain" in cold

        # warm re-tune is served entirely from the on-disk cache
        assert main(args) == 0
        assert ": 0 executed" in capsys.readouterr().out

        assert main(["run", "sssp", "tuned", "--scale", str(SCALE),
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tuned[cycles]" in out
        assert "verified=True" in out

        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "tuned     : 1 configs" in capsys.readouterr().out

        # `cache clear` drops the tuned registry along with the runs
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 tuned configs" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "tuned     : 0 configs" in capsys.readouterr().out

    def test_tune_no_cache_persists_nothing(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["tune", "sssp", "--search", "random", "--budget", "2",
                     "--scale", str(SCALE), "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "not persisted" in capsys.readouterr().out
        assert not (tmp_path / "tuned.json").exists()
        assert list(tmp_path.glob("*/*.pkl")) == []  # no run store either

    def test_run_tuned_without_config_errors(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["run", "sssp", "tuned", "--scale", str(SCALE),
                     "--cache-dir", str(tmp_path)]) == 2
        assert "no tuned config" in capsys.readouterr().err

    def test_run_threshold_flag(self, capsys, tmp_path):
        from repro.cli import main

        args = ["run", "sssp", "grid-level", "--scale", str(SCALE),
                "--cache-dir", str(tmp_path)]
        assert main(args + ["--threshold", "100000"]) == 0
        flat_like = capsys.readouterr().out
        assert main(args) == 0
        default = capsys.readouterr().out
        # an effectively-infinite threshold delegates nothing: no child
        # kernels launch, unlike the paper-default run
        assert "device=0" in flat_like
        assert "device=0" not in default

    def test_compile_threshold_flag(self, capsys):
        from repro.cli import main

        assert main(["compile", "sssp", "--threshold", "42"]) == 0
        assert "delegation threshold: 42" in capsys.readouterr().out


class TestWeakSurrogateWarning:
    """`repro tune --oracle surrogate` must flag a prefilter whose
    holdout Spearman rho says its ranking is near-random."""

    def test_strong_or_absent_report_is_silent(self):
        from repro.tuning import weak_surrogate_warning

        assert weak_surrogate_warning(None) is None
        assert weak_surrogate_warning({}) is None
        assert weak_surrogate_warning(
            {"spearman": 0.91, "train_rows": 40}) is None

    def test_weak_rho_warns(self):
        from repro.tuning import WEAK_SURROGATE_RHO, weak_surrogate_warning

        text = weak_surrogate_warning({"spearman": 0.21, "train_rows": 12})
        assert text is not None and "0.210" in text
        assert f"below {WEAK_SURROGATE_RHO:g}" in text
        # the floor itself does not warn; just under it does
        assert weak_surrogate_warning({"spearman": 0.5}) is None
        assert weak_surrogate_warning({"spearman": 0.499}) is not None

    def test_unknown_rho_warns_differently(self):
        from repro.tuning import weak_surrogate_warning

        text = weak_surrogate_warning({"spearman": None, "train_rows": 3})
        assert text is not None and "unknown" in text and "3" in text

"""AST infrastructure tests: Type, traversal, Transformer, clone."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.ast_nodes import (
    BinOp,
    Block,
    Ident,
    IntLit,
    Transformer,
    Type,
    clone,
    iter_children,
    walk,
)
from repro.frontend.parser import parse


class TestType:
    def test_str(self):
        assert str(Type("int", 1)) == "int*"
        assert str(Type("uint")) == "unsigned int"
        assert str(Type("float", 2)) == "float**"

    def test_predicates(self):
        assert Type("int").is_integer and Type("int").is_arith
        assert Type("float").is_float and not Type("float").is_integer
        assert Type("int", 1).is_pointer and not Type("int", 1).is_arith
        assert Type("void").is_void and not Type("void", 1).is_void

    def test_pointee_roundtrip(self):
        t = Type("float", 2)
        assert t.pointee().pointer_to() == t

    def test_deref_scalar_raises(self):
        with pytest.raises(ValueError):
            Type("int").pointee()

    def test_unknown_base_raises(self):
        with pytest.raises(ValueError):
            Type("quux")


class TestEquality:
    def test_structural_equality_ignores_locations(self):
        a = parse("__global__ void k(int* a) { a[0] = 1 + 2; }")
        b = parse("__global__ void k(int* a)\n{\n  a[0] = 1 + 2;\n}")
        assert a == b

    def test_value_difference_detected(self):
        a = parse("__global__ void k(int* a) { a[0] = 1; }")
        b = parse("__global__ void k(int* a) { a[0] = 2; }")
        assert a != b

    def test_different_node_types_unequal(self):
        assert IntLit(1) != Ident("x")


class TestTraversal:
    SRC = "__global__ void k(int* a, int n) { if (n) { a[0] = n + 1; } }"

    def test_walk_visits_everything(self):
        mod = parse(self.SRC)
        kinds = {type(n).__name__ for n in walk(mod)}
        assert {"Module", "FunctionDef", "Block", "If", "ExprStmt",
                "Assign", "Index", "BinOp", "Ident", "IntLit"} <= kinds

    def test_iter_children_is_shallow(self):
        mod = parse(self.SRC)
        fn = mod.function("k")
        children = list(iter_children(fn))
        assert any(isinstance(c, Block) for c in children)

    def test_walk_preorder(self):
        e = BinOp("+", IntLit(1), IntLit(2))
        assert [type(n).__name__ for n in walk(e)] == ["BinOp", "IntLit", "IntLit"]


class TestTransformer:
    def test_identity_returns_same_object(self):
        mod = parse(self.SRC) if hasattr(self, "SRC") else parse(
            "__global__ void k(int* a) { a[0] = 1; }")
        out = Transformer().visit(mod)
        assert out is mod  # untouched trees are not rebuilt

    def test_leaf_replacement_rebuilds_spine_only(self):
        mod = parse("__global__ void k(int* a) { a[0] = 1; a[1] = 2; }")

        class AddTen(Transformer):
            def visit_IntLit(self, node):
                return IntLit(node.value + 10)

        out = AddTen().visit(mod)
        values = [n.value for n in walk(out) if isinstance(n, IntLit)]
        assert values == [10, 11, 11, 12]
        assert out is not mod

    def test_statement_splice(self):
        mod = parse("__global__ void k(int* a) { a[0] = 1; }")

        class Duplicate(Transformer):
            def visit_ExprStmt(self, node):
                return [node, node]

        out = Duplicate().visit(mod)
        body = out.function("k").body
        assert len(body.stmts) == 2

    def test_statement_removal(self):
        mod = parse("__global__ void k(int* a) { a[0] = 1; a[1] = 2; }")

        class DropAll(Transformer):
            def visit_ExprStmt(self, node):
                return []

        out = DropAll().visit(mod)
        assert out.function("k").body.stmts == []


class TestClone:
    def test_clone_is_equal_but_distinct(self):
        mod = parse("__global__ void k(int* a, int n) { if (n) a[0] = n; }")
        cp = clone(mod)
        assert cp == mod
        originals = {id(n) for n in walk(mod)}
        copies = {id(n) for n in walk(cp)}
        assert originals.isdisjoint(copies)

    def test_clone_preserves_shape(self):
        mod = parse("__global__ void k(int* a) { for (int i = 0; i < 4; i++) a[i] = i; }")
        cp = clone(mod)
        assert len(list(walk(cp))) == len(list(walk(mod)))


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_intlit_equality_property(x, y):
    assert (IntLit(x) == IntLit(y)) == (x == y)

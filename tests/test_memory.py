"""GlobalMemory / DeviceArray tests."""

import numpy as np
import pytest

from repro.errors import AllocationError, SimulationError
from repro.sim.memory import GlobalMemory


@pytest.fixture
def mem():
    return GlobalMemory(total_bytes=1 << 20, heap_bytes=1 << 16)


class TestAllocation:
    def test_alloc_returns_aligned_disjoint_regions(self, mem):
        a = mem.alloc_array("a", "i4", 100)
        b = mem.alloc_array("b", "i4", 100)
        assert a.base_addr % GlobalMemory.ALIGN == 0
        assert b.base_addr >= a.base_addr + 400

    def test_from_numpy_copies(self, mem):
        host = np.arange(10, dtype=np.int32)
        arr = mem.from_numpy("x", host)
        host[0] = 99
        assert arr.load(0) == 0

    def test_to_numpy_copies(self, mem):
        arr = mem.from_numpy("x", np.arange(4, dtype=np.int32))
        out = arr.to_numpy()
        out[0] = 99
        assert arr.load(0) == 0

    def test_out_of_memory(self):
        small = GlobalMemory(total_bytes=4096, heap_bytes=1024)
        with pytest.raises(AllocationError):
            small.alloc_array("big", "i4", 10_000)

    def test_dtypes(self, mem):
        for code, npdt in (("i4", np.int32), ("f4", np.float32),
                           ("f8", np.float64), ("i8", np.int64)):
            arr = mem.alloc_array(f"x{code}", code, 4)
            assert arr.data.dtype == npdt

    def test_rejects_2d(self, mem):
        with pytest.raises(AllocationError):
            mem.from_numpy("m", np.zeros((2, 2), dtype=np.int32))

    def test_heap_binding_respects_region(self, mem):
        arr = mem.bind_heap_array("buf", "i8", 8, mem.heap_base)
        assert arr.base_addr == mem.heap_base
        with pytest.raises(AllocationError):
            mem.bind_heap_array("bad", "i8", 8, mem.BASE)  # not in heap


class TestDeviceArray:
    def test_load_store(self, mem):
        arr = mem.alloc_array("a", "i4", 8)
        arr.store(3, 42)
        assert arr.load(3) == 42

    def test_bounds_checked(self, mem):
        arr = mem.alloc_array("a", "i4", 8)
        with pytest.raises(SimulationError):
            arr.load(8)
        with pytest.raises(SimulationError):
            arr.store(-1, 0)

    def test_view_pointer_arithmetic(self, mem):
        arr = mem.from_numpy("a", np.arange(10, dtype=np.int32))
        v = arr.view(4)
        assert v.load(0) == 4
        assert v.view(2).load(0) == 6
        v.store(1, 99)
        assert arr.load(5) == 99

    def test_view_zero_is_identity(self, mem):
        arr = mem.alloc_array("a", "i4", 4)
        assert arr.view(0) is arr

    def test_addresses_follow_views(self, mem):
        arr = mem.alloc_array("a", "i4", 8)
        assert arr.view(2).addr_of(1) == arr.addr_of(3)

    def test_view_bounds_still_checked(self, mem):
        arr = mem.alloc_array("a", "i4", 8)
        v = arr.view(6)
        with pytest.raises(SimulationError):
            v.load(2)

    def test_int_overflow_wraps_like_int32(self, mem):
        arr = mem.alloc_array("a", "i4", 1)
        arr.store(0, 2**31 + 5)  # wraps to negative, like CUDA int
        assert arr.load(0) == -(2**31) + 5

"""Concurrency hardening tests: many processes hammering the on-disk
stores without corruption.

The sharded :class:`~repro.experiments.store.ResultStore` relies on
atomic temp-file + rename per entry; the
:class:`~repro.tuning.registry.TunedConfigRegistry` is a whole-file
read-modify-write and additionally holds an flock. These tests drive
both from real concurrent processes — the exact situation an experiment
service with several sibling CLI invocations produces — and assert that
readers never observe a torn entry and writers never lose each other's
updates.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.experiments import ResultStore
from repro.tuning.registry import TunedConfig, TunedConfigRegistry
from repro.tuning.space import Candidate

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="hammer tests need fork")

KEY = "ab" + "0" * 62
ROUNDS = 30


def _hammer_store(root) -> int:
    """Rewrite one key while reading it back; every read must be a
    valid entry (never torn, never half-written)."""
    store = ResultStore(root)
    pid = os.getpid()
    bad = 0
    for i in range(ROUNDS):
        store.put(KEY, {"round": i, "writer": pid, "blob": b"x" * 4096})
        value = store.get(KEY)
        if not (isinstance(value, dict) and value.get("blob") == b"x" * 4096):
            bad += 1
    return bad


def _hammer_registry(args) -> int:
    path, who = args
    registry = TunedConfigRegistry(path)
    config = TunedConfig(app=f"app{who}", objective="cycles",
                         candidate=Candidate(), value=float(who),
                         baseline_value=1.0, algorithm="grid",
                         evaluations=1, scale=1.0, device="K20c",
                         version="1.0.0")
    for i in range(ROUNDS):
        registry.put(f"key-{who}", config)
        # interleave reads of the whole map: must always parse
        registry.entries()
    return who


class TestResultStoreHammer:
    def test_one_key_many_writers_never_torn(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            bad = pool.map(_hammer_store, [tmp_path] * 4)
        assert bad == [0, 0, 0, 0]
        final = ResultStore(tmp_path).get(KEY)
        assert isinstance(final, dict) and final["blob"] == b"x" * 4096
        # exactly one on-disk entry: every writer agreed on the shard
        assert len(ResultStore(tmp_path)) == 1

    def test_no_temp_droppings_after_hammer(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(3) as pool:
            pool.map(_hammer_store, [tmp_path] * 3)
        assert list(tmp_path.rglob("*.tmp")) == []


class TestRegistryHammer:
    def test_concurrent_writers_lose_no_entries(self, tmp_path):
        path = tmp_path / "tuned.json"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            pool.map(_hammer_registry, [(path, who) for who in range(4)])
        registry = TunedConfigRegistry(path)
        assert len(registry) == 4
        for who in range(4):
            entry = registry.get(f"key-{who}")
            assert entry is not None and entry.value == float(who)

    def test_registry_file_always_parses(self, tmp_path):
        path = tmp_path / "tuned.json"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            pool.map(_hammer_registry, [(path, who) for who in range(2)])
        import json

        data = json.loads(path.read_text())
        assert set(data["entries"]) == {"key-0", "key-1"}


class TestCorruptEvictionRace:
    def test_corrupt_entry_eviction_does_not_kill_fresh_write(self, tmp_path):
        """The corrupt-eviction path unlinks only after a failed read;
        a concurrent atomic rewrite that lands in between must win on
        the *next* read (the store never loops into a stale unlink)."""
        store = ResultStore(tmp_path)
        store.put(KEY, {"ok": True})
        path = store.path_for(KEY)
        path.write_bytes(b"torn")
        assert store.get(KEY) is None  # evicted
        store.put(KEY, {"ok": 2})
        assert store.get(KEY) == {"ok": 2}

    def test_pickle_protocol_round_trips_across_processes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"arr": list(range(100))})
        raw = pickle.load(store.path_for(KEY).open("rb"))
        assert raw["arr"][-1] == 99

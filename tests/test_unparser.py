"""Unparser round-trip tests: unparse(parse(x)) must re-parse to an AST
structurally equal to parse(x) (locations are ignored by node equality)."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.parser import parse
from repro.frontend.unparser import unparse

ROUND_TRIP_SOURCES = [
    "__global__ void k() {}",
    "__global__ void k(int* a, int n) { a[0] = n; }",
    "__device__ int f(int x) { return x * 2; }",
    "__device__ float g(float x) { return x / 2.0f; }",
    "__global__ void k(int* a) { for (int i = 0; i < 8; i++) a[i] = i; }",
    "__global__ void k(int* a, int n) { while (n > 0) { n = n - 1; } }",
    "__global__ void k(int* a, int n) { do { n = n - 1; } while (n); }",
    "__global__ void k(int* a, int n) { if (n) a[0] = 1; else a[0] = 2; }",
    "__global__ void k(int* a) { int x = threadIdx.x + blockIdx.x * blockDim.x; a[x] = x; }",
    "__global__ void k(int* a) { __shared__ int s[32]; s[threadIdx.x] = 0; }",
    "__global__ void k(int* a) { atomicAdd(&a[0], 1); __syncthreads(); }",
    "__global__ void c(int* a, int u) { a[u] = u; }\n"
    "__global__ void k(int* a, int n) { c<<<1, n>>>(a, 0); }",
    "__global__ void k(int* a, int n) { a[0] = n > 0 ? n : -n; }",
    "__global__ void k(int* a, int n) { a[0] = (n & 3) | (n << 2) ^ (n >> 1); }",
    "__global__ void k(float* x) { x[0] = (float)1 + 2.5f; }",
    "__device__ int h(int a, int b) { return a > b ? a : b; }\n"
    "__global__ void k(int* a) { a[0] = h(1, 2); }",
    "__global__ void k(int* a, int n) { int x = 0, y = 1; a[x] = y; }",
    "__device__ int counter = 0;\n__global__ void k() { counter = counter + 1; }",
    "__global__ void k(int* a, int n) {\n"
    "#pragma dp consldt(grid) buffer(type: custom, perBufferSize: 64) work(n)\n"
    "if (n > 0) { k<<<1, 1>>>(a, n - 1); } }",
]


@pytest.mark.parametrize("src", ROUND_TRIP_SOURCES,
                         ids=range(len(ROUND_TRIP_SOURCES)))
def test_round_trip(src):
    first = parse(src)
    text = unparse(first)
    second = parse(text)
    assert first == second, f"unparsed text:\n{text}"


def test_unparse_is_stable():
    src = ROUND_TRIP_SOURCES[4]
    once = unparse(parse(src))
    twice = unparse(parse(once))
    assert once == twice


def test_parentheses_preserved_where_needed():
    src = "__global__ void k(int* a, int n) { a[0] = (n + 1) * 2; }"
    text = unparse(parse(src))
    assert "(n + 1) * 2" in text


def test_no_spurious_parentheses():
    src = "__global__ void k(int* a, int n) { a[0] = n + 1 * 2; }"
    text = unparse(parse(src))
    assert "n + 1 * 2" in text


def test_precedence_against_python_eval():
    # The unparsed arithmetic must mean the same thing as the original:
    # evaluate both under Python (valid for +,*,-,// arithmetic subset).
    exprs = ["1 + 2 * 3", "(1 + 2) * 3", "10 - 4 - 3", "2 * (3 + 4) - 5"]
    for e in exprs:
        src = f"__global__ void k(int* a) {{ a[0] = {e}; }}"
        text = unparse(parse(src))
        body = text.split("a[0] = ")[1].split(";")[0]
        assert eval(body) == eval(e)  # noqa: S307 - test-only arithmetic


_small_int = st.integers(min_value=0, max_value=100)


@given(_small_int, _small_int, _small_int,
       st.sampled_from(["+", "-", "*"]), st.sampled_from(["+", "-", "*"]))
def test_random_arithmetic_roundtrip(a, b, c, op1, op2):
    expr = f"{a} {op1} {b} {op2} {c}"
    src = f"__global__ void k(int* o) {{ o[0] = {expr}; }}"
    first = parse(src)
    second = parse(unparse(first))
    assert first == second

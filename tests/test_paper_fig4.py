"""Integration test mirroring the paper's Figure 4 example.

Fig. 4(a) shows an annotated parent kernel whose child-kernel launch over
`curr` is replaced (Fig. 4(b)) by buffer insertions, a barrier and a
designated-thread launch of the consolidated child. We rebuild that code,
verify the generated structure matches Fig. 4(b)'s shape for each
granularity, and execute it.
"""

import numpy as np
import pytest

from repro.compiler import consolidate_source
from repro.sim.device import Device

# Fig. 4(a)-style annotated code: process(curr) delegated per-thread.
FIG4 = """
__global__ void process(int* nodes, int* result, int curr) {
    int t = threadIdx.x;
    int count = nodes[curr];
    if (t < count) {
        atomicAdd(&result[curr], t + 1);
    }
}

__global__ void traverse(int* nodes, int* result, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int curr = tid;
        int count = nodes[curr];
        #pragma dp consldt(block) buffer(type: custom, perBufferSize: 256) work(curr)
        if (count > 0) {
            process<<<1, count>>>(nodes, result, curr);
        }
    }
}
"""


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    nodes = rng.integers(0, 50, 96).astype(np.int32)
    # expected: result[u] = count*(count+1)/2
    expected = (nodes.astype(np.int64) * (nodes + 1) // 2).astype(np.int32)
    return nodes, expected


def execute(source, nodes):
    dev = Device()
    prog = dev.load(source)
    d_nodes = dev.from_numpy("nodes", nodes)
    d_result = dev.from_numpy("result", np.zeros_like(nodes))
    prog.launch("traverse", 3, 32, d_nodes, d_result, len(nodes))
    metrics = dev.synchronize()
    return d_result.to_numpy(), metrics


class TestFig4Shape:
    def test_generated_block_level_matches_fig4b(self):
        res = consolidate_source(FIG4, granularity="block")
        text = res.source
        # Fig. 4(b)'s landmarks, in order: push, barrier, designated launch
        push_at = text.index("__dp_buf_push")
        sync_at = text.index("__syncthreads()")
        guard_at = text.index("if (threadIdx.x == 0)")
        launch_at = text.index("process_cons_block<<<")
        assert push_at < sync_at < guard_at < launch_at

    def test_per_buffer_size_clause_respected(self):
        res = consolidate_source(FIG4, granularity="block")
        assert "__dp_buf_acquire(1, 256, 2)" in res.source

    def test_buffer_type_custom(self):
        res = consolidate_source(FIG4).report
        assert res.buffer_type == "custom"


class TestFig4Execution:
    def test_basic_dp_is_correct(self, dataset):
        nodes, expected = dataset
        result, _ = execute(FIG4, nodes)
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("gran", ["warp", "block", "grid"])
    def test_consolidated_is_correct_and_cheaper(self, dataset, gran):
        nodes, expected = dataset
        base_result, base_metrics = execute(FIG4, nodes)
        res = consolidate_source(FIG4, granularity=gran)
        result, metrics = execute(res.source, nodes)
        np.testing.assert_array_equal(result, expected)
        assert metrics.device_launches < base_metrics.device_launches
        assert metrics.cycles < base_metrics.cycles

"""Property-based fuzzing of the whole frontend/backend pipeline.

A hypothesis strategy generates random (but well-formed) MiniCUDA kernels;
for each one we require:

1. unparse -> parse is a structural fixpoint;
2. the generated kernel compiles to Python and *executes* on the simulator
   without crashing;
3. execution is deterministic.

This kind of differential fuzzing is what shook out the early precedence
and scoping bugs in the unparser/codegen.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module
from repro.frontend.unparser import unparse
from repro.sim.device import Device

from tests.helpers import minicuda_expr

# -- expression strategy (shared with test_strategies via helpers) ------------

_expr = minicuda_expr(
    atoms=["n", "t", "acc", "out[t]", "out[n % 8]", "out[0]"])

_conds = st.builds(lambda a, op, b: f"({a} {op} {b})", _expr,
                   st.sampled_from(["<", ">", "==", "!=", "<=", ">="]), _expr)

# -- statement strategy -------------------------------------------------------


def _assign(expr):
    return st.builds(lambda t, e: f"{t} = {e};",
                     st.sampled_from(["acc", "out[t]", "out[n % 8]"]), expr)


def _ifstmt(stmt):
    return st.builds(lambda c, s: f"if {c} {{ {s} }}", _conds, stmt)


def _forstmt(stmt):
    return st.builds(
        lambda k, s: f"for (int i{k} = 0; i{k} < {k + 1}; i{k}++) {{ {s} }}",
        st.integers(0, 3), stmt,
    )


_stmt = st.recursive(_assign(_expr), lambda s: st.one_of(_ifstmt(s), _forstmt(s)),
                     max_leaves=4)

_body = st.lists(_stmt, min_size=1, max_size=5).map(" ".join)


def make_kernel(body: str) -> str:
    return (
        "__global__ void fuzz(int* out, int n) {\n"
        "    int t = threadIdx.x;\n"
        "    int acc = 0;\n"
        f"    {body}\n"
        "    out[(t + 1) % 8] = acc;\n"
        "}\n"
    )


@given(_body)
@settings(max_examples=60, deadline=None)
def test_roundtrip_fixpoint(body):
    src = make_kernel(body)
    first = parse(src)
    second = parse(unparse(first))
    assert first == second


@given(_body)
@settings(max_examples=40, deadline=None)
def test_compiles_and_runs_deterministically(body):
    src = make_kernel(body)
    results = []
    for _ in range(2):
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.arange(8, dtype=np.int32))
        prog.launch("fuzz", 1, 8, out, 5)
        metrics = dev.synchronize()
        results.append((list(out.data), metrics.cycles))
    assert results[0] == results[1]


@given(_body)
@settings(max_examples=40, deadline=None)
def test_typecheck_accepts_generated_programs(body):
    info = check_module(parse(make_kernel(body)))
    assert "fuzz" in info.kernel_names()

"""Property-based fuzzing of the whole frontend/backend pipeline.

A hypothesis strategy generates random (but well-formed) MiniCUDA kernels;
for each one we require:

1. unparse -> parse is a structural fixpoint;
2. the generated kernel compiles to Python and *executes* on the simulator
   without crashing;
3. execution is deterministic.

This kind of differential fuzzing is what shook out the early precedence
and scoping bugs in the unparser/codegen.
"""

import numpy as np
from hypothesis import given, settings

from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module
from repro.frontend.unparser import unparse
from repro.sim.device import Device

from tests.helpers import make_fuzz_kernel as make_kernel, minicuda_body

# program strategy shared with test_backends via helpers: the statement/
# body generators were hoisted into tests.helpers.minicuda_body so the
# backend differential harness fuzzes the same space
_body = minicuda_body()


@given(_body)
@settings(max_examples=60, deadline=None)
def test_roundtrip_fixpoint(body):
    src = make_kernel(body)
    first = parse(src)
    second = parse(unparse(first))
    assert first == second


@given(_body)
@settings(max_examples=40, deadline=None)
def test_compiles_and_runs_deterministically(body):
    src = make_kernel(body)
    results = []
    for _ in range(2):
        dev = Device()
        prog = dev.load(src)
        out = dev.from_numpy("out", np.arange(8, dtype=np.int32))
        prog.launch("fuzz", 1, 8, out, 5)
        metrics = dev.synchronize()
        results.append((list(out.data), metrics.cycles))
    assert results[0] == results[1]


@given(_body)
@settings(max_examples=40, deadline=None)
def test_typecheck_accepts_generated_programs(body):
    info = check_module(parse(make_kernel(body)))
    assert "fuzz" in info.kernel_names()

"""Timeline capture/rendering tests."""

import numpy as np

from repro.sim.device import Device
from repro.sim.timeline import device_timeline, render_gantt

SRC = """
__global__ void child(int* out, int i) { atomicAdd(&out[i % 8], 1); }
__global__ void parent(int* out, int n) {
    if (threadIdx.x == 0) {
        for (int i = 0; i < n; i++) {
            child<<<1, 32>>>(out, i);
        }
    }
}
"""


def make_run(n=6):
    dev = Device()
    prog = dev.load(SRC)
    out = dev.from_numpy("out", np.zeros(8, np.int32))
    prog.launch("parent", 1, 32, out, n)
    dev.synchronize()
    return dev


class TestTimeline:
    def test_span_per_instance(self):
        dev = make_run(6)
        tl = device_timeline(dev)
        assert len(tl.spans) == 7  # parent + 6 children

    def test_children_marked_device_launched(self):
        tl = device_timeline(make_run(3))
        child_spans = [s for s in tl.spans if s.name == "child"]
        assert all(s.from_device and s.depth == 1 for s in child_spans)

    def test_completion_ordering(self):
        tl = device_timeline(make_run(4))
        parent = next(s for s in tl.spans if s.name == "parent")
        for s in tl.spans:
            assert s.completion <= parent.completion + 1e-9

    def test_spans_within_makespan(self):
        tl = device_timeline(make_run(5))
        for s in tl.spans:
            assert 0 <= s.start <= s.completion <= tl.makespan + 1e-9

    def test_summary_renders(self):
        tl = device_timeline(make_run(4))
        text = tl.summary()
        assert "parent" in text and "child" in text and "x4" in text

    def test_gantt_renders(self):
        tl = device_timeline(make_run(6))
        chart = render_gantt(tl, width=40)
        lines = chart.splitlines()
        assert len(lines) == 7
        assert all("#" in line for line in lines)

    def test_gantt_sampling(self):
        tl = device_timeline(make_run(100))
        chart = render_gantt(tl, width=40, max_rows=10)
        assert "instances total" in chart

    def test_empty_timeline(self):
        from repro.sim.timeline import Timeline

        assert render_gantt(Timeline(makespan=0)) == "(empty timeline)"

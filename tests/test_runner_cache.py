"""Tests for the parallel, cache-backed experiment runner: value-based
cache keys, the content-addressed on-disk store, work-plan dedup, and
``--jobs N`` producing output identical to serial execution."""

import pickle

import pytest

from repro.experiments import (
    ExperimentRunner,
    FIGURES,
    ResultStore,
    RunSpec,
    WorkPlan,
    fig5_allocators,
    figure_plan,
)
from repro.experiments.store import dataset_fingerprint, run_key
from repro.sim.specs import CostModel, DEFAULT_COST_MODEL, K20C

SCALE = 0.15


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


class TestCostModelKeying:
    """The cache must key on cost-model *values*, not object identity
    (the seed used id(cost_obj), which misses sharing between equal
    models and can collide once the GC reuses an id)."""

    def test_equal_cost_models_share_entry(self, runner):
        a = runner.run("spmv", "basic-dp", cost=CostModel())
        b = runner.run("spmv", "basic-dp", cost=CostModel())
        assert a is b

    def test_default_cost_is_an_equal_value(self, runner):
        a = runner.run("spmv", "basic-dp")
        b = runner.run("spmv", "basic-dp", cost=CostModel())
        assert a is b

    def test_differing_cost_models_do_not_share(self, runner):
        a = runner.run("spmv", "basic-dp")
        b = runner.run("spmv", "basic-dp",
                       cost=DEFAULT_COST_MODEL.scaled(dram_transaction_cycles=41))
        assert a is not b

    def test_gc_id_reuse_cannot_collide(self, runner):
        """Run with a scaled cost model, drop it, build another scaled
        model (which may reuse the freed id), and check each keys its
        own entry."""
        before = runner.stats.executed
        cost1 = DEFAULT_COST_MODEL.scaled(atomic_cycles=13)
        run1 = runner.run("spmv", "no-dp", cost=cost1)
        del cost1
        cost2 = DEFAULT_COST_MODEL.scaled(atomic_cycles=14)
        run2 = runner.run("spmv", "no-dp", cost=cost2)
        assert run1 is not run2
        assert runner.stats.executed == before + 2

    def test_threshold_in_key(self, runner):
        a = runner.run("sssp", "grid-level", threshold=8)
        b = runner.run("sssp", "grid-level", threshold=32)
        c = runner.run("sssp", "grid-level")  # sssp's default is 8
        assert a is not b
        assert a is c


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        warm = ExperimentRunner(scale=SCALE, store=store)
        executed = warm.run("spmv", "grid-level")
        assert warm.stats.executed == 1
        assert len(store) == 1

        fresh = ExperimentRunner(scale=SCALE, store=store)
        recalled = fresh.run("spmv", "grid-level")
        assert fresh.stats.executed == 0
        assert fresh.stats.disk_hits == 1
        assert recalled.metrics.cycles == executed.metrics.cycles
        assert recalled.metrics.dram_transactions == \
            executed.metrics.dram_transactions
        assert (recalled.result == executed.result).all()
        assert recalled.checked == executed.checked

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        warm = ExperimentRunner(scale=SCALE, store=store)
        warm.run("spmv", "no-dp")
        entry = next(tmp_path.glob("*/*.pkl"))
        entry.write_bytes(b"not a pickle")

        fresh = ExperimentRunner(scale=SCALE, store=store)
        fresh.run("spmv", "no-dp")
        assert fresh.stats.executed == 1
        # the corrupt file was evicted and replaced by the re-execution
        assert pickle.load(next(tmp_path.glob("*/*.pkl")).open("rb"))

    def test_scale_changes_address(self, tmp_path):
        store = ResultStore(tmp_path)
        ExperimentRunner(scale=SCALE, store=store).run("spmv", "no-dp")
        other = ExperimentRunner(scale=0.2, store=store)
        other.run("spmv", "no-dp")
        assert other.stats.executed == 1  # different dataset -> different key

    def test_cost_fields_change_address(self):
        ds_fp = "0" * 64
        base = dict(app="spmv", variant="no-dp", allocator="custom",
                    config=None, dataset_fp=ds_fp, cost=DEFAULT_COST_MODEL,
                    spec=K20C, threshold=8, verify=True, version="1.0")
        k1 = run_key(**base)
        assert k1 == run_key(**base)
        k2 = run_key(**{**base, "cost": DEFAULT_COST_MODEL.scaled(swap_cycles=1)})
        assert k1 != k2

    def test_dataset_fingerprint_tracks_content(self):
        from repro.apps import get_app

        d1 = get_app("spmv").default_dataset(SCALE)
        d2 = get_app("spmv").default_dataset(SCALE)
        assert dataset_fingerprint(d1) == dataset_fingerprint(d2)
        d2.col_idx = d2.col_idx.copy()
        d2.col_idx[0] += 1
        assert dataset_fingerprint(d1) != dataset_fingerprint(d2)

    def test_clear_and_info(self, tmp_path):
        store = ResultStore(tmp_path)
        ExperimentRunner(scale=SCALE, store=store).run("spmv", "no-dp")
        assert len(store) == 1 and store.size_bytes() > 0
        assert store.clear() == 1
        assert len(store) == 0


class TestShardedLayout:
    """The store spreads writes over shard directories while reading
    the pre-shard flat layout transparently (DESIGN.md §13)."""

    KEY = "7f" + "e" * 62

    def test_put_lands_in_computed_shard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"v": 1})
        path = store.path_for(self.KEY)
        assert path.exists()
        assert path.parent.name == f"shard-{store.shard_for(self.KEY):02d}"
        assert store.get(self.KEY) == {"v": 1}

    def test_legacy_flat_entries_are_read(self, tmp_path):
        legacy = tmp_path / self.KEY[:2] / f"{self.KEY}.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(pickle.dumps({"v": "old"}))
        store = ResultStore(tmp_path)
        assert self.KEY in store
        assert store.get(self.KEY) == {"v": "old"}
        assert len(store) == 1

    @staticmethod
    def _backdate(path, seconds=60):
        import os
        import time

        old = time.time() - seconds
        os.utime(path, (old, old))

    def test_put_migrates_legacy_entry(self, tmp_path):
        legacy = tmp_path / self.KEY[:2] / f"{self.KEY}.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(pickle.dumps({"v": "old"}))
        self._backdate(legacy)
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"v": "new"})
        assert not legacy.exists()
        assert len(store) == 1
        assert store.get(self.KEY) == {"v": "new"}

    def test_foreign_shard_count_still_found(self, tmp_path):
        ResultStore(tmp_path, shards=16).put(self.KEY, {"v": 3})
        other = ResultStore(tmp_path, shards=5)
        assert self.KEY in other
        assert other.get(self.KEY) == {"v": 3}

    def test_put_migrates_foreign_shard_copy(self, tmp_path):
        """A rewrite under a different shard count must not leave the
        old copy to double-count or shadow the new one."""
        first = ResultStore(tmp_path, shards=16)
        first.put(self.KEY, {"v": "old"})
        self._backdate(first.path_for(self.KEY))
        other = ResultStore(tmp_path, shards=5)
        assert other.path_for(self.KEY) != first.path_for(self.KEY)
        other.put(self.KEY, {"v": "new"})
        assert len(other) == 1
        assert ResultStore(tmp_path, shards=16).get(self.KEY) == {"v": "new"}

    def test_put_never_deletes_a_concurrent_fresh_copy(self, tmp_path):
        """Two writers with different shard counts landing the same key
        at the same time must not unlink each other — a same-age
        duplicate is tolerated, a vanished key is not."""
        a = ResultStore(tmp_path, shards=16)
        b = ResultStore(tmp_path, shards=5)
        a.put(self.KEY, {"v": "a"})
        b.put(self.KEY, {"v": "b"})  # a's copy is fresh: must survive
        assert a.path_for(self.KEY).exists()
        assert b.path_for(self.KEY).exists()
        assert a.get(self.KEY) is not None
        assert b.get(self.KEY) is not None

    def test_shard_info_counts_both_layouts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"v": 1})
        legacy_key = "1a" + "b" * 62
        legacy = tmp_path / legacy_key[:2] / f"{legacy_key}.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(pickle.dumps({"v": "old"}))
        info = store.shard_info()
        assert info["sharded_entries"] == 1
        assert info["legacy_entries"] == 1
        assert info["populated"] == 1
        assert len(store) == 2
        assert store.clear() == 2

    def test_shard_count_env_override(self, tmp_path, monkeypatch):
        from repro.experiments.store import SHARDS_ENV

        monkeypatch.setenv(SHARDS_ENV, "4")
        assert ResultStore(tmp_path).shards == 4
        monkeypatch.setenv(SHARDS_ENV, "junk")
        assert ResultStore(tmp_path).shards == 16

    def test_cache_info_cli_reports_layout(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path)
        store.put(self.KEY, {"v": 1})
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "16 shards" in out
        assert "entries   : 1" in out


class TestMissingCacheDir:
    """Regression: ``repro cache info`` on a --cache-dir that does not
    exist must report an empty cache, not raise (and must not create
    the directory as a side effect — only ``put`` may)."""

    def test_cache_info_cli_reports_empty(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "never" / "created"
        assert main(["cache", "info", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out
        assert not missing.exists()

    def test_cache_clear_cli_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope"
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert not missing.exists()

    def test_reads_do_not_create_directory(self, tmp_path):
        missing = tmp_path / "sub" / "cache"
        store = ResultStore(missing)
        assert len(store) == 0
        assert store.size_bytes() == 0
        assert store.get("0" * 64) is None
        assert "0" * 64 not in store
        assert store.clear() == 0
        assert not missing.exists()

    def test_first_put_creates_directory(self, tmp_path):
        missing = tmp_path / "sub" / "cache"
        runner = ExperimentRunner(scale=SCALE, store=ResultStore(missing))
        runner.run("spmv", "no-dp")
        assert missing.is_dir()
        assert len(runner.store) == 1


class TestWorkPlans:
    def test_dedupe_preserves_order(self):
        a = RunSpec("spmv", "basic-dp")
        b = RunSpec("spmv", "no-dp")
        plan = WorkPlan([a, b, a, b, a])
        assert list(plan) == [a, b]

    def test_union_across_figures_dedupes(self, runner):
        p8 = FIGURES["fig8"].plan(runner)
        p9 = FIGURES["fig9"].plan(runner)
        assert set(p8) == set(p9)
        assert len(figure_plan(["fig8", "fig9"], runner)) == len(p8)

    def test_fig7_plan_covers_fig8(self, runner):
        p7 = set(FIGURES["fig7"].plan(runner))
        assert set(FIGURES["fig8"].plan(runner)) <= p7

    def test_plans_are_complete(self):
        """After prefetching a figure's plan, rendering it must not
        execute a single additional run."""
        for fig in ("fig5", "fig10"):
            r = ExperimentRunner(scale=SCALE)
            r.prefetch(FIGURES[fig].plan(r))
            before = r.stats.executed
            FIGURES[fig].main(r)
            assert r.stats.executed == before, fig


class TestParallelPrefetch:
    def test_jobs2_output_identical_to_serial(self):
        serial = ExperimentRunner(scale=SCALE)
        expected = fig5_allocators.main(serial)

        parallel = ExperimentRunner(scale=SCALE)
        stats = parallel.prefetch(fig5_allocators.plan(parallel), jobs=2)
        assert stats.executed == len(fig5_allocators.plan(parallel))
        got = fig5_allocators.main(parallel)
        assert got == expected

    def test_prefetch_skips_cached(self, runner):
        runner.run("spmv", "basic-dp")
        stats = runner.prefetch(WorkPlan([RunSpec("spmv", "basic-dp")]),
                                jobs=2)
        assert stats.executed == 0

    def test_parallel_results_persist_to_store(self, tmp_path):
        store = ResultStore(tmp_path)
        r = ExperimentRunner(scale=SCALE, store=store)
        plan = WorkPlan([RunSpec("spmv", "basic-dp"),
                         RunSpec("spmv", "no-dp"),
                         RunSpec("spmv", "grid-level")])
        r.prefetch(plan, jobs=2)
        assert len(store) == 3


class TestWarmStartSkipsAllRuns:
    def test_second_invocation_executes_nothing(self, tmp_path):
        """Acceptance: a warm-cache figure regeneration runs zero
        simulations and produces identical output."""
        store = ResultStore(tmp_path)
        cold = ExperimentRunner(scale=SCALE, store=store)
        cold.prefetch(fig5_allocators.plan(cold), jobs=2)
        cold_text = fig5_allocators.main(cold)
        assert cold.stats.executed > 0

        warm = ExperimentRunner(scale=SCALE, store=store)
        warm.prefetch(fig5_allocators.plan(warm), jobs=2)
        warm_text = fig5_allocators.main(warm)
        assert warm.stats.executed == 0
        assert warm_text == cold_text

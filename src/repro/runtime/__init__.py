"""The consolidation device-runtime library (reference).

The paper's generated code links against a small device-side runtime:
consolidation-buffer management and the custom global barrier (§IV.E).
In this reproduction those primitives are ``__dp_*`` intrinsics — their
*functional and cost semantics* live in :class:`repro.sim.dp.DPRuntime`,
their *type signatures* are registered with the frontend in
:mod:`repro.frontend.symbols`, and this package is the canonical catalogue
tying the two together (verified by ``tests/test_runtime_catalog.py``).
"""

from .devlib import DEVICE_LIBRARY, IntrinsicDoc, render_reference  # noqa: F401

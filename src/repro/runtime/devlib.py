"""Catalogue of the ``__dp_*`` device-runtime intrinsics.

Each entry documents one primitive of the consolidation runtime the
generated code calls. ``signature`` uses CUDA spelling; ``cost`` describes
what the simulator charges (see :class:`repro.sim.specs.CostModel`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntrinsicDoc:
    name: str
    signature: str
    summary: str
    cost: str
    paper_ref: str


DEVICE_LIBRARY: tuple[IntrinsicDoc, ...] = (
    IntrinsicDoc(
        name="__dp_buf_acquire",
        signature="int __dp_buf_acquire(int granularity, int slots, int nfields)",
        summary=(
            "Return the consolidation-buffer handle for the caller's scope "
            "(0=warp, 1=block, 2=grid), allocating it on first use via the "
            "configured allocator. Idempotent per scope."
        ),
        cost="allocator op-cycles on first call per scope; ~2 cycles after",
        paper_ref="§IV.E 'Consolidation Buffers' / Table I buffer()",
    ),
    IntrinsicDoc(
        name="__dp_buf_push1..4",
        signature="int __dp_buf_pushK(int handle, int f0, ... int fK-1)",
        summary=(
            "Append one work item of K integer fields (indexes/pointers); "
            "returns the slot index. Grows the buffer on overflow (a "
            "robustness deviation from the paper, which would corrupt)."
        ),
        cost="one atomic + the stores' coalesced memory traffic",
        paper_ref="§IV.A 'we buffer the work associated to the kernels'",
    ),
    IntrinsicDoc(
        name="__dp_buf_size",
        signature="int __dp_buf_size(int handle)",
        summary="Number of items currently buffered.",
        cost="one L2-hit load",
        paper_ref="Fig. 4(b): the designated thread reads the count",
    ),
    IntrinsicDoc(
        name="__dp_buf_get",
        signature="int __dp_buf_get(int handle, int slot, int field)",
        summary="Read one field of one buffered work item (drain loops).",
        cost="one coalesced load through the L2 model",
        paper_ref="§IV.C child transformation (buffer fetch)",
    ),
    IntrinsicDoc(
        name="__dp_buf_reset",
        signature="void __dp_buf_reset(int handle)",
        summary="Reset the item count to zero (buffer reuse).",
        cost="one L2-hit store",
        paper_ref="—",
    ),
    IntrinsicDoc(
        name="__dp_grid_arrive_last",
        signature="int __dp_grid_arrive_last()",
        summary=(
            "Exit-style global barrier: atomically count block arrivals; "
            "returns 1 only in the last block of the grid to arrive. All "
            "other blocks are expected to exit — this is what avoids the "
            "deadlock a spinning global barrier would cause."
        ),
        cost="global_barrier_cycles (atomic + flag read)",
        paper_ref="§IV.E 'Global Barrier Synchronization on GPU'",
    ),
    IntrinsicDoc(
        name="__dp_lane / __dp_warp_id",
        signature="int __dp_lane(); int __dp_warp_id()",
        summary="Lane index within the warp / warp index within the block "
                "(compiled inline, no runtime call).",
        cost="free",
        paper_ref="warp-level designated-lane selection",
    ),
)


def render_reference() -> str:
    """Human-readable device-library reference (used by docs and the CLI)."""
    lines = ["Consolidation device-runtime reference", "=" * 40]
    for doc in DEVICE_LIBRARY:
        lines += [
            "",
            doc.signature,
            f"  {doc.summary}",
            f"  cost: {doc.cost}",
            f"  paper: {doc.paper_ref}",
        ]
    return "\n".join(lines)

"""Synthetic tree generators reproducing the paper's tree datasets.

§V "Datasets": *dataset1* is a depth-5 tree whose nodes have 128-256
children and only half of the non-leaf nodes have children; *dataset2* is a
depth-5 tree with 32-128 children where all non-leaf nodes have children.

At those fanouts the trees have millions of nodes — far beyond what a
pure-Python interpreter should chew through per experiment. The generators
keep the properties that drive the paper's mechanics:

* **depth 5** (the DP recursion nesting the paper exercises);
* **fanout at least the warp size** — child kernels must span multiple
  warps, otherwise warp- and block-level consolidation degenerate into the
  same thing (this is the load-bearing property; see DESIGN.md §2);
* dataset1's 2x fanout ratio and 50% infertility vs dataset2's 4x ratio
  and full fertility;

and bound the node count with a *per-level budget* (fertile nodes are
subsampled once a level would exceed it), trading the paper's raw scale
for tractable simulation while leaving thousands of work items per level.
"""

from __future__ import annotations

import numpy as np

from .structures import Tree


def _grow(name: str, rng, depth: int, fanout_lo: int, fanout_hi: int,
          fertile_fraction: float, level_budget: int) -> Tree:
    children_lists: list[list[int]] = [[]]
    frontier = [0]
    next_id = 1
    avg_fanout = (fanout_lo + fanout_hi) / 2
    for level in range(1, depth + 1):
        if level == 1:
            fertile = list(frontier)
        else:
            mask = rng.random(len(frontier)) < fertile_fraction
            fertile = [u for u, keep in zip(frontier, mask) if keep]
        max_fertile = max(1, int(level_budget / avg_fanout))
        if len(fertile) > max_fertile:
            picks = rng.choice(len(fertile), size=max_fertile, replace=False)
            fertile = [fertile[i] for i in sorted(picks)]
        new_frontier: list[int] = []
        for u in fertile:
            fanout = int(rng.integers(fanout_lo, fanout_hi + 1))
            kids = list(range(next_id, next_id + fanout))
            next_id += fanout
            children_lists[u] = kids
            children_lists.extend([] for _ in kids)
            new_frontier.extend(kids)
        frontier = new_frontier
        if not frontier:
            break
    n = next_id
    counts = np.array([len(children_lists[u]) for u in range(n)], dtype=np.int64)
    child_ptr = np.zeros(n + 1, dtype=np.int64)
    child_ptr[1:] = np.cumsum(counts)
    child_idx = np.concatenate(
        [np.array(children_lists[u], dtype=np.int32) for u in range(n)
         if children_lists[u]]
    ) if counts.sum() else np.zeros(0, dtype=np.int32)
    values = rng.integers(1, 100, size=n).astype(np.int32)
    tree = Tree(name, child_ptr, child_idx.astype(np.int32), values, depth)
    tree.validate()
    return tree


def tree_dataset1(scale: float = 1.0, seed: int = 11) -> Tree:
    """Paper dataset1, scaled: depth-5, fanout ratio 2 (paper: 128-256,
    here 28-56), only half of the non-leaf nodes have children."""
    rng = np.random.default_rng(seed)
    lo = max(2, int(28 * scale))
    hi = max(lo + 1, int(56 * scale))
    budget = max(64, int(1500 * scale))
    return _grow(f"tree_dataset1(x{scale:g})", rng, depth=5,
                 fanout_lo=lo, fanout_hi=hi, fertile_fraction=0.5,
                 level_budget=budget)


def tree_dataset2(scale: float = 1.0, seed: int = 12) -> Tree:
    """Paper dataset2, scaled: depth-5, fanout ratio 4 (paper: 32-128,
    here 16-64), all non-leaf nodes have children."""
    rng = np.random.default_rng(seed)
    lo = max(2, int(16 * scale))
    hi = max(lo + 1, int(64 * scale))
    budget = max(64, int(1200 * scale))
    return _grow(f"tree_dataset2(x{scale:g})", rng, depth=5,
                 fanout_lo=lo, fanout_hi=hi, fertile_fraction=1.0,
                 level_budget=budget)

"""Synthetic tree generators reproducing the paper's tree datasets.

.. deprecated::
    Folded into the workload registry: the canonical implementations
    live in :mod:`repro.workloads.generators` (workloads ``tree1`` and
    ``tree2``, alongside the new ``tree-skewed``/``tree-balanced``/
    ``tree-deep`` families and the level-budget :func:`grow_tree`
    engine). These module-level functions remain as deprecated shims —
    same seeds, same arrays — and will be removed.

§V "Datasets": *dataset1* is a depth-5 tree whose nodes have 128-256
children and only half of the non-leaf nodes have children; *dataset2* is
a depth-5 tree with 32-128 children where all non-leaf nodes have
children. See the ``grow_tree`` docstring for how the scaled generators
preserve the properties that drive the paper's mechanics (depth,
warp-spanning fanout, the per-level node budget).
"""

from __future__ import annotations

import warnings

from .structures import Tree


def _shim(name: str, scale: float, seed: int) -> Tree:
    warnings.warn(
        f"treegen.{name} is deprecated; use the workload registry "
        f"(repro.workloads.generators.{name} or materialize('tree1'/"
        "'tree2', scale))",
        DeprecationWarning, stacklevel=3)
    from ..workloads import generators

    return getattr(generators, name)(scale, seed=seed)


def tree_dataset1(scale: float = 1.0, seed: int = 11) -> Tree:
    """Paper dataset1 (deprecated shim; see module docstring)."""
    return _shim("tree_dataset1", scale, seed)


def tree_dataset2(scale: float = 1.0, seed: int = 12) -> Tree:
    """Paper dataset2 (deprecated shim; see module docstring)."""
    return _shim("tree_dataset2", scale, seed)

"""Synthetic graph generators standing in for the paper's DIMACS datasets.

The paper evaluates on:

* **CiteSeer** — a paper-citation network, 434k nodes / 16M edges, node
  outdegree 1..1199 (avg 73.9). What matters for every effect the paper
  measures is the *degree skew* (it drives warp divergence, child-launch
  counts and child-kernel sizes), so :func:`citeseer_like` generates a
  heavy-tailed outdegree sequence with the same clipped range shape, scaled
  down so the pure-Python simulator finishes in seconds.
* **kron_g500-logn16** — a Kronecker graph, 65k nodes / 5M edges, outdegree
  8..36114. :func:`kron_like` uses R-MAT sampling (the standard Kronecker
  generator) with a minimum-degree floor of 8, symmetrized, reproducing the
  hub-dominated skew.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from .structures import Graph


def _csr_from_degree_targets(name: str, rng, degrees: np.ndarray,
                             weight_range=(1, 10)) -> Graph:
    n = len(degrees)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    row_ptr[1:] = np.cumsum(degrees)
    m = int(row_ptr[-1])
    # preferential attachment: edge targets follow node popularity, so the
    # *in*-degree distribution is as skewed as the out-degree one (real
    # citation networks are skewed on both sides; PageRank gathers along
    # incoming edges and needs the skew to exhibit the paper's divergence)
    popularity = degrees.astype(np.float64)
    popularity /= popularity.sum()
    col_idx = rng.choice(n, size=m, p=popularity).astype(np.int32)
    # avoid trivial self loops where easy (shift by one; cheap determinism)
    rows = np.repeat(np.arange(n), degrees)
    self_loop = col_idx == rows
    col_idx[self_loop] = (col_idx[self_loop] + 1) % n
    weights = rng.integers(weight_range[0], weight_range[1] + 1, size=m,
                           dtype=np.int64).astype(np.int32)
    g = Graph(name, row_ptr, col_idx, weights)
    g.validate()
    return g


def citeseer_like(scale: float = 1.0, seed: int = 1) -> Graph:
    """Heavy-tailed citation-network stand-in.

    ``scale=1.0`` gives ~1200 nodes with outdegree clipped to [1, 400]
    (the paper's CiteSeer clips at [1, 1199] on 434k nodes; the ratio of
    max degree to a thread block is what the solo-block child kernels see,
    and it is preserved).
    """
    rng = np.random.default_rng(seed)
    n = max(64, int(1200 * scale))
    max_deg = max(16, int(400 * scale))
    raw = rng.pareto(1.35, n) * 8 + 1
    degrees = np.clip(raw.astype(np.int64), 1, max_deg)
    return _csr_from_degree_targets(f"citeseer_like(x{scale:g})", rng, degrees)


def kron_like(scale: float = 1.0, seed: int = 2) -> Graph:
    """R-MAT/Kronecker stand-in for kron_g500-logn16 (min outdegree 8,
    hub-dominated tail), symmetrized like the DIMACS release."""
    rng = np.random.default_rng(seed)
    levels = max(6, int(round(10 + np.log2(max(scale, 1e-6)))))
    n = 1 << levels
    m = 8 * n
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for lvl in range(levels):
        r = rng.random(m)
        right = r >= a + b
        down = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src = src * 2 + down.astype(np.int64)
        dst = dst * 2 + right.astype(np.int64)
    # symmetrize + dedup
    u = np.concatenate([src, dst])
    v = np.concatenate([dst, src])
    keep = u != v
    u, v = u[keep], v[keep]
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    dedup = np.ones(len(u), dtype=bool)
    dedup[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    u, v = u[dedup], v[dedup]
    # enforce the min-degree floor of 8 with ring edges, added in *both*
    # directions so the graph stays symmetric (GC's independent-set
    # argument and BFS-Rec's level check both rely on symmetry); the
    # lexsort below re-establishes one canonical edge order, so this
    # vectorized form is array-identical to the per-node loop it replaced
    deg = np.bincount(u, minlength=n)
    deficit = np.nonzero(deg < 8)[0]
    if len(deficit):
        need = 8 - deg[deficit]
        rep = np.repeat(deficit, need)
        ends = np.cumsum(need)
        offsets = np.arange(ends[-1]) - np.repeat(ends - need, need) + 1
        targets = (rep + offsets) % n
        u = np.concatenate([u, rep, targets])
        v = np.concatenate([v, targets, rep])
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    dedup = np.ones(len(u), dtype=bool)
    dedup[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    u, v = u[dedup], v[dedup]
    # cap adjacency lists at the 1024-thread block limit: basic-dp child
    # kernels launch <<<1, deg>>> (the paper's real datasets would need
    # chunked launches for their 36k-degree hubs; scaled runs stay within
    # one block). An edge survives only if *both* directions survive, so
    # the graph stays symmetric.
    max_deg = 1023
    deg = np.bincount(u, minlength=n)
    if deg.max() > max_deg:
        # rank of every edge within its (sorted) source row; the cap
        # keeps the first max_deg per row — vectorized equivalent of
        # blanking each hot row's tail
        start = np.zeros(n + 1, dtype=np.int64)
        start[1:] = np.cumsum(deg)
        keep = np.arange(len(u)) - start[u] < max_deg
        fwd_key = u * n + v
        rev_key = v * n + u
        rev_pos = np.searchsorted(fwd_key, rev_key)
        keep &= keep[rev_pos]
        u, v = u[keep], v[keep]
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr, u + 1, 1)
    row_ptr = np.cumsum(row_ptr)
    weights = rng.integers(1, 11, size=len(u)).astype(np.int32)
    g = Graph(f"kron_like(x{scale:g})", row_ptr.astype(np.int64),
              v.astype(np.int32), weights)
    g.validate()
    return g


#: ``uniform_random`` lived here through PR 4 as a deprecated shim onto
#: :func:`repro.workloads.generators.uniform_graph`; removed per the
#: deprecation policy (repro.errors.DeprecationPolicy, DESIGN.md §15).

"""Dataset containers and deterministic synthetic generators (DESIGN.md §2
documents the substitutions for the paper's DIMACS/tree datasets).

The generators are registered as *named workloads* in
:mod:`repro.workloads`; ``uniform_random`` and the tree generators
re-exported here are deprecated shims onto that registry (the CSR/tree
containers and ``citeseer_like``/``kron_like`` remain canonical here).
"""

from .graphgen import citeseer_like, kron_like, uniform_random  # noqa: F401
from .structures import Graph, Tree  # noqa: F401
from .treegen import tree_dataset1, tree_dataset2  # noqa: F401

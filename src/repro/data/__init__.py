"""Dataset containers and deterministic synthetic generators (DESIGN.md §2
documents the substitutions for the paper's DIMACS/tree datasets).

The CSR/tree containers and ``citeseer_like``/``kron_like`` are canonical
here; every other generator lives in the workload registry
(:mod:`repro.workloads.generators`). The PR-2/PR-4 deprecated shims
(``uniform_random``, the ``treegen`` module) have been removed per the
deprecation policy (repro.errors.DeprecationPolicy, DESIGN.md §15) —
import the registry spellings instead.
"""

from .graphgen import citeseer_like, kron_like  # noqa: F401
from .structures import Graph, Tree  # noqa: F401

"""Dataset containers: CSR graphs and child-indexed trees.

Both are plain NumPy struct-of-arrays, matching the representations the
paper's benchmarks use (Compressed Sparse Row for graphs/matrices, a CSR
over child lists for trees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Graph:
    """A directed graph / sparse matrix in CSR form."""

    name: str
    row_ptr: np.ndarray  # int64[n+1]
    col_idx: np.ndarray  # int32[m]
    weights: np.ndarray  # int32[m] (or float32 for SpMV values)

    def __post_init__(self):
        assert self.row_ptr.ndim == 1 and self.col_idx.ndim == 1
        assert self.row_ptr[0] == 0 and self.row_ptr[-1] == len(self.col_idx)

    @property
    def num_nodes(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.col_idx)

    def out_degree(self, u: int) -> int:
        return int(self.row_ptr[u + 1] - self.row_ptr[u])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def neighbors(self, u: int) -> np.ndarray:
        return self.col_idx[self.row_ptr[u]:self.row_ptr[u + 1]]

    def validate(self) -> None:
        n = self.num_nodes
        if self.num_edges and (self.col_idx.min() < 0 or self.col_idx.max() >= n):
            raise ValueError(f"{self.name}: column index out of range")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError(f"{self.name}: row_ptr not monotone")

    def stats(self) -> str:
        d = self.degrees
        return (f"{self.name}: {self.num_nodes} nodes, {self.num_edges} edges, "
                f"outdegree [{d.min()}, {d.max()}] avg {d.mean():.1f}")


@dataclass
class Tree:
    """A rooted tree: CSR over children lists, root = node 0."""

    name: str
    child_ptr: np.ndarray  # int64[n+1]
    child_idx: np.ndarray  # int32[total children]
    values: np.ndarray  # int32[n] payload (used by Tree Descendants)
    depth: int  # depth of the deepest node, root = depth 0

    @property
    def num_nodes(self) -> int:
        return len(self.child_ptr) - 1

    def num_children(self, u: int) -> int:
        return int(self.child_ptr[u + 1] - self.child_ptr[u])

    def children(self, u: int) -> np.ndarray:
        return self.child_idx[self.child_ptr[u]:self.child_ptr[u + 1]]

    def height(self) -> int:
        """Number of levels (a single root = height 1), computed iteratively."""
        height = 1
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                nxt.extend(self.children(u).tolist())
            if nxt:
                height += 1
            frontier = nxt
        return height

    def parents(self) -> np.ndarray:
        """Parent index per node (root gets -1), derived from child lists."""
        parents = np.full(self.num_nodes, -1, dtype=np.int32)
        src = np.repeat(np.arange(self.num_nodes), np.diff(self.child_ptr))
        parents[self.child_idx] = src
        return parents

    def node_depths(self) -> np.ndarray:
        depths = np.zeros(self.num_nodes, dtype=np.int64)
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for c in self.children(u):
                    depths[c] = depths[u] + 1
                    nxt.append(int(c))
            frontier = nxt
        return depths

    def validate(self) -> None:
        n = self.num_nodes
        if len(self.child_idx) and (self.child_idx.min() <= 0
                                    or self.child_idx.max() >= n):
            raise ValueError(f"{self.name}: child index out of range")
        # every non-root node appears exactly once as a child
        counts = np.bincount(self.child_idx, minlength=n)
        if counts[0] != 0 or not np.all(counts[1:] == 1):
            raise ValueError(f"{self.name}: not a tree (bad child multiplicity)")

    def stats(self) -> str:
        nc = np.diff(self.child_ptr)
        leaves = int(np.sum(nc == 0))
        return (f"{self.name}: {self.num_nodes} nodes, depth {self.depth}, "
                f"{leaves} leaves, fanout [{nc.min()}, {nc.max()}]")

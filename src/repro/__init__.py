"""repro — reproduction of *Compiler-Assisted Workload Consolidation for
Efficient Dynamic Parallelism on GPU* (Wu, Li, Becchi, IPDPS 2016).

Public API tour (see README.md for a narrative):

* :mod:`repro.frontend` — MiniCUDA parser/AST/unparser + ``#pragma dp``.
* :mod:`repro.compiler` — the paper's contribution: warp/block/grid
  workload-consolidation source-to-source transforms.
* :mod:`repro.sim` — SIMT GPU simulator (functional + timing) standing in
  for the Tesla K20c.
* :mod:`repro.alloc` — device-side allocators (CUDA default, halloc,
  pre-allocated pool).
* :mod:`repro.apps` — the seven benchmark applications in basic-dp,
  flat (no-dp) and consolidated variants.
* :mod:`repro.experiments` — harnesses regenerating Figures 5-10.
"""

from .errors import ReproError  # noqa: F401

__version__ = "1.0.0"

"""Command-line entry point.

::

    repro list                      # benchmarks and figures
    repro fig7 [--scale 0.5]        # regenerate one figure
    repro all  [--scale 0.5]        # all figures (shares runs)
    repro run sssp grid-level       # run one app variant, print metrics
    repro compile sssp --granularity block   # show generated CUDA
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_scale(p):
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor (default 1.0)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip result verification")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Compiler-Assisted Workload "
                    "Consolidation for Efficient Dynamic Parallelism on GPU' "
                    "(Wu, Li, Becchi, IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and figures")

    from .experiments import FIGURES

    for fig in FIGURES:
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_scale(p)
    p = sub.add_parser("all", help="regenerate every figure")
    _add_scale(p)

    p = sub.add_parser("run", help="run one app variant")
    p.add_argument("app")
    p.add_argument("variant")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    _add_scale(p)

    p = sub.add_parser("compile", help="print consolidated CUDA for an app")
    p.add_argument("app")
    p.add_argument("--granularity", default=None,
                   choices=["warp", "block", "grid"])

    args = parser.parse_args(argv)

    if args.command == "list":
        from .apps import all_apps

        print("benchmarks:")
        for app in all_apps():
            print(f"  {app.key:10s} {app.label}")
        print("figures:", ", ".join(FIGURES))
        return 0

    if args.command == "compile":
        from .apps import get_app
        from .compiler import consolidate_source

        app = get_app(args.app)
        res = consolidate_source(app.annotated_source(),
                                 granularity=args.granularity)
        print(f"// {res.report.describe()}")
        print(res.source)
        return 0

    if args.command == "run":
        from .apps import get_app

        app = get_app(args.app)
        t0 = time.time()
        run = app.run(args.variant, scale=args.scale,
                      allocator=args.allocator, verify=not args.no_verify)
        wall = time.time() - t0
        print(f"{app.label} [{run.variant}] on {run.dataset} "
              f"(verified={run.checked}, wall={wall:.1f}s)")
        if run.report is not None:
            print(f"  {run.report.describe()}")
        print(run.metrics.summary())
        return 0

    # figures
    from .experiments import ExperimentRunner

    runner = ExperimentRunner(scale=args.scale, verify=not args.no_verify)
    figures = list(FIGURES) if args.command == "all" else [args.command]
    for fig in figures:
        t0 = time.time()
        print(FIGURES[fig].main(runner))
        print(f"[{fig} regenerated in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line entry point.

::

    repro list                      # benchmarks, figures, strategies
    repro fig7 [--scale 0.5] [--jobs 4]      # regenerate one figure
    repro all  [--scale 0.5] [--jobs 4]      # all figures (shares runs)
    repro granularity               # strategy (granularity) ablation
    repro run sssp grid-level       # run one app variant, print metrics
    repro run sssp consolidated --strategy block   # pick a strategy
    repro compile sssp --strategy block      # show generated CUDA
    repro cache info|clear          # inspect/clear the on-disk result cache

Figure commands batch their work plans up front: ``repro all`` takes the
union of every figure's declared run matrix, deduplicates it, executes
cache misses across ``--jobs`` worker processes, and renders the figures
against the warm cache. Results persist in a content-addressed on-disk
store (``--cache-dir``, default ``~/.cache/repro-wulb16`` or
``$REPRO_CACHE_DIR``), so a second invocation is warm-start; disable
with ``--no-cache``. See README.md "Reproducing the figures".
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_scale(p):
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor (default 1.0)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip result verification")


def _add_cache(p):
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="on-disk result cache location "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-wulb16)")


def _add_exec(p):
    _add_scale(p)
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for uncached runs (default 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache")
    _add_cache(p)


def _make_store(args):
    from .experiments import ResultStore, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return ResultStore(args.cache_dir or default_cache_dir())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Compiler-Assisted Workload "
                    "Consolidation for Efficient Dynamic Parallelism on GPU' "
                    "(Wu, Li, Becchi, IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and figures")

    from .experiments import FIGURES

    for fig in FIGURES:
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_exec(p)
    p = sub.add_parser("all", help="regenerate every figure")
    _add_exec(p)

    from .compiler.strategies import available_strategies

    p = sub.add_parser("run", help="run one app variant")
    p.add_argument("app")
    p.add_argument("variant")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    p.add_argument("--strategy", default=None,
                   choices=list(available_strategies()),
                   help="consolidation strategy for the 'consolidated' "
                        "variant (granularity of aggregation)")
    _add_scale(p)

    p = sub.add_parser("compile", help="print consolidated CUDA for an app")
    p.add_argument("app")
    p.add_argument("--strategy", "--granularity", dest="strategy",
                   default=None, choices=list(available_strategies()),
                   help="consolidation strategy (default: the pragma's "
                        "consldt clause)")

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=["info", "clear"])
    _add_cache(p)

    args = parser.parse_args(argv)

    if args.command == "list":
        from .apps import all_apps
        from .compiler.strategies import get_strategy

        print("benchmarks:")
        for app in all_apps():
            print(f"  {app.key:10s} {app.label}")
        print("figures:", ", ".join(FIGURES))
        print("strategies:")
        for name in available_strategies():
            print(f"  {name:10s} {get_strategy(name).tradeoff}")
        return 0

    if args.command == "compile":
        from .apps import get_app
        from .compiler import consolidate_source

        app = get_app(args.app)
        res = consolidate_source(app.annotated_source(),
                                 granularity=args.strategy)
        print(f"// {res.report.describe()}")
        print(res.source)
        return 0

    if args.command == "run":
        from .apps import get_app

        app = get_app(args.app)
        t0 = time.time()
        try:
            run = app.run(args.variant, scale=args.scale,
                          allocator=args.allocator, verify=not args.no_verify,
                          strategy=args.strategy)
        except ValueError as exc:  # e.g. variant/strategy contradiction
            print(f"error: {exc}", file=sys.stderr)
            return 2
        wall = time.time() - t0
        label = run.variant if run.strategy is None else \
            f"{run.variant}:{run.strategy}"
        print(f"{app.label} [{label}] on {run.dataset} "
              f"(verified={run.checked}, wall={wall:.1f}s)")
        if run.report is not None:
            print(f"  {run.report.describe()}")
        print(run.metrics.summary())
        return 0

    if args.command == "cache":
        from .experiments import ResultStore, default_cache_dir

        store = ResultStore(args.cache_dir or default_cache_dir())
        if args.action == "clear":
            removed = store.clear()
            print(f"removed {removed} cached runs from {store.root}")
        else:
            print(f"cache dir : {store.root}")
            print(f"entries   : {len(store)}")
            print(f"size      : {store.size_bytes() / 1024:.1f} KiB")
        return 0

    # figures
    from .experiments import ExperimentRunner, figure_plan
    from .experiments.reporting import run_provenance

    runner = ExperimentRunner(scale=args.scale, verify=not args.no_verify,
                              store=_make_store(args), jobs=args.jobs)
    figures = list(FIGURES) if args.command == "all" else [args.command]
    t0 = time.time()
    plan = figure_plan(figures, runner)
    stats = runner.prefetch(plan, jobs=args.jobs)
    print(f"[plan: {len(plan)} unique runs (--jobs {args.jobs}): "
          f"{stats.describe()}; {time.time() - t0:.1f}s]\n")
    for fig in figures:
        t0 = time.time()
        print(FIGURES[fig].main(runner))
        print(f"[{fig} regenerated in {time.time() - t0:.1f}s]\n")
    print(run_provenance(runner.stats))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line entry point.

::

    repro list                      # benchmarks, figures, strategies
    repro fig7 [--scale 0.5] [--jobs 4]      # regenerate one figure
    repro all  [--scale 0.5] [--jobs 4]      # all figures (shares runs)
    repro granularity               # strategy (granularity) ablation
    repro run sssp grid-level       # run one app variant, print metrics
    repro run sssp consolidated --strategy block   # pick a strategy
    repro run sssp grid-level --threshold 32       # override delegation
    repro tune sssp --jobs 4        # search the configuration space
    repro run sssp tuned            # consume the persisted tuned config
    repro tuned-vs-paper            # tuned vs paper defaults, every app
    repro compile sssp --strategy block      # show generated CUDA
    repro workloads list            # the dataset/scenario registry
    repro workloads gen star --scale 0.5     # materialize + cache one
    repro run sssp grid-level --workload star    # run on a named workload
    repro sensitivity [--apps sssp gc]       # variant x workload sweep
    repro serve [--socket PATH|--tcp H:P]    # the experiment service daemon
    repro submit sssp grid-level    # submit a run to the daemon
    repro tune sssp --socket PATH   # tune through the daemon
    repro status                    # daemon metrics (dedup/batch/cache)
    repro status --metrics          # full telemetry registry (Prometheus)
    repro trace sssp consolidated   # profile one run, write a Chrome trace
    repro profile sssp consolidated # deep-profile: per-kernel attribution
    repro perf ingest out/          # record bench envelopes in the ledger
    repro perf history|diff         # perf trajectory / baseline deltas
    repro perf check                # CI gate: nonzero exit on regressions
    repro shutdown                  # drain the daemon and stop it
    repro cache info|clear          # inspect/clear the on-disk caches

Figure commands batch their work plans up front: ``repro all`` takes the
union of every figure's declared run matrix, deduplicates it, executes
cache misses across ``--jobs`` worker processes, and renders the figures
against the warm cache. Results persist in a content-addressed on-disk
store (``--cache-dir``, default ``~/.cache/repro-wulb16`` or
``$REPRO_CACHE_DIR``), so a second invocation is warm-start; disable
with ``--no-cache``. See README.md "Reproducing the figures".
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_scale(p):
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor (default 1.0)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip result verification")


def _add_cache(p):
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="on-disk result cache location "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-wulb16)")


def _add_exec(p):
    _add_scale(p)
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for uncached runs (default 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache")
    _add_cache(p)


def _make_store(args):
    from .experiments import ResultStore, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return ResultStore(args.cache_dir or default_cache_dir())


def _make_dataset_cache(args):
    from .workloads import DatasetCache, default_dataset_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return DatasetCache(default_dataset_cache_dir(args.cache_dir))


def _add_endpoint(p):
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="unix socket of the experiment service (default: "
                        "$REPRO_SOCKET or <cache-dir>/service.sock)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="reach the service over TCP instead of the unix "
                        "socket")


def _parse_tcp(value):
    host, sep, port = value.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"--tcp takes HOST:PORT, got {value!r}")
    return host, int(port)


def _make_client(args):
    """A connected ServiceClient for the endpoint arguments."""
    from .service import ServiceClient
    from .service.protocol import default_socket_path

    if args.tcp:
        host, port = _parse_tcp(args.tcp)
        return ServiceClient(host=host, port=port).connect()
    path = args.socket or default_socket_path(getattr(args, "cache_dir",
                                                      None))
    return ServiceClient(socket_path=path).connect()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Compiler-Assisted Workload "
                    "Consolidation for Efficient Dynamic Parallelism on GPU' "
                    "(Wu, Li, Becchi, IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and figures")

    from .experiments import FIGURES

    for fig in FIGURES:
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_exec(p)
    p = sub.add_parser("all", help="regenerate every figure")
    _add_exec(p)

    from .compiler.strategies import available_strategies
    from .tuning import OBJECTIVES, available_searches

    def _add_threshold(p):
        p.add_argument("--threshold", type=int, default=None, metavar="N",
                       help="work-delegation threshold override (the "
                            "`deg > threshold` guard; default: the app's "
                            "paper value)")

    p = sub.add_parser("run", help="run one app variant")
    p.add_argument("app")
    p.add_argument("variant",
                   help="basic-dp | no-dp | warp-level | block-level | "
                        "grid-level | consolidated | tuned")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    p.add_argument("--strategy", default=None,
                   choices=list(available_strategies()),
                   help="consolidation strategy for the 'consolidated' "
                        "variant (granularity of aggregation)")
    _add_threshold(p)
    p.add_argument("--workload", default=None, metavar="REF",
                   help="registered workload to run on, e.g. 'star' or "
                        "'citeseer(seed=9)' (default: the app's paper "
                        "dataset; see `repro workloads list`)")
    p.add_argument("--objective", default="cycles",
                   choices=list(OBJECTIVES),
                   help="which tuned config the 'tuned' variant consumes")
    from .backends import available_backends

    p.add_argument("--backend", default=None,
                   choices=list(available_backends()),
                   help="execution backend (default: sim, the simulator; "
                        "'cpu' cross-checks on the NumPy interpreter)")
    from .oracle import available_oracles, get_oracle

    p.add_argument("--oracle", default=None,
                   choices=[n for n in available_oracles()
                            if get_oracle(n).exact],
                   help="exact oracle deciding the sim engine (default: "
                        "sim, the vectorized engine; 'sim-scalar' runs "
                        "the scalar reference engine)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also record a span trace of this run and write "
                        "it as Chrome trace-event JSON to PATH")
    _add_scale(p)
    _add_cache(p)

    p = sub.add_parser(
        "trace",
        help="profile one run: span tree, per-phase wall-clock "
             "attribution, Chrome trace-event JSON")
    p.add_argument("app")
    p.add_argument("variant",
                   help="basic-dp | no-dp | warp-level | block-level | "
                        "grid-level | consolidated | tuned")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    p.add_argument("--strategy", default=None,
                   choices=list(available_strategies()))
    _add_threshold(p)
    p.add_argument("--workload", default=None, metavar="REF",
                   help="registered workload to run on")
    p.add_argument("--trace", default="trace.json", metavar="PATH",
                   help="where to write the Chrome trace-event JSON "
                        "(default: trace.json; open in ui.perfetto.dev "
                        "or chrome://tracing)")
    p.add_argument("--tree", action="store_true",
                   help="also print the nested span tree")
    _add_scale(p)
    _add_cache(p)

    p = sub.add_parser(
        "profile",
        help="deep-profile one run on the simulated GPU: per-kernel "
             "attribution (cycles, warp efficiency, DRAM, buffer "
             "contention), hotspot ranking, occupancy timeline")
    p.add_argument("app")
    p.add_argument("variant",
                   help="basic-dp | no-dp | warp-level | block-level | "
                        "grid-level | consolidated | tuned")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    p.add_argument("--strategy", default=None,
                   choices=list(available_strategies()))
    _add_threshold(p)
    p.add_argument("--workload", default=None, metavar="REF",
                   help="registered workload to run on")
    p.add_argument("--top", type=int, default=0, metavar="N",
                   help="show only the N busiest kernels (default: all)")
    p.add_argument("--occupancy", action="store_true",
                   help="also print the ASCII occupancy timeline")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the full profile as JSON to PATH")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also write the kernel timeline + occupancy track "
                        "as Chrome trace-event JSON (cycle timestamps; "
                        "open in ui.perfetto.dev)")
    _add_scale(p)
    _add_cache(p)

    p = sub.add_parser(
        "perf",
        help="the performance ledger: ingest bench envelopes, show "
             "history, diff against baselines, gate regressions")
    p.add_argument("action", choices=["ingest", "history", "diff", "check"])
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="ingest: BENCH_*.json files or directories "
                        "holding them (default: the current directory)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="ledger file (default: <cache-dir>/perf-ledger.jsonl)")
    p.add_argument("--bench", default=None, metavar="NAME",
                   help="history: restrict to one bench")
    p.add_argument("--cell", default=None, metavar="SUBSTR",
                   help="history: restrict to cells containing SUBSTR")
    p.add_argument("--threshold", type=float, default=None, metavar="F",
                   help="check: relative worsening that fails the gate "
                        "(default 0.10)")
    p.add_argument("--noise-floor", type=float, default=None, metavar="F",
                   help="diff/check: ignore relative changes at or below "
                        "this (default 0.02)")
    _add_cache(p)

    p = sub.add_parser("compile", help="print consolidated CUDA for an app")
    p.add_argument("app")
    p.add_argument("--strategy", "--granularity", dest="strategy",
                   default=None, choices=list(available_strategies()),
                   help="consolidation strategy (default: the pragma's "
                        "consldt clause)")
    p.add_argument("--backend", default=None,
                   choices=list(available_backends()),
                   help="lower through an emitting backend ('cuda' emits "
                        "a self-contained .cu unit; default: print the "
                        "consolidated MiniCUDA itself)")
    _add_threshold(p)

    p = sub.add_parser(
        "tune", help="search the consolidation configuration space for an app")
    p.add_argument("app")
    p.add_argument("--objective", default="cycles", choices=list(OBJECTIVES),
                   help="metric to optimize (default: cycles)")
    p.add_argument("--search", default="halving",
                   choices=list(available_searches()),
                   help="search algorithm (default: halving)")
    p.add_argument("--budget", type=int, default=None, metavar="N",
                   help="max candidates drawn from the space (default: all)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for sampling searches (default 0)")
    p.add_argument("--workload", default=None, metavar="REF",
                   help="tune against a registered workload instead of "
                        "the app's default dataset (stored per workload)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="evaluate candidates through the experiment "
                        "service listening on this unix socket instead "
                        "of local runners")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="like --socket, over TCP")
    p.add_argument("--oracle", default=None,
                   choices=list(available_oracles()),
                   help="candidate-scoring oracle (default: sim, the "
                        "simulator; 'surrogate' predicts the cheap rungs "
                        "from logged runs and simulates only the final "
                        "rung)")
    _add_exec(p)

    p = sub.add_parser(
        "tuned-vs-paper",
        help="tune every app and compare against the paper's fixed configs")
    p.add_argument("--apps", nargs="+", default=None, metavar="APP",
                   help="restrict to these apps (default: all)")
    p.add_argument("--objective", default="cycles", choices=list(OBJECTIVES))
    p.add_argument("--search", default="halving",
                   choices=list(available_searches()))
    p.add_argument("--budget", type=int, default=None, metavar="N")
    p.add_argument("--seed", type=int, default=0)
    _add_exec(p)

    p = sub.add_parser(
        "workloads", help="list, materialize or describe registered "
                          "dataset workloads")
    p.add_argument("action", choices=["list", "gen", "info"])
    p.add_argument("name", nargs="?", default=None,
                   help="workload reference (gen/info)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor for gen (default 1.0)")
    p.add_argument("--no-cache", action="store_true",
                   help="gen: do not write the materialized dataset to "
                        "the on-disk dataset cache")
    _add_cache(p)

    p = sub.add_parser(
        "sensitivity",
        help="input-sensitivity sweep: strategy x workload per app")
    p.add_argument("--apps", nargs="+", default=None, metavar="APP",
                   help="restrict to these apps (default: all)")
    _add_exec(p)

    p = sub.add_parser(
        "serve",
        help="run the experiment service daemon (coalescing, "
             "micro-batching, shared sharded cache)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="unix socket to listen on (default: $REPRO_SOCKET "
                        "or <cache-dir>/service.sock)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on TCP instead of the unix socket")
    p.add_argument("--batch-window", type=float, default=None, metavar="S",
                   help="micro-batching window in seconds (default 0.05)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record daemon spans (accept/request/batch/"
                        "prefetch/reply) and write a Chrome trace to "
                        "PATH on shutdown")
    _add_exec(p)

    p = sub.add_parser("submit", help="submit one run to the service")
    p.add_argument("app")
    p.add_argument("variant",
                   help="basic-dp | no-dp | warp-level | block-level | "
                        "grid-level | consolidated | tuned")
    p.add_argument("--allocator", default="custom",
                   choices=["default", "halloc", "custom"])
    p.add_argument("--strategy", default=None,
                   choices=list(available_strategies()))
    _add_threshold(p)
    p.add_argument("--workload", default=None, metavar="REF",
                   help="registered workload to run on")
    p.add_argument("--scale", type=float, default=None,
                   help="dataset scale (default: the server's)")
    _add_endpoint(p)
    _add_cache(p)

    p = sub.add_parser("status", help="query the service's metrics "
                                      "(queue depth, dedup/cache rates)")
    p.add_argument("--metrics", action="store_true",
                   help="print the daemon's full telemetry registry in "
                        "Prometheus text format (needs a daemon "
                        "advertising the 'metrics' feature)")
    _add_endpoint(p)
    _add_cache(p)

    p = sub.add_parser("shutdown",
                       help="drain the service's queue and stop it")
    _add_endpoint(p)
    _add_cache(p)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=["info", "clear"])
    _add_cache(p)

    args = parser.parse_args(argv)

    if args.command == "list":
        from .apps import all_apps
        from .compiler.strategies import get_strategy
        from .tuning import get_search

        print("benchmarks:")
        for app in all_apps():
            print(f"  {app.key:10s} {app.label}")
        print("figures:", ", ".join(FIGURES))
        print("strategies:")
        for name in available_strategies():
            print(f"  {name:10s} {get_strategy(name).tradeoff}")
        print("search algorithms (repro tune --search):")
        for name in available_searches():
            print(f"  {name:10s} {get_search(name).summary}")
        print("objectives:", ", ".join(OBJECTIVES))
        from .backends import available_backends as _backends
        from .backends import get_backend as _get_backend

        print("backends (repro run/compile --backend):")
        for name in _backends():
            print(f"  {name:10s} {_get_backend(name).summary}")
        from .oracle import available_oracles as _oracles
        from .oracle import get_oracle as _get_oracle

        print("oracles (repro run/tune --oracle):")
        for name in _oracles():
            print(f"  {name:10s} {_get_oracle(name).summary}")
        from .workloads import available_workloads, get_workload

        print("workloads (repro run --workload; `repro workloads list` "
              "for details):")
        for name in available_workloads():
            print(f"  {name:14s} {get_workload(name).summary()}")
        return 0

    if args.command == "workloads":
        from .apps import all_apps
        from .workloads import (available_workloads, canonical_workload,
                                get_workload, materialize)

        if args.action == "list":
            from .workloads import parse_workload

            defaults: dict = {}
            for app in all_apps():
                family = parse_workload(app.default_workload)[0]
                defaults.setdefault(family, []).append(app.key)
            for name in available_workloads():
                spec = get_workload(name)
                used = defaults.get(name)
                tail = f"  [default for {', '.join(used)}]" if used else ""
                print(f"{name:14s} {spec.summary()}{tail}")
                if spec.defaults:
                    params = ", ".join(f"{k}={v}" for k, v in
                                       sorted(spec.defaults.items()))
                    print(f"{'':14s}   params: {params}")
            return 0
        if args.name is None:
            print(f"error: `repro workloads {args.action}` needs a "
                  "workload reference", file=sys.stderr)
            return 2
        try:
            spec = get_workload(canonical_workload(args.name).split("(")[0])
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        if args.action == "info":
            print(f"{spec.name}: {spec.summary()}")
            print(f"  canonical : {canonical_workload(args.name)}")
            if spec.defaults:
                for k, v in sorted(spec.defaults.items()):
                    print(f"  param     : {k} = {v}")
            if spec.source is not None:
                print(f"  source    : {spec.source}")
            return 0
        # gen: materialize (through the dataset cache unless --no-cache)
        cache = _make_dataset_cache(args)
        t0 = time.time()
        try:
            dataset = materialize(args.name, args.scale, cache=cache)
        except (KeyError, ValueError) as exc:  # bad ref or builder bounds
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        print(dataset.stats())
        print(f"[materialized in {time.time() - t0:.2f}s"
              + (f"; cached under {cache.root}" if cache is not None
                 else "; not cached (--no-cache)") + "]")
        return 0

    if args.command == "compile":
        from .apps import get_app
        from .compiler import consolidate_source

        app = get_app(args.app)
        res = consolidate_source(app.annotated_source(),
                                 granularity=args.strategy)
        threshold = (args.threshold if args.threshold is not None
                     else app.threshold)
        if args.backend is not None:
            from .backends import BackendError, get_backend

            try:
                backend = get_backend(args.backend)
                emitted = backend.emit(
                    res.source,
                    name=f"{args.app}_{args.strategy or 'pragma'}")
            except BackendError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(emitted)
            return 0
        print(f"// {res.report.describe()}")
        print(f"// delegation threshold: {threshold} (host launch argument; "
              "the generated code is threshold-independent)")
        print(res.source)
        return 0

    if args.command == "run":
        from .apps import get_app
        from .experiments import ExperimentRunner, RunSpec
        from .tuning import TunedConfigRegistry, default_tuned_path

        app = get_app(args.app)
        registry = TunedConfigRegistry(default_tuned_path(args.cache_dir))
        # opt-in on-disk result cache: `repro run` stays execute-always
        # unless the user points it at a cache directory explicitly
        store = None
        dataset_cache = None
        if args.cache_dir:
            from .experiments import ResultStore
            from .workloads import DatasetCache, default_dataset_cache_dir

            store = ResultStore(args.cache_dir)
            dataset_cache = DatasetCache(
                default_dataset_cache_dir(args.cache_dir))
        runner = ExperimentRunner(
            scale=args.scale, verify=not args.no_verify, store=store,
            dataset_cache=dataset_cache,
            tuned=registry, tuned_objective=args.objective)
        spec = RunSpec(app=args.app, variant=args.variant,
                       allocator=args.allocator, threshold=args.threshold,
                       strategy=args.strategy, workload=args.workload,
                       backend=args.backend, oracle=args.oracle)
        from contextlib import ExitStack

        tracer = None
        t0 = time.time()
        try:
            if args.variant == "tuned":
                # the same selection _resolve_tuned uses, so the
                # provenance line always describes the config that runs
                entry = runner.tuned_entry(args.app, args.workload)
                if entry is not None:
                    where = (f" on {entry.workload}" if entry.workload
                             else "")
                    print(f"tuned[{entry.objective}] via {entry.algorithm}"
                          f"{where}: {entry.candidate.describe()}")
            with ExitStack() as stack:
                if args.trace:
                    from .telemetry import Tracer, span, tracing

                    tracer = stack.enter_context(tracing(Tracer()))
                    stack.enter_context(span("repro.run", app=args.app,
                                             variant=args.variant))
                run = runner.run_spec(spec)
        except ValueError as exc:  # e.g. variant/strategy contradiction
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (KeyError, RuntimeError) as exc:  # e.g. no tuned config yet
            # KeyError's str() wraps the message in quotes; unwrap it
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        wall = time.time() - t0
        label = run.variant if run.strategy is None else \
            f"{run.variant}:{run.strategy}"
        if run.backend is not None:
            label += f"@{run.backend}"
        if getattr(run, "oracle", None) is not None:
            label += f"+{run.oracle}"
        print(f"{app.label} [{label}] on {run.dataset} "
              f"(verified={run.checked}, wall={wall:.1f}s)")
        if run.report is not None:
            print(f"  {run.report.describe()}")
        print(run.metrics.summary())
        if store is not None:
            from .experiments.reporting import run_provenance

            print(run_provenance(runner.stats))
        if tracer is not None:
            from .telemetry import write_chrome_trace

            path = write_chrome_trace(args.trace, tracer)
            print(f"[trace: {len(tracer)} spans -> {path}]")
        return 0

    if args.command == "trace":
        from .apps import get_app
        from .experiments import ExperimentRunner, RunSpec
        from .telemetry import (Tracer, attribution_table, span, span_tree,
                                tracing, write_chrome_trace)
        from .tuning import TunedConfigRegistry, default_tuned_path

        app = get_app(args.app)
        runner = ExperimentRunner(
            scale=args.scale, verify=not args.no_verify,
            tuned=TunedConfigRegistry(default_tuned_path(args.cache_dir)))
        spec = RunSpec(app=args.app, variant=args.variant,
                       allocator=args.allocator, threshold=args.threshold,
                       strategy=args.strategy, workload=args.workload)
        tracer = Tracer()
        t0 = time.perf_counter()
        try:
            # the root span brackets the whole traced region, so the
            # coverage figure is span-tree structure, not luck
            with tracing(tracer), span("repro.trace", app=args.app,
                                       variant=args.variant):
                run = runner.run_spec(spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (KeyError, RuntimeError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        wall = time.perf_counter() - t0
        label = run.variant if run.strategy is None else \
            f"{run.variant}:{run.strategy}"
        print(f"{app.label} [{label}] on {run.dataset} "
              f"(verified={run.checked})")
        print(run.metrics.summary())
        print()
        if args.tree:
            print(span_tree(tracer))
            print()
        print(attribution_table(tracer, wall))
        path = write_chrome_trace(args.trace, tracer)
        print(f"[chrome trace -> {path}]")
        return 0

    if args.command == "profile":
        from .apps import get_app
        from .experiments import ExperimentRunner, RunSpec
        from .perf import profiling
        from .perf.report import (build_profile, render_occupancy,
                                  render_profile, write_profile,
                                  write_profile_trace)
        from .tuning import TunedConfigRegistry, default_tuned_path

        runner = ExperimentRunner(
            scale=args.scale, verify=not args.no_verify,
            tuned=TunedConfigRegistry(default_tuned_path(args.cache_dir)))
        spec = RunSpec(app=args.app, variant=args.variant,
                       allocator=args.allocator, threshold=args.threshold,
                       strategy=args.strategy, workload=args.workload)
        try:
            app = get_app(args.app)
            with profiling() as collector:
                run = runner.run_spec(spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (KeyError, RuntimeError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        label = run.variant if run.strategy is None else \
            f"{run.variant}:{run.strategy}"
        profile = build_profile(collector, label=f"{args.app} {label}")
        print(f"{app.label} [{label}] on {run.dataset} "
              f"(verified={run.checked})")
        print()
        print(render_profile(profile, top=args.top))
        if args.occupancy:
            print()
            print(render_occupancy(profile))
        if args.json:
            print(f"[profile json -> {write_profile(args.json, profile)}]")
        if args.trace:
            print(f"[chrome trace -> "
                  f"{write_profile_trace(args.trace, profile)}]")
        return 0

    if args.command == "perf":
        from .perf.ledger import (DEFAULT_NOISE_FLOOR, DEFAULT_THRESHOLD,
                                  PerfLedger, default_ledger_path)

        ledger = PerfLedger(args.ledger or
                            default_ledger_path(args.cache_dir))
        noise = (args.noise_floor if args.noise_floor is not None
                 else DEFAULT_NOISE_FLOOR)
        if args.action == "ingest":
            import os as _os

            total = 0
            targets = args.paths or ["."]
            try:
                for target in targets:
                    if _os.path.isdir(target):
                        results = ledger.ingest_dir(target)
                    else:
                        results = [ledger.ingest_file(target)]
                    for bench, n in results:
                        state = f"{n} cells" if n else "already ingested"
                        print(f"  {bench:24s} {state}")
                        total += n
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"[{total} records appended -> {ledger.path}]")
            return 0
        if args.action == "history":
            records = ledger.history(bench=args.bench, cell=args.cell)
            if not records:
                print("(no matching ledger records)")
                return 0
            for rec in records:
                print(f"{rec['bench']:24s} {rec['cell']:44s} "
                      f"{rec['value']:>14g}  [{rec['sha']}]")
            print(f"[{len(records)} records in {ledger.path}]")
            return 0
        if args.action == "diff":
            deltas = ledger.diff(noise_floor=noise)
            if not deltas:
                print("(no deltas beyond the noise floor — ledger has "
                      "fewer than two distinct ingests per cell, or "
                      "nothing moved)")
                return 0
            for delta in deltas:
                print("  " + delta.describe())
            print(f"[{len(deltas)} deltas beyond {noise:.0%} noise floor]")
            return 0
        # check: the regression gate
        threshold = (args.threshold if args.threshold is not None
                     else DEFAULT_THRESHOLD)
        regressions, other = ledger.check(threshold=threshold,
                                          noise_floor=noise)
        for delta in other:
            print("  " + delta.describe())
        if regressions:
            print(f"FAIL: {len(regressions)} cell(s) regressed beyond "
                  f"{threshold:.0%}:", file=sys.stderr)
            for delta in regressions:
                print("  " + delta.describe(), file=sys.stderr)
            return 1
        print(f"OK: no regressions beyond {threshold:.0%} "
              f"({len(other)} non-regressing deltas, ledger {ledger.path})")
        return 0

    if args.command == "tune":
        from .tuning import Tuner, TunedConfigRegistry, default_tuned_path

        # --no-cache keeps the whole invocation off disk: no run store,
        # and no write to the (possibly global) tuned-config registry
        registry = (None if args.no_cache else
                    TunedConfigRegistry(default_tuned_path(args.cache_dir)))
        from .service import ServiceError

        service = None
        if args.socket or args.tcp:
            try:
                service = _make_client(args)
            except (ServiceError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            info = service.server_info
            if info.get("verify") != (not args.no_verify):
                print(f"note: server verify={info.get('verify')} differs "
                      "from this invocation; server settings win for "
                      "executed runs", file=sys.stderr)
        tuner = Tuner(scale=args.scale, store=_make_store(args),
                      registry=registry, jobs=args.jobs,
                      verify=not args.no_verify,
                      dataset_cache=_make_dataset_cache(args),
                      service=service, oracle=args.oracle)
        t0 = time.time()
        try:
            result = tuner.tune(args.app, objective=args.objective,
                                algorithm=args.search, budget=args.budget,
                                seed=args.seed, workload=args.workload)
        except (KeyError, ValueError, ServiceError) as exc:
            # e.g. unknown app/workload, an app-incompatible workload,
            # or a service failure from a --socket evaluation; other
            # RuntimeErrors are bugs and keep their traceback
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        if service is not None:
            service.close()
        print(result.describe())
        if result.surrogate:
            rep = result.surrogate
            rungs = ", ".join(
                f"{d['candidates']} {d['mode']} @x{d['scale']:g}"
                for d in rep.get("decisions", ()))
            rho = rep.get("spearman")
            rho_text = "n/a" if rho is None else f"{rho:.3f}"
            print(f"[surrogate rungs: {rungs}; trained on "
                  f"{rep.get('train_rows', 0)} logged rows, "
                  f"Spearman rho {rho_text}]")
            from .tuning import weak_surrogate_warning

            caution = weak_surrogate_warning(rep)
            if caution:
                print(f"warning: {caution}", file=sys.stderr)
        where = (f"via {service.endpoint}" if service is not None
                 else f"--jobs {args.jobs}")
        print(f"[tuning: {result.evaluations} evaluations "
              f"({where}): {result.stats.describe()}; "
              f"{time.time() - t0:.1f}s]")
        if registry is not None:
            print(f"saved tuned config -> {registry.path} "
                  f"(key {result.key[:12]}...)")
        else:
            print("tuned config not persisted (--no-cache)")
        return 0

    if args.command == "tuned-vs-paper":
        from .experiments import tuned_vs_paper
        from .tuning import Tuner, TunedConfigRegistry, default_tuned_path

        registry = (None if args.no_cache else
                    TunedConfigRegistry(default_tuned_path(args.cache_dir)))
        tuner = Tuner(scale=args.scale, store=_make_store(args),
                      registry=registry, jobs=args.jobs,
                      verify=not args.no_verify,
                      dataset_cache=_make_dataset_cache(args))
        t0 = time.time()
        print(tuned_vs_paper.compute(
            tuner, apps=args.apps, objective=args.objective,
            algorithm=args.search, budget=args.budget,
            seed=args.seed).render())
        saved = ("configs saved -> " + str(registry.path)
                 if registry is not None else "configs not persisted "
                 "(--no-cache)")
        print(f"\n[tuning (--jobs {args.jobs}): {tuner.stats.describe()}; "
              f"{time.time() - t0:.1f}s; {saved}]")
        return 0

    if args.command == "sensitivity":
        from .experiments import ExperimentRunner, input_sensitivity
        from .experiments.reporting import run_provenance

        runner = ExperimentRunner(
            scale=args.scale, verify=not args.no_verify,
            store=_make_store(args), jobs=args.jobs,
            dataset_cache=_make_dataset_cache(args))
        t0 = time.time()
        try:
            plan = input_sensitivity.plan(runner, apps=args.apps)
        except KeyError as exc:  # unknown app key in --apps
            message = exc.args[0] if exc.args else exc
            print(f"error: unknown app {message}", file=sys.stderr)
            return 2
        stats = runner.prefetch(plan, jobs=args.jobs)
        print(f"[plan: {len(plan)} unique runs (--jobs {args.jobs}): "
              f"{stats.describe()}; {time.time() - t0:.1f}s]\n")
        print(input_sensitivity.main(runner, apps=args.apps))
        print()
        print(run_provenance(runner.stats))
        return 0

    if args.command == "serve":
        from .service import DEFAULT_BATCH_WINDOW, ExperimentService
        from .service.protocol import default_socket_path
        from .tuning import TunedConfigRegistry, default_tuned_path

        svc = ExperimentService(
            scale=args.scale, verify=not args.no_verify,
            store=_make_store(args), dataset_cache=_make_dataset_cache(args),
            tuned=TunedConfigRegistry(default_tuned_path(args.cache_dir)),
            jobs=args.jobs,
            batch_window=(args.batch_window if args.batch_window is not None
                          else DEFAULT_BATCH_WINDOW),
            trace=args.trace)

        def ready():
            store_note = (f"store {svc.store.root} "
                          f"({svc.store.shards} shards)"
                          if svc.store is not None else "no store (--no-cache)")
            print(f"[{svc.name}] listening on {svc.endpoint}; "
                  f"scale {svc.scale}, jobs {svc.jobs}, "
                  f"window {svc.batch_window}s; {store_note}", flush=True)

        try:
            if args.tcp:
                host, port = _parse_tcp(args.tcp)
                svc.run(host=host, port=port, ready=ready)
            else:
                path = args.socket or default_socket_path(args.cache_dir)
                svc.run(socket_path=path, ready=ready)
        except (ValueError, RuntimeError) as exc:
            # e.g. bad --tcp syntax, or another daemon already listening
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            pass
        m = svc.metrics
        print(f"[{svc.name}] stopped: {m.requests} requests, "
              f"{m.executed} executed, {m.cache_hits} cache hits, "
              f"{m.coalesced} coalesced ({100 * m.dedup_rate:.1f}% dedup), "
              f"{m.batches} batches")
        if args.trace and svc.tracer is not None:
            print(f"[{svc.name}] trace: {len(svc.tracer)} spans -> "
                  f"{args.trace}")
        return 0

    if args.command in ("submit", "status", "shutdown"):
        from .service import ServiceError, describe_status

        try:
            client = _make_client(args)
        except (ServiceError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        with client:
            if args.command == "status":
                if args.metrics:
                    try:
                        print(client.metrics()["text"].rstrip())
                    except ServiceError as exc:
                        print(f"error: {exc}", file=sys.stderr)
                        return 2
                    return 0
                print(describe_status(client.status()))
                return 0
            if args.command == "shutdown":
                report = client.shutdown()
                print(f"service drained ({report.get('drained', 0)} "
                      "queued/in-flight at request) and stopped")
                return 0
            from .experiments.plan import RunSpec

            spec = RunSpec(app=args.app, variant=args.variant,
                           allocator=args.allocator,
                           threshold=args.threshold,
                           strategy=args.strategy, workload=args.workload)
            t0 = time.time()
            try:
                res = client.submit_spec(spec, scale=args.scale)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            wall = time.time() - t0
            print(f"{res.app} [{res.label()}] on {res.dataset} "
                  f"(verified={res.checked}, via {client.endpoint}, "
                  f"wall={wall:.1f}s)")
            print(res.metrics.summary())
            print(f"[service: {res.source}; batch: {res.stats.describe()}]")
            return 0

    if args.command == "cache":
        from .experiments import ResultStore, default_cache_dir
        from .tuning import TunedConfigRegistry, default_tuned_path
        from .workloads import DatasetCache, default_dataset_cache_dir

        store = ResultStore(args.cache_dir or default_cache_dir())
        tuned = TunedConfigRegistry(default_tuned_path(args.cache_dir))
        datasets = DatasetCache(default_dataset_cache_dir(args.cache_dir))
        if args.action == "clear":
            removed = store.clear()
            print(f"removed {removed} cached runs from {store.root}")
            removed_datasets = datasets.clear()
            if removed_datasets:
                print(f"removed {removed_datasets} cached datasets from "
                      f"{datasets.root}")
            removed_configs = tuned.clear()
            if removed_configs:
                print(f"removed {removed_configs} tuned configs from "
                      f"{tuned.path}")
        else:
            info = store.shard_info()
            layout = (f"{info['shards']} shards "
                      f"({info['populated']} populated, "
                      f"{info['sharded_entries']} sharded entries")
            layout += (f" + {info['legacy_entries']} legacy flat entries)"
                       if info["legacy_entries"] else ")")
            print(f"cache dir : {store.root}")
            print(f"layout    : {layout}")
            print(f"entries   : "
                  f"{info['sharded_entries'] + info['legacy_entries']}")
            print(f"size      : {store.size_bytes() / 1024:.1f} KiB")
            print(f"datasets  : {len(datasets)} cached "
                  f"({datasets.size_bytes() / 1024:.1f} KiB, "
                  f"{datasets.root})")
            print(f"tuned     : {len(tuned)} configs ({tuned.path})")
        return 0

    # figures
    from .experiments import ExperimentRunner, figure_plan
    from .experiments.reporting import run_provenance

    runner = ExperimentRunner(scale=args.scale, verify=not args.no_verify,
                              store=_make_store(args), jobs=args.jobs,
                              dataset_cache=_make_dataset_cache(args))
    figures = list(FIGURES) if args.command == "all" else [args.command]
    t0 = time.time()
    plan = figure_plan(figures, runner)
    stats = runner.prefetch(plan, jobs=args.jobs)
    print(f"[plan: {len(plan)} unique runs (--jobs {args.jobs}): "
          f"{stats.describe()}; {time.time() - t0:.1f}s]\n")
    for fig in figures:
        t0 = time.time()
        print(FIGURES[fig].main(runner))
        print(f"[{fig} regenerated in {time.time() - t0:.1f}s]\n")
    print(run_provenance(runner.stats))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

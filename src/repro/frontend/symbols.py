"""Lexical scopes and builtin signatures for MiniCUDA semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import TypeCheckError
from .ast_nodes import FLOAT, INT, Type, UINT, VOID


@dataclass
class Symbol:
    name: str
    type: Type
    kind: str = "var"  # var | param | shared-array | local-array | global
    array_size: Optional[object] = None  # Expr for arrays


class Scope:
    """A chained lexical scope."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def declare(self, sym: Symbol, loc=None) -> Symbol:
        if sym.name in self.symbols:
            raise TypeCheckError(f"redeclaration of {sym.name!r}", loc)
        self.symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope.symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(self)


@dataclass(frozen=True)
class BuiltinFn:
    """Signature of a builtin/intrinsic function.

    ``params`` of ``None`` means variadic (printf). A parameter type of
    ``None`` means "any arithmetic". ``generic_ptr`` parameters accept a
    pointer of any pointee type; the result type then follows the pointee.
    """

    name: str
    ret: Optional[Type]
    params: Optional[tuple] = None
    result_follows_pointee: bool = False


#: CUDA builtins available in every MiniCUDA program.  Atomics follow the
#: CUDA convention: first argument is an address in global memory, result is
#: the *old* value.
_PTR = "ptr"  # marker: pointer to arithmetic type
_ANY = None  # marker: any arithmetic type

BUILTIN_FUNCTIONS: dict[str, BuiltinFn] = {}


def _register(name, ret, params=None, follows=False):
    BUILTIN_FUNCTIONS[name] = BuiltinFn(name, ret, params, follows)


_register("__syncthreads", VOID, ())
_register("__syncwarp", VOID, ())
_register("__threadfence", VOID, ())
_register("cudaDeviceSynchronize", INT, ())

for _atomic in ("atomicAdd", "atomicSub", "atomicMin", "atomicMax", "atomicExch",
                "atomicOr", "atomicAnd"):
    _register(_atomic, None, (_PTR, _ANY), follows=True)
_register("atomicCAS", None, (_PTR, _ANY, _ANY), follows=True)

_register("min", None, (_ANY, _ANY), follows=False)
_register("max", None, (_ANY, _ANY), follows=False)
_register("abs", INT, (_ANY,))
_register("fabsf", FLOAT, (_ANY,))
_register("fabs", Type("double"), (_ANY,))
_register("sqrtf", FLOAT, (_ANY,))
_register("sqrt", Type("double"), (_ANY,))
_register("expf", FLOAT, (_ANY,))
_register("logf", FLOAT, (_ANY,))
_register("powf", FLOAT, (_ANY, _ANY))
_register("floorf", FLOAT, (_ANY,))
_register("ceilf", FLOAT, (_ANY,))
_register("printf", INT, None)
_register("assert", VOID, (_ANY,))

#: Integer "macros" treated as predeclared constants.
BUILTIN_CONSTANTS: dict[str, tuple[Type, int]] = {
    "INT_MAX": (INT, 2**31 - 1),
    "INT_MIN": (INT, -(2**31)),
    "UINT_MAX": (UINT, 2**32 - 1),
    "FLT_MAX": (FLOAT, 3.4028234663852886e38),
    "NULL": (Type("void", 1), 0),
}


#: Device-runtime intrinsics injected by the consolidation compiler
#: (see repro/runtime/devlib.py for semantics). Registered here so that
#: generated code typechecks with the same checker as user code.
def register_runtime_intrinsics() -> None:
    _register("__dp_lane", INT, ())
    _register("__dp_warp_id", INT, ())
    _register("__dp_buf_acquire", INT, (_ANY, _ANY, _ANY))
    _register("__dp_buf_push1", INT, (_ANY, _ANY))
    _register("__dp_buf_push2", INT, (_ANY, _ANY, _ANY))
    _register("__dp_buf_push3", INT, (_ANY, _ANY, _ANY, _ANY))
    _register("__dp_buf_push4", INT, (_ANY, _ANY, _ANY, _ANY, _ANY))
    _register("__dp_buf_size", INT, (_ANY,))
    _register("__dp_buf_get", INT, (_ANY, _ANY, _ANY))
    _register("__dp_buf_reset", VOID, (_ANY,))
    _register("__dp_grid_arrive_last", INT, ())
    _register("__dp_buf_child", INT, ())


register_runtime_intrinsics()

"""Typed AST for MiniCUDA.

The node set covers the CUDA-C subset that the paper's Fig. 1 template (and
our seven benchmark applications) need: functions with ``__global__`` /
``__device__`` qualifiers, C control flow, pointers into global memory,
CUDA builtins (``threadIdx`` ...), ``<<<grid, block>>>`` kernel launches and
``#pragma dp`` directives attached to statements.

Nodes are plain dataclasses. Generic traversal is provided by
:func:`iter_children` / :func:`walk`, structural rewriting by
:class:`Transformer` (which rebuilds only along mutated spines).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Iterator, Optional, Union

from .source import SourceLocation, UNKNOWN_LOC

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: Scalar base types understood by the frontend.
SCALAR_TYPES = ("void", "int", "uint", "long", "float", "double", "bool", "char", "size_t")


@dataclass(frozen=True)
class Type:
    """A MiniCUDA type: a scalar base plus a pointer depth.

    ``Type('int', 1)`` is ``int*``; ``Type('float', 0)`` is ``float``.
    """

    base: str
    ptr: int = 0

    def __post_init__(self):
        if self.base not in SCALAR_TYPES:
            raise ValueError(f"unknown base type {self.base!r}")
        if self.ptr < 0:
            raise ValueError("negative pointer depth")

    # -- convenient predicates ------------------------------------------------

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.ptr == 0

    @property
    def is_integer(self) -> bool:
        return self.ptr == 0 and self.base in ("int", "uint", "long", "char", "bool", "size_t")

    @property
    def is_float(self) -> bool:
        return self.ptr == 0 and self.base in ("float", "double")

    @property
    def is_arith(self) -> bool:
        return self.is_integer or self.is_float

    def pointee(self) -> "Type":
        if not self.is_pointer:
            raise ValueError(f"cannot dereference non-pointer type {self}")
        return Type(self.base, self.ptr - 1)

    def pointer_to(self) -> "Type":
        return Type(self.base, self.ptr + 1)

    def __str__(self) -> str:
        spell = {"uint": "unsigned int"}.get(self.base, self.base)
        return spell + "*" * self.ptr


INT = Type("int")
UINT = Type("uint")
FLOAT = Type("float")
DOUBLE = Type("double")
BOOL = Type("bool")
VOID = Type("void")


# ---------------------------------------------------------------------------
# Base node machinery
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class of all AST nodes.

    ``loc`` is declared on every concrete node (keyword-only, defaulted) so
    diagnostics can point into the source. Nodes compare structurally
    *ignoring* locations, which makes golden tests on transformed ASTs easy.
    """

    def children(self) -> Iterator["Node"]:
        yield from iter_children(self)

    def __eq__(self, other) -> bool:
        if self.__class__ is not other.__class__:
            return NotImplemented
        for f in fields(self):
            if f.name == "loc":
                continue
            if getattr(self, f.name) != getattr(other, f.name):
                return False
        return True

    def __hash__(self):  # structural equality => identity-based hash is unsafe
        return id(self)


def iter_children(node: Node) -> Iterator[Node]:
    """Yield the direct child nodes of ``node`` (lists are flattened)."""
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all descendants."""
    yield node
    for child in iter_children(node):
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr(Node):
    pass


@dataclass(eq=False)
class IntLit(Expr):
    value: int
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class FloatLit(Expr):
    value: float
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class BoolLit(Expr):
    value: bool
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class StringLit(Expr):
    value: str
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Ident(Expr):
    name: str
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class BuiltinVar(Expr):
    """A CUDA builtin such as ``threadIdx.x``; ``name`` is e.g.
    ``threadIdx`` and ``dim`` one of ``x``/``y``/``z``."""

    name: str
    dim: str
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


#: The CUDA builtin vector variables recognized as :class:`BuiltinVar`.
BUILTIN_VARS = ("threadIdx", "blockIdx", "blockDim", "gridDim")


@dataclass(eq=False)
class UnOp(Expr):
    """Prefix unary operator: ``-``, ``+``, ``!``, ``~``, ``*`` (deref),
    ``&`` (address-of)."""

    op: str
    operand: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class IncDec(Expr):
    """``++``/``--`` in prefix or postfix position."""

    op: str  # "++" or "--"
    operand: Expr
    prefix: bool
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Assign(Expr):
    """``target op= value``; ``op`` is ``=`` or a compound like ``+=``."""

    op: str
    target: Expr
    value: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Ternary(Expr):
    cond: Expr
    then: Expr
    els: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Call(Expr):
    """A plain function call ``callee(args...)``. ``callee`` is a name:
    MiniCUDA has no function pointers."""

    callee: str
    args: list[Expr]
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class LaunchExpr(Expr):
    """A CUDA dynamic-parallelism launch ``kernel<<<grid, block>>>(args)``.

    ``shared`` and ``stream`` mirror the optional 3rd/4th launch-config
    operands; they are parsed but must be zero/default in MiniCUDA.
    """

    callee: str
    grid: Expr
    block: Expr
    args: list[Expr]
    shared: Optional[Expr] = None
    stream: Optional[Expr] = None
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Index(Expr):
    base: Expr
    index: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Member(Expr):
    """``base.name`` — only used for pragma-era struct-ish accesses; CUDA
    builtins are folded into :class:`BuiltinVar` during parsing."""

    base: Expr
    name: str
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Cast(Expr):
    type: Type
    expr: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt(Node):
    pass


@dataclass(eq=False)
class VarDeclarator(Node):
    """One ``name [ [arraysize] ] [= init]`` inside a declaration."""

    name: str
    type: Type
    array_size: Optional[Expr] = None  # local/shared array: `int s[256]`
    init: Optional[Expr] = None
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class DeclStmt(Stmt):
    """``[__shared__] [const] type declarator (, declarator)* ;``"""

    declarators: list[VarDeclarator]
    shared: bool = False
    const: bool = False
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class ExprStmt(Stmt):
    expr: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Block(Stmt):
    stmts: list[Stmt]
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt] = None
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: Stmt
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class DoWhile(Stmt):
    body: Stmt
    cond: Expr
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class For(Stmt):
    init: Optional[Stmt]  # DeclStmt or ExprStmt or None
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Return(Stmt):
    value: Optional[Expr] = None
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Break(Stmt):
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Continue(Stmt):
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class PragmaStmt(Stmt):
    """A ``#pragma dp ...`` directive attached to the *next* statement.

    ``directive`` holds the parsed :class:`repro.frontend.pragma.DpDirective`
    (kept as ``object`` here to avoid a circular import); ``stmt`` is the
    annotated statement.
    """

    directive: object
    stmt: Stmt
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class EmptyStmt(Stmt):
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


# ---------------------------------------------------------------------------
# Declarations / module
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Param(Node):
    name: str
    type: Type
    restrict: bool = False
    const: bool = False
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class FunctionDef(Node):
    """A function definition. ``qualifiers`` is a frozenset drawn from
    ``{"__global__", "__device__", "__host__"}``; kernels are the
    ``__global__`` ones."""

    name: str
    ret_type: Type
    params: list[Param]
    body: Block
    qualifiers: frozenset[str] = frozenset()
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)

    @property
    def is_kernel(self) -> bool:
        return "__global__" in self.qualifiers

    @property
    def is_device_fn(self) -> bool:
        return "__device__" in self.qualifiers and not self.is_kernel


@dataclass(eq=False)
class GlobalDecl(Node):
    """A file-scope ``__device__`` variable declaration."""

    name: str
    type: Type
    init: Optional[Expr] = None
    device: bool = True
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)


@dataclass(eq=False)
class Module(Node):
    """A parsed translation unit."""

    decls: list[Union[FunctionDef, GlobalDecl]]
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)

    def functions(self) -> list[FunctionDef]:
        return [d for d in self.decls if isinstance(d, FunctionDef)]

    def kernels(self) -> list[FunctionDef]:
        return [f for f in self.functions() if f.is_kernel]

    def function(self, name: str) -> FunctionDef:
        for f in self.functions():
            if f.name == name:
                return f
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Rewriting
# ---------------------------------------------------------------------------


class Transformer:
    """Bottom-up structural rewriter.

    Subclasses override ``visit_<ClassName>`` methods; each receives a node
    whose children have already been rewritten, and returns a replacement
    node (or the same node to leave it untouched). Statement visitors may
    also return a *list* of statements, which is spliced into the enclosing
    block; this is how the consolidation transforms insert buffer pushes and
    barrier calls.
    """

    def visit(self, node):
        if node is None:
            return None
        rebuilt = self._rebuild_children(node)
        method = getattr(self, "visit_" + node.__class__.__name__, None)
        if method is None:
            return rebuilt
        return method(rebuilt)

    def _visit_child(self, value):
        if isinstance(value, Node):
            return self.visit(value)
        if isinstance(value, list):
            out = []
            changed = False
            for item in value:
                if isinstance(item, Node):
                    res = self.visit(item)
                    if isinstance(res, list):
                        out.extend(res)
                        changed = True
                    elif res is not None:
                        out.append(res)
                        changed = changed or res is not item
                    else:
                        changed = True
                else:
                    out.append(item)
            # preserve list identity when nothing changed, so parents are
            # not needlessly rebuilt (transforms rely on node identity)
            return out if changed else value
        return value

    def _rebuild_children(self, node):
        changes = {}
        for f in fields(node):
            old = getattr(node, f.name)
            new = self._visit_child(old)
            if new is not old:
                changes[f.name] = new
        if not changes:
            return node
        return replace(node, **changes)


def clone(node):
    """Deep-copy an AST (fresh node identities, same structure).

    Non-node field values (types, strings, parsed directives) are shared;
    they are immutable by convention.
    """
    if node is None:
        return None
    kwargs = {}
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            kwargs[f.name] = clone(value)
        elif isinstance(value, list):
            kwargs[f.name] = [clone(v) if isinstance(v, Node) else v for v in value]
        else:
            kwargs[f.name] = value
    return node.__class__(**kwargs)

"""MiniCUDA frontend: lexer, parser, AST, pragma directives, semantic
analysis and unparser.

The frontend stands in for the ROSE/EDG infrastructure the paper builds on
(§IV.E): it parses the CUDA-C subset needed by the paper's Fig. 1 template,
attaches ``#pragma dp`` directives to the statements they annotate, and can
unparse transformed ASTs back to CUDA source.
"""

from . import ast_nodes as ast  # noqa: F401  (convenient alias)
from .ast_nodes import Module, FunctionDef, Type  # noqa: F401
from .lexer import tokenize  # noqa: F401
from .parser import parse  # noqa: F401
from .pragma import DpDirective, parse_dp_pragma  # noqa: F401
from .typecheck import check_module, ModuleInfo  # noqa: F401
from .unparser import unparse  # noqa: F401

"""Parser for the paper's workload-consolidation compiler directive.

Table I of the paper defines the directive grammar::

    #pragma dp clause+

    consldt(granularity)                granularity: warp | block | grid
    buffer(type: default|halloc|custom
           [, perBufferSize: int|var]
           [, totalSize: int])          optional
    work(varlist)                       indexes/pointers to buffer
    threads(int)                        optional consolidated-kernel threads
    blocks(int)                         optional consolidated-kernel blocks

``consldt`` and ``work`` are mandatory, everything else optional, matching
the "Optional" column of Table I.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import PragmaError
from .source import SourceLocation, UNKNOWN_LOC

GRANULARITIES = ("warp", "block", "grid")
BUFFER_TYPES = ("default", "halloc", "custom")

#: Default size of the pre-allocated memory pool (bytes) — §IV.E:
#: "The size of the pre-allocated memory pool (500MB by default)".
DEFAULT_TOTAL_SIZE = 500 * 1024 * 1024

#: §IV.E: const "that estimates the number of work items assigned to a
#: single thread" used by the perBufferSize prediction (default value: 4).
PER_THREAD_WORK_CONST = 4


@dataclass(frozen=True)
class DpDirective:
    """A parsed ``#pragma dp`` directive."""

    granularity: str
    work: tuple[str, ...]
    buffer_type: str = "custom"
    per_buffer_size: Optional[Union[int, str]] = None  # int or variable name
    total_size: int = DEFAULT_TOTAL_SIZE
    threads: Optional[int] = None
    blocks: Optional[int] = None
    loc: SourceLocation = field(default=UNKNOWN_LOC, compare=False)

    def __post_init__(self):
        if self.granularity not in GRANULARITIES:
            raise PragmaError(
                f"consldt granularity must be one of {GRANULARITIES}, "
                f"got {self.granularity!r}",
                self.loc,
            )
        if self.buffer_type not in BUFFER_TYPES:
            raise PragmaError(
                f"buffer type must be one of {BUFFER_TYPES}, got {self.buffer_type!r}",
                self.loc,
            )
        if not self.work:
            raise PragmaError("work() clause requires at least one variable", self.loc)

    def describe(self) -> str:
        parts = [f"consldt({self.granularity})"]
        buf = [f"type: {self.buffer_type}"]
        if self.per_buffer_size is not None:
            buf.append(f"perBufferSize: {self.per_buffer_size}")
        if self.total_size != DEFAULT_TOTAL_SIZE:
            buf.append(f"totalSize: {self.total_size}")
        parts.append(f"buffer({', '.join(buf)})")
        parts.append(f"work({', '.join(self.work)})")
        if self.threads is not None:
            parts.append(f"threads({self.threads})")
        if self.blocks is not None:
            parts.append(f"blocks({self.blocks})")
        return "dp " + " ".join(parts)


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z_0-9]*)|(?P<int>\d+)|(?P<punct>[():,]))"
)


def _scan(payload: str, loc: SourceLocation) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(payload):
        m = _TOKEN_RE.match(payload, pos)
        if m is None:
            if payload[pos:].strip() == "":
                break
            raise PragmaError(
                f"bad character in #pragma dp near {payload[pos:pos + 10]!r}", loc
            )
        pos = m.end()
        if m.lastgroup == "ident":
            tokens.append(("ident", m.group("ident")))
        elif m.lastgroup == "int":
            tokens.append(("int", m.group("int")))
        else:
            tokens.append(("punct", m.group("punct")))
    return tokens


class _ClauseParser:
    def __init__(self, tokens: list[tuple[str, str]], loc: SourceLocation):
        self.tokens = tokens
        self.pos = 0
        self.loc = loc

    def done(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self):
        return self.tokens[self.pos] if not self.done() else ("eof", "")

    def next(self):
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None):
        tok = self.next()
        if tok[0] != kind or (text is not None and tok[1] != text):
            want = text or kind
            raise PragmaError(f"expected {want!r} in #pragma dp, got {tok[1]!r}", self.loc)
        return tok

    def parse_args(self) -> list[list[tuple[str, str]]]:
        """Parse '( arg (, arg)* )' where each arg is a token run."""
        self.expect("punct", "(")
        groups: list[list[tuple[str, str]]] = [[]]
        depth = 1
        while True:
            tok = self.next()
            if tok[0] == "eof":
                raise PragmaError("unterminated clause in #pragma dp", self.loc)
            if tok == ("punct", "("):
                depth += 1
            elif tok == ("punct", ")"):
                depth -= 1
                if depth == 0:
                    break
            elif tok == ("punct", ",") and depth == 1:
                groups.append([])
                continue
            groups[-1].append(tok)
        if groups == [[]]:
            return []
        return groups


def parse_dp_pragma(payload: str, loc: SourceLocation = UNKNOWN_LOC) -> Optional[DpDirective]:
    """Parse the payload of a ``#pragma`` token.

    Returns ``None`` when the pragma is not a ``dp`` directive (e.g.
    ``#pragma unroll``), so foreign pragmas pass through untouched.
    Raises :class:`PragmaError` on a malformed ``dp`` directive.
    """
    tokens = _scan(payload, loc)
    if not tokens or tokens[0] != ("ident", "dp"):
        return None
    p = _ClauseParser(tokens, loc)
    p.next()  # 'dp'

    granularity: Optional[str] = None
    work: Optional[tuple[str, ...]] = None
    buffer_type = "custom"
    per_buffer_size: Optional[Union[int, str]] = None
    total_size = DEFAULT_TOTAL_SIZE
    threads: Optional[int] = None
    blocks: Optional[int] = None
    seen: set[str] = set()

    while not p.done():
        kind, name = p.next()
        if kind != "ident":
            raise PragmaError(f"expected clause name, got {name!r}", loc)
        if name in seen:
            raise PragmaError(f"duplicate {name!r} clause in #pragma dp", loc)
        seen.add(name)

        if name == "consldt":
            args = p.parse_args()
            if len(args) != 1 or len(args[0]) != 1 or args[0][0][0] != "ident":
                raise PragmaError("consldt expects a single granularity name", loc)
            granularity = args[0][0][1]
        elif name == "work":
            args = p.parse_args()
            vars_: list[str] = []
            for group in args:
                if len(group) != 1 or group[0][0] != "ident":
                    raise PragmaError("work() entries must be variable names", loc)
                vars_.append(group[0][1])
            work = tuple(vars_)
        elif name == "buffer":
            for group in p.parse_args():
                key, value = _parse_keyval(group, loc)
                if key == "type":
                    if not isinstance(value, str):
                        raise PragmaError("buffer type must be a name", loc)
                    buffer_type = value
                elif key == "perBufferSize":
                    per_buffer_size = value
                elif key == "totalSize":
                    if not isinstance(value, int):
                        raise PragmaError("totalSize must be an integer", loc)
                    total_size = value
                else:
                    raise PragmaError(f"unknown buffer() argument {key!r}", loc)
        elif name == "threads":
            threads = _parse_single_int(p, "threads", loc)
        elif name == "blocks":
            blocks = _parse_single_int(p, "blocks", loc)
        else:
            raise PragmaError(f"unknown #pragma dp clause {name!r}", loc)

    if granularity is None:
        raise PragmaError("#pragma dp requires a consldt(...) clause", loc)
    if work is None:
        raise PragmaError("#pragma dp requires a work(...) clause", loc)

    return DpDirective(
        granularity=granularity,
        work=work,
        buffer_type=buffer_type,
        per_buffer_size=per_buffer_size,
        total_size=total_size,
        threads=threads,
        blocks=blocks,
        loc=loc,
    )


def _parse_keyval(group: list[tuple[str, str]], loc) -> tuple[str, Union[int, str]]:
    """Parse a `key : value` token group from a buffer() clause."""
    if len(group) != 3 or group[0][0] != "ident" or group[1] != ("punct", ":"):
        text = " ".join(t[1] for t in group)
        raise PragmaError(f"expected 'key: value' in buffer(), got {text!r}", loc)
    key = group[0][1]
    kind, text = group[2]
    value: Union[int, str] = int(text) if kind == "int" else text
    return key, value


def _parse_single_int(p: _ClauseParser, clause: str, loc) -> int:
    args = p.parse_args()
    if len(args) != 1 or len(args[0]) != 1 or args[0][0][0] != "int":
        raise PragmaError(f"{clause}() expects a single integer", loc)
    return int(args[0][0][1])

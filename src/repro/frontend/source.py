"""Source-file bookkeeping for the MiniCUDA frontend.

Holds the raw text plus helpers to map byte offsets to ``line:col`` pairs so
that every token, AST node and diagnostic can point back at the program text.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A ``file:line:col`` position (1-based line and column)."""

    filename: str
    line: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.col}"


UNKNOWN_LOC = SourceLocation("<unknown>", 0, 0)


class SourceFile:
    """A MiniCUDA translation unit.

    Parameters
    ----------
    text:
        The program text.
    filename:
        Name used in diagnostics; defaults to ``<string>``.
    """

    def __init__(self, text: str, filename: str = "<string>"):
        self.text = text
        self.filename = filename
        # Offsets of the first character of each line, for offset->line maps.
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def location(self, offset: int) -> SourceLocation:
        """Map a 0-based byte offset to a :class:`SourceLocation`."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset) - 1
        col = offset - self._line_starts[line]
        return SourceLocation(self.filename, line + 1, col + 1)

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line (without trailing newline)."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]

    def __len__(self) -> int:
        return len(self.text)

"""Hand-written lexer for MiniCUDA.

Produces a flat token stream. ``#pragma`` lines become single
:class:`~repro.frontend.tokens.TokKind.PRAGMA` tokens carrying the directive
payload; ``//`` and ``/* */`` comments are skipped; all other C lexical rules
follow the usual maximal-munch convention (with ``<<<`` and ``>>>`` lexed as
single CUDA launch punctuators, as nvcc does).
"""

from __future__ import annotations

from ..errors import LexError
from .source import SourceFile
from .tokens import KEYWORDS, PUNCTUATORS, TokKind, Token

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")

# Group punctuators by first character for fast lookup.
_PUNCT_BY_FIRST: dict[str, list[str]] = {}
for _p in PUNCTUATORS:
    _PUNCT_BY_FIRST.setdefault(_p[0], []).append(_p)
for _lst in _PUNCT_BY_FIRST.values():
    _lst.sort(key=len, reverse=True)


class Lexer:
    """Tokenizes one :class:`SourceFile`. Use :func:`tokenize` for the
    one-shot convenience API."""

    def __init__(self, src: SourceFile):
        self.src = src
        self.text = src.text
        self.pos = 0
        self.n = len(src.text)

    # -- helpers -----------------------------------------------------------

    def _loc(self, offset: int | None = None):
        return self.src.location(self.pos if offset is None else offset)

    def _error(self, message: str, offset: int | None = None) -> LexError:
        return LexError(message, self._loc(offset))

    def _peek(self, k: int = 0) -> str:
        i = self.pos + k
        return self.text[i] if i < self.n else ""

    # -- whitespace, comments, pragmas ------------------------------------

    def _skip_trivia(self) -> Token | None:
        """Skip whitespace/comments; return a PRAGMA token if one is found."""
        text, n = self.text, self.n
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                nl = text.find("\n", self.pos)
                self.pos = n if nl < 0 else nl + 1
            elif ch == "/" and self._peek(1) == "*":
                end = text.find("*/", self.pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                self.pos = end + 2
            elif ch == "#":
                tok = self._lex_hash_line()
                if tok is not None:
                    return tok
                # ignored #include / #define line: keep skipping trivia
            else:
                return None
        return None

    def _lex_hash_line(self) -> Token | None:
        start = self.pos
        nl = self.text.find("\n", self.pos)
        end = self.n if nl < 0 else nl
        line = self.text[start:end].strip()
        self.pos = end
        if not line.startswith("#"):  # pragma: no cover - defensive
            raise self._error("internal: expected '#' line", start)
        body = line[1:].strip()
        if body.startswith("pragma"):
            payload = body[len("pragma"):].strip()
            return Token(TokKind.PRAGMA, payload, self.src.location(start))
        if body.startswith("include") or body.startswith("define"):
            # Tolerated and ignored: the paper's listings carry includes.
            return None
        raise self._error(f"unsupported preprocessor directive: {line!r}", start)

    def _make_eof(self) -> Token:
        return Token(TokKind.EOF, "", self.src.location(self.n))

    # -- literals ----------------------------------------------------------

    def _lex_number(self) -> Token:
        start = self.pos
        text, n = self.text, self.n
        is_float = False
        if text[self.pos] == "0" and self.pos + 1 < n and text[self.pos + 1] in "xX":
            self.pos += 2
            while self.pos < n and text[self.pos] in _HEX_DIGITS:
                self.pos += 1
            if self.pos == start + 2:
                raise self._error("malformed hex literal", start)
        else:
            while self.pos < n and text[self.pos] in _DIGITS:
                self.pos += 1
            if self.pos < n and text[self.pos] == "." and self._peek(1) in _DIGITS | {""} | set("fF"):
                is_float = True
                self.pos += 1
                while self.pos < n and text[self.pos] in _DIGITS:
                    self.pos += 1
            if self.pos < n and text[self.pos] in "eE":
                save = self.pos
                self.pos += 1
                if self.pos < n and text[self.pos] in "+-":
                    self.pos += 1
                if self.pos < n and text[self.pos] in _DIGITS:
                    is_float = True
                    while self.pos < n and text[self.pos] in _DIGITS:
                        self.pos += 1
                else:
                    self.pos = save
        # suffixes
        while self.pos < n and text[self.pos] in "uUlLfF":
            if text[self.pos] in "fF":
                is_float = True
            self.pos += 1
        spelled = text[start:self.pos]
        kind = TokKind.FLOAT if is_float else TokKind.INT
        return Token(kind, spelled, self.src.location(start))

    def _lex_string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        chars: list[str] = []
        while True:
            if self.pos >= self.n:
                raise self._error("unterminated string literal", start)
            ch = self.text[self.pos]
            if ch == "\\":
                if self.pos + 1 >= self.n:
                    raise self._error("unterminated escape", start)
                esc = self.text[self.pos + 1]
                chars.append({"n": "\n", "t": "\t", "0": "\0"}.get(esc, esc))
                self.pos += 2
            elif ch == quote:
                self.pos += 1
                break
            elif ch == "\n":
                raise self._error("newline in string literal", start)
            else:
                chars.append(ch)
                self.pos += 1
        kind = TokKind.STRING if quote == '"' else TokKind.CHAR
        return Token(kind, "".join(chars), self.src.location(start))

    # -- main loop ---------------------------------------------------------

    def next_token(self) -> Token:
        pragma = self._skip_trivia()
        if pragma is not None:
            return pragma
        if self.pos >= self.n:
            return self._make_eof()
        ch = self.text[self.pos]
        start = self.pos
        if ch in _IDENT_START:
            while self.pos < self.n and self.text[self.pos] in _IDENT_CONT:
                self.pos += 1
            word = self.text[start:self.pos]
            kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
            return Token(kind, word, self.src.location(start))
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number()
        if ch == '"' or ch == "'":
            return self._lex_string(ch)
        for punct in _PUNCT_BY_FIRST.get(ch, ()):
            if self.text.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token(TokKind.PUNCT, punct, self.src.location(start))
        raise self._error(f"unexpected character {ch!r}")

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokKind.EOF:
                return out


def tokenize(text: str, filename: str = "<string>") -> list[Token]:
    """Tokenize MiniCUDA source text into a list ending with an EOF token."""
    return Lexer(SourceFile(text, filename)).tokens()

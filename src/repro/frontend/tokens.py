"""Token kinds and the token record for the MiniCUDA lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .source import SourceLocation


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int-literal"
    FLOAT = "float-literal"
    STRING = "string-literal"
    CHAR = "char-literal"
    KEYWORD = "keyword"
    PUNCT = "punct"
    PRAGMA = "pragma"  # a whole `#pragma ...` line, payload in `text`
    EOF = "eof"


#: Reserved words of the MiniCUDA language. CUDA qualifiers are keywords so
#: that the parser can treat `__global__ void f()` uniformly.
KEYWORDS = frozenset(
    {
        "void",
        "int",
        "unsigned",
        "long",
        "float",
        "double",
        "bool",
        "char",
        "size_t",
        "if",
        "else",
        "while",
        "do",
        "for",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "const",
        "struct",
        "__global__",
        "__device__",
        "__host__",
        "__shared__",
        "__restrict__",
        "extern",
        "static",
        "sizeof",
    }
)

#: Multi-character punctuators, longest first so the lexer can munch greedily.
#: `<<<` / `>>>` are the CUDA kernel-launch delimiters.
PUNCTUATORS = [
    "<<<",
    ">>>",
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "::",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ",",
    ";",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ".",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the exact source spelling except for :attr:`TokKind.PRAGMA`
    tokens, where it is the directive payload after ``#pragma`` (e.g.
    ``dp consldt(block) work(curr)``).
    """

    kind: TokKind
    text: str
    loc: SourceLocation

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def is_ident(self, text: str | None = None) -> bool:
        if self.kind is not TokKind.IDENT:
            return False
        return text is None or self.text == text

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r})@{self.loc}"

"""Semantic analysis for MiniCUDA.

Responsibilities:

* resolve identifiers against lexical scopes (params, locals, file-scope
  ``__device__`` globals, builtin constants);
* infer a :class:`~repro.frontend.ast_nodes.Type` for every expression and
  annotate the node as ``node.ty`` (transform passes and the backend read
  these annotations);
* enforce the launch rules: the callee must be a ``__global__`` kernel,
  argument count must match, launches may only appear inside functions;
* enforce lvalue rules for assignments and ``&``;
* record per-function facts used by the consolidation compiler
  (:class:`FunctionInfo`: launch sites, whether recursion occurs, ...).

The checker is deliberately permissive about numeric conversions (C-style
implicit int/float conversion), because the benchmark codes use them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TypeCheckError
from .ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Break,
    BuiltinVar,
    Call,
    Cast,
    Continue,
    DeclStmt,
    DoWhile,
    EmptyStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    IncDec,
    Index,
    IntLit,
    LaunchExpr,
    Member,
    Module,
    PragmaStmt,
    Return,
    Stmt,
    StringLit,
    Ternary,
    Type,
    UnOp,
    VarDeclarator,
    While,
    BOOL,
    FLOAT,
    INT,
    UINT,
    VOID,
)
from .symbols import BUILTIN_CONSTANTS, BUILTIN_FUNCTIONS, Scope, Symbol


@dataclass
class LaunchSite:
    """One kernel launch found in a function body."""

    launch: LaunchExpr
    enclosing_function: str

    @property
    def callee(self) -> str:
        return self.launch.callee


@dataclass
class FunctionInfo:
    """Facts about one function gathered during checking."""

    fn: FunctionDef
    launches: list[LaunchSite] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    uses_syncthreads: bool = False
    uses_device_sync: bool = False

    @property
    def is_recursive_launcher(self) -> bool:
        return any(site.callee == self.fn.name for site in self.launches)


@dataclass
class ModuleInfo:
    """Result of :func:`check_module`."""

    module: Module
    functions: dict[str, FunctionInfo]
    globals: dict[str, GlobalDecl]

    def info(self, name: str) -> FunctionInfo:
        return self.functions[name]

    def kernel_names(self) -> list[str]:
        return [n for n, fi in self.functions.items() if fi.fn.is_kernel]


class TypeChecker:
    def __init__(self, module: Module, allow_reserved: bool = False):
        self.module = module
        #: compiler-generated modules may declare __dp_* names; user code
        #: must not (the transforms would collide with them)
        self.allow_reserved = allow_reserved
        self.functions: dict[str, FunctionInfo] = {}
        self.globals: dict[str, GlobalDecl] = {}
        self.global_scope = Scope()
        self._current: Optional[FunctionInfo] = None
        self._loop_depth = 0

    # ------------------------------------------------------------- driver

    def check(self) -> ModuleInfo:
        # Two passes: first declare all functions/globals, then check bodies,
        # so forward references (and recursion) resolve.
        for decl in self.module.decls:
            if isinstance(decl, FunctionDef):
                if decl.name in self.functions:
                    raise TypeCheckError(f"redefinition of function {decl.name!r}", decl.loc)
                if decl.name in BUILTIN_FUNCTIONS:
                    raise TypeCheckError(
                        f"function {decl.name!r} shadows a builtin", decl.loc
                    )
                self.functions[decl.name] = FunctionInfo(decl)
            elif isinstance(decl, GlobalDecl):
                if decl.name in self.globals:
                    raise TypeCheckError(f"redefinition of global {decl.name!r}", decl.loc)
                self.globals[decl.name] = decl
                self.global_scope.declare(
                    Symbol(decl.name, decl.type, kind="global"), decl.loc
                )
        for decl in self.module.decls:
            if isinstance(decl, FunctionDef):
                self.check_function(decl)
        return ModuleInfo(self.module, self.functions, self.globals)

    # ---------------------------------------------------------- functions

    def check_function(self, fn: FunctionDef) -> None:
        if fn.is_kernel and not fn.ret_type.is_void:
            raise TypeCheckError(
                f"kernel {fn.name!r} must return void, not {fn.ret_type}", fn.loc
            )
        self._current = self.functions[fn.name]
        scope = self.global_scope.child()
        for param in fn.params:
            self._check_reserved(param.name, param.loc)
            if param.type.is_void and not param.type.is_pointer:
                raise TypeCheckError(f"parameter {param.name!r} has type void", param.loc)
            scope.declare(Symbol(param.name, param.type, kind="param"), param.loc)
        self.check_block(fn.body, scope)
        self._current = None

    # --------------------------------------------------------- statements

    def check_block(self, block: Block, scope: Scope) -> None:
        inner = scope.child()
        for stmt in block.stmts:
            self.check_stmt(stmt, inner)

    def check_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, Block):
            self.check_block(stmt, scope)
        elif isinstance(stmt, DeclStmt):
            for d in stmt.declarators:
                self.check_declarator(d, stmt, scope)
        elif isinstance(stmt, ExprStmt):
            self.infer(stmt.expr, scope)
        elif isinstance(stmt, If):
            self.infer(stmt.cond, scope)
            self.check_stmt(stmt.then, scope.child())
            if stmt.els is not None:
                self.check_stmt(stmt.els, scope.child())
        elif isinstance(stmt, While):
            self.infer(stmt.cond, scope)
            self._loop_depth += 1
            self.check_stmt(stmt.body, scope.child())
            self._loop_depth -= 1
        elif isinstance(stmt, DoWhile):
            self._loop_depth += 1
            self.check_stmt(stmt.body, scope.child())
            self._loop_depth -= 1
            self.infer(stmt.cond, scope)
        elif isinstance(stmt, For):
            inner = scope.child()
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self.infer(stmt.cond, inner)
            if stmt.step is not None:
                self.infer(stmt.step, inner)
            self._loop_depth += 1
            self.check_stmt(stmt.body, inner.child())
            self._loop_depth -= 1
        elif isinstance(stmt, Return):
            fn = self._current.fn
            if stmt.value is not None:
                vt = self.infer(stmt.value, scope)
                if fn.ret_type.is_void:
                    raise TypeCheckError(
                        f"void function {fn.name!r} returns a value", stmt.loc
                    )
                self._require_convertible(vt, fn.ret_type, stmt.loc)
            elif not fn.ret_type.is_void:
                raise TypeCheckError(
                    f"non-void function {fn.name!r} returns without a value", stmt.loc
                )
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                raise TypeCheckError("break/continue outside of a loop", stmt.loc)
        elif isinstance(stmt, PragmaStmt):
            self.check_stmt(stmt.stmt, scope)
        elif isinstance(stmt, EmptyStmt):
            pass
        else:  # pragma: no cover - defensive
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def check_declarator(self, d: VarDeclarator, stmt: DeclStmt, scope: Scope) -> None:
        self._check_reserved(d.name, d.loc)
        if d.type.is_void and not d.type.is_pointer:
            raise TypeCheckError(f"variable {d.name!r} has type void", d.loc)
        kind = "var"
        declared = d.type
        if d.array_size is not None:
            self.infer(d.array_size, scope)
            kind = "shared-array" if stmt.shared else "local-array"
            declared = d.type.pointer_to()  # arrays decay to pointers
        elif stmt.shared:
            kind = "shared-array"  # scalar shared variable
        if d.init is not None:
            it = self.infer(d.init, scope)
            self._require_convertible(it, declared, d.loc)
        scope.declare(Symbol(d.name, declared, kind=kind, array_size=d.array_size), d.loc)

    # -------------------------------------------------------- expressions

    def infer(self, e: Expr, scope: Scope) -> Type:
        ty = self._infer(e, scope)
        e.ty = ty  # annotate for transforms/backend
        return ty

    def _infer(self, e: Expr, scope: Scope) -> Type:
        if isinstance(e, IntLit):
            return INT
        if isinstance(e, FloatLit):
            return FLOAT
        if isinstance(e, BoolLit):
            return BOOL
        if isinstance(e, StringLit):
            return Type("char", 1)
        if isinstance(e, BuiltinVar):
            return UINT
        if isinstance(e, Ident):
            sym = scope.lookup(e.name)
            if sym is not None:
                return sym.type
            if e.name in BUILTIN_CONSTANTS:
                return BUILTIN_CONSTANTS[e.name][0]
            raise TypeCheckError(f"use of undeclared identifier {e.name!r}", e.loc)
        if isinstance(e, UnOp):
            return self._infer_unop(e, scope)
        if isinstance(e, IncDec):
            t = self.infer(e.operand, scope)
            self._require_lvalue(e.operand, e.loc)
            if not (t.is_arith or t.is_pointer):
                raise TypeCheckError(f"cannot {e.op} a value of type {t}", e.loc)
            return t
        if isinstance(e, BinOp):
            return self._infer_binop(e, scope)
        if isinstance(e, Assign):
            tt = self.infer(e.target, scope)
            self._require_lvalue(e.target, e.loc)
            vt = self.infer(e.value, scope)
            if e.op == "=":
                self._require_convertible(vt, tt, e.loc)
            else:
                if not ((tt.is_arith or tt.is_pointer) and vt.is_arith):
                    raise TypeCheckError(
                        f"invalid compound assignment {tt} {e.op} {vt}", e.loc
                    )
            return tt
        if isinstance(e, Ternary):
            self.infer(e.cond, scope)
            t1 = self.infer(e.then, scope)
            t2 = self.infer(e.els, scope)
            return self._merge_arith(t1, t2, e.loc)
        if isinstance(e, Call):
            return self._infer_call(e, scope)
        if isinstance(e, LaunchExpr):
            return self._infer_launch(e, scope)
        if isinstance(e, Index):
            bt = self.infer(e.base, scope)
            it = self.infer(e.index, scope)
            if not bt.is_pointer:
                raise TypeCheckError(f"cannot index non-pointer type {bt}", e.loc)
            if not it.is_integer:
                raise TypeCheckError(f"array index must be integer, got {it}", e.loc)
            return bt.pointee()
        if isinstance(e, Member):
            raise TypeCheckError(
                f"member access .{e.name} is not supported (MiniCUDA has no structs)",
                e.loc,
            )
        if isinstance(e, Cast):
            self.infer(e.expr, scope)
            return e.type
        raise TypeCheckError(f"unknown expression {type(e).__name__}", e.loc)

    def _infer_unop(self, e: UnOp, scope: Scope) -> Type:
        t = self.infer(e.operand, scope)
        if e.op in ("-", "+"):
            if not t.is_arith:
                raise TypeCheckError(f"unary {e.op} on non-arithmetic type {t}", e.loc)
            return t
        if e.op == "!":
            return BOOL
        if e.op == "~":
            if not t.is_integer:
                raise TypeCheckError(f"~ on non-integer type {t}", e.loc)
            return t
        if e.op == "*":
            if not t.is_pointer:
                raise TypeCheckError(f"cannot dereference non-pointer type {t}", e.loc)
            return t.pointee()
        if e.op == "&":
            self._require_lvalue(e.operand, e.loc)
            if not isinstance(e.operand, (Index, UnOp)):
                # &scalar_local is rejected: the backend has no way to alias
                # Python locals. &arr[i] (and &*p) are the supported forms,
                # which is all the benchmark codes (atomics) need.
                raise TypeCheckError(
                    "address-of is only supported on array elements (&a[i])", e.loc
                )
            return t.pointer_to()
        raise TypeCheckError(f"unknown unary operator {e.op!r}", e.loc)

    def _infer_binop(self, e: BinOp, scope: Scope) -> Type:
        lt = self.infer(e.left, scope)
        rt = self.infer(e.right, scope)
        op = e.op
        if op == ",":
            return rt
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return BOOL
        if op in ("&&", "||"):
            return BOOL
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (lt.is_integer and rt.is_integer) and not (lt.is_pointer):
                raise TypeCheckError(f"integer operator {op} on {lt}, {rt}", e.loc)
            return lt
        if op in ("+", "-"):
            if lt.is_pointer and rt.is_integer:
                return lt
            if lt.is_integer and rt.is_pointer and op == "+":
                return rt
            if lt.is_pointer and rt.is_pointer and op == "-":
                return INT
        if not (lt.is_arith and rt.is_arith):
            raise TypeCheckError(f"operator {op} on {lt}, {rt}", e.loc)
        return self._merge_arith(lt, rt, e.loc)

    def _infer_call(self, e: Call, scope: Scope) -> Type:
        for a in e.args:
            self.infer(a, scope)
        builtin = BUILTIN_FUNCTIONS.get(e.callee)
        if builtin is not None:
            if e.callee == "__syncthreads":
                self._current.uses_syncthreads = True
            if e.callee == "cudaDeviceSynchronize":
                self._current.uses_device_sync = True
            if builtin.params is not None and len(e.args) != len(builtin.params):
                raise TypeCheckError(
                    f"{e.callee} expects {len(builtin.params)} arguments, "
                    f"got {len(e.args)}",
                    e.loc,
                )
            if builtin.params is not None:
                for i, (p, a) in enumerate(zip(builtin.params, e.args)):
                    at = a.ty
                    if p == "ptr" and not at.is_pointer:
                        raise TypeCheckError(
                            f"argument {i + 1} of {e.callee} must be a pointer, got {at}",
                            e.loc,
                        )
            if builtin.result_follows_pointee:
                return e.args[0].ty.pointee()
            if builtin.ret is None:  # min/max style: follows first arg
                return e.args[0].ty
            return builtin.ret
        info = self.functions.get(e.callee)
        if info is None:
            raise TypeCheckError(f"call to undeclared function {e.callee!r}", e.loc)
        fn = info.fn
        if fn.is_kernel:
            raise TypeCheckError(
                f"kernel {e.callee!r} must be launched with <<<...>>>, not called",
                e.loc,
            )
        if len(e.args) != len(fn.params):
            raise TypeCheckError(
                f"{e.callee} expects {len(fn.params)} arguments, got {len(e.args)}",
                e.loc,
            )
        for param, arg in zip(fn.params, e.args):
            self._require_convertible(arg.ty, param.type, e.loc)
        self._current.calls.add(e.callee)
        return fn.ret_type

    def _infer_launch(self, e: LaunchExpr, scope: Scope) -> Type:
        if self._current is None:  # pragma: no cover - parser prevents this
            raise TypeCheckError("kernel launch outside of a function", e.loc)
        gt = self.infer(e.grid, scope)
        bt = self.infer(e.block, scope)
        for t, what in ((gt, "grid"), (bt, "block")):
            if not t.is_integer:
                raise TypeCheckError(f"launch {what} dimension must be integer", e.loc)
        if e.shared is not None:
            self.infer(e.shared, scope)
        if e.stream is not None:
            self.infer(e.stream, scope)
        for a in e.args:
            self.infer(a, scope)
        info = self.functions.get(e.callee)
        if info is None:
            raise TypeCheckError(f"launch of undeclared kernel {e.callee!r}", e.loc)
        if not info.fn.is_kernel:
            raise TypeCheckError(f"{e.callee!r} is not a __global__ kernel", e.loc)
        if len(e.args) != len(info.fn.params):
            raise TypeCheckError(
                f"kernel {e.callee} expects {len(info.fn.params)} arguments, "
                f"got {len(e.args)}",
                e.loc,
            )
        for param, arg in zip(info.fn.params, e.args):
            self._require_convertible(arg.ty, param.type, e.loc)
        self._current.launches.append(LaunchSite(e, self._current.fn.name))
        return VOID

    # ------------------------------------------------------------ helpers

    def _require_lvalue(self, e: Expr, loc) -> None:
        if isinstance(e, Ident):
            return
        if isinstance(e, Index):
            return
        if isinstance(e, UnOp) and e.op == "*":
            return
        raise TypeCheckError("expression is not assignable", loc)

    def _require_convertible(self, src: Type, dst: Type, loc) -> None:
        if src == dst:
            return
        if src.is_arith and dst.is_arith:
            return
        if src.is_pointer and dst.is_pointer:
            # permit void*/T* interconversion and same-depth pointer casts
            if src.base == "void" or dst.base == "void" or src.base == dst.base:
                return
        if src.is_integer and dst.is_pointer:
            return  # NULL-style literals
        raise TypeCheckError(f"cannot convert {src} to {dst}", loc)

    def _merge_arith(self, t1: Type, t2: Type, loc) -> Type:
        if t1 == t2:
            return t1
        if t1.is_pointer or t2.is_pointer:
            if t1.is_pointer and t2.is_pointer:
                return t1
            return t1 if t1.is_pointer else t2
        rank = {"bool": 0, "char": 1, "int": 2, "uint": 3, "size_t": 4, "long": 5,
                "float": 6, "double": 7}
        return t1 if rank.get(t1.base, 0) >= rank.get(t2.base, 0) else t2


    def _check_reserved(self, name: str, loc) -> None:
        if not self.allow_reserved and name.startswith("__dp_"):
            raise TypeCheckError(
                f"identifier {name!r} uses the reserved '__dp_' prefix "
                "(the consolidation compiler owns these names)", loc,
            )


def check_module(module: Module, allow_reserved: bool = False) -> ModuleInfo:
    """Run semantic analysis over a parsed module, annotating expression
    nodes with ``.ty`` and returning per-function facts.

    ``allow_reserved`` permits ``__dp_*`` identifiers; only the
    consolidation compiler (whose generated code declares them) sets it.
    """
    return TypeChecker(module, allow_reserved=allow_reserved).check()

"""Recursive-descent parser for MiniCUDA.

Grammar (informally)::

    module      := (function | global-decl)*
    function    := qualifiers type ident '(' params ')' compound
    global-decl := '__device__' type declarators ';'
    stmt        := decl | if | while | do-while | for | return | break
                 | continue | compound | ';' | pragma stmt | expr ';'
    expr        := assignment (C precedence ladder, right-assoc assigns,
                   ternary, ++/--, casts, calls, launches, indexing)

Kernel launches parse as :class:`LaunchExpr` from the ``<<<`` punctuator.
``#pragma dp`` lines attach to the following statement as
:class:`PragmaStmt`; other pragmas are ignored with a warning list.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from .ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Break,
    BuiltinVar,
    BUILTIN_VARS,
    Call,
    Cast,
    Continue,
    DeclStmt,
    DoWhile,
    EmptyStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    IncDec,
    Index,
    IntLit,
    LaunchExpr,
    Member,
    Module,
    Param,
    PragmaStmt,
    Return,
    Stmt,
    StringLit,
    Ternary,
    Type,
    UnOp,
    VarDeclarator,
    While,
)
from .lexer import Lexer
from .pragma import parse_dp_pragma
from .source import SourceFile
from .tokens import TokKind, Token

_FUNCTION_QUALIFIERS = ("__global__", "__device__", "__host__")

#: Binary operator precedence (C). Higher binds tighter.
_BINOP_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

_TYPE_KEYWORDS = ("void", "int", "unsigned", "long", "float", "double", "bool", "char", "size_t")


class Parser:
    def __init__(self, text: str, filename: str = "<string>"):
        self.src = SourceFile(text, filename)
        self.tokens = Lexer(self.src).tokens()
        self.pos = 0
        #: pragmas that were not `dp` directives, kept for diagnostics
        self.ignored_pragmas: list[Token] = []

    # ---------------------------------------------------------------- utils

    def peek(self, k: int = 0) -> Token:
        i = min(self.pos + k, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def at_punct(self, text: str) -> bool:
        return self.peek().is_punct(text)

    def at_keyword(self, text: str) -> bool:
        return self.peek().is_keyword(text)

    def accept_punct(self, text: str) -> Optional[Token]:
        if self.at_punct(text):
            return self.advance()
        return None

    def accept_keyword(self, text: str) -> Optional[Token]:
        if self.at_keyword(text):
            return self.advance()
        return None

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, got {tok.text!r}", tok.loc)
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(text):
            raise ParseError(f"expected {text!r}, got {tok.text!r}", tok.loc)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, got {tok.text!r}", tok.loc)
        return self.advance()

    # ---------------------------------------------------------------- types

    def at_type(self, k: int = 0) -> bool:
        tok = self.peek(k)
        return tok.kind is TokKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    def parse_type(self) -> Type:
        tok = self.peek()
        if not self.at_type():
            raise ParseError(f"expected type, got {tok.text!r}", tok.loc)
        base = self.advance().text
        if base == "unsigned":
            # `unsigned` / `unsigned int` / `unsigned long`
            if self.at_keyword("int") or self.at_keyword("long") or self.at_keyword("char"):
                self.advance()
            base = "uint"
        elif base == "long":
            # `long` / `long long` / `long int`
            if self.at_keyword("long") or self.at_keyword("int"):
                self.advance()
        ptr = 0
        while True:
            if self.accept_punct("*"):
                ptr += 1
            elif self.at_keyword("const") or self.at_keyword("__restrict__"):
                self.advance()
            else:
                break
        return Type(base, ptr)

    # ---------------------------------------------------------------- module

    def parse_module(self) -> Module:
        decls = []
        start = self.peek().loc
        while self.peek().kind is not TokKind.EOF:
            tok = self.peek()
            if tok.kind is TokKind.PRAGMA:
                # file-scope pragma: must not be a dp directive (those attach
                # to statements); record and skip.
                self.ignored_pragmas.append(tok)
                self.advance()
                continue
            decls.append(self.parse_top_level())
        return Module(decls, loc=start)

    def parse_top_level(self):
        loc = self.peek().loc
        qualifiers = set()
        while self.peek().kind is TokKind.KEYWORD and self.peek().text in (
            _FUNCTION_QUALIFIERS + ("extern", "static", "const")
        ):
            word = self.advance().text
            if word in _FUNCTION_QUALIFIERS:
                qualifiers.add(word)
        typ = self.parse_type()
        name = self.expect_ident().text
        if self.at_punct("("):
            return self.parse_function_rest(name, typ, frozenset(qualifiers), loc)
        # file-scope variable
        init = None
        if self.accept_punct("="):
            init = self.parse_assignment()
        self.expect_punct(";")
        return GlobalDecl(name, typ, init, device="__device__" in qualifiers, loc=loc)

    def parse_function_rest(self, name: str, ret_type: Type, qualifiers, loc) -> FunctionDef:
        self.expect_punct("(")
        params: list[Param] = []
        if not self.at_punct(")"):
            while True:
                ploc = self.peek().loc
                const = bool(self.accept_keyword("const"))
                ptype = self.parse_type()
                restrict = False
                pname = self.expect_ident().text
                params.append(Param(pname, ptype, restrict=restrict, const=const, loc=ploc))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        body = self.parse_compound()
        return FunctionDef(name, ret_type, params, body, qualifiers=qualifiers, loc=loc)

    # ---------------------------------------------------------------- stmts

    def parse_compound(self) -> Block:
        open_tok = self.expect_punct("{")
        stmts: list[Stmt] = []
        while not self.at_punct("}"):
            if self.peek().kind is TokKind.EOF:
                raise ParseError("unexpected end of file in block", self.peek().loc)
            stmts.append(self.parse_statement())
        self.expect_punct("}")
        return Block(stmts, loc=open_tok.loc)

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.kind is TokKind.PRAGMA:
            self.advance()
            directive = parse_dp_pragma(tok.text, tok.loc)
            if directive is None:
                self.ignored_pragmas.append(tok)
                return self.parse_statement()
            stmt = self.parse_statement()
            return PragmaStmt(directive, stmt, loc=tok.loc)
        if tok.is_punct("{"):
            return self.parse_compound()
        if tok.is_punct(";"):
            self.advance()
            return EmptyStmt(loc=tok.loc)
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("do"):
            return self.parse_do_while()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            self.advance()
            value = None if self.at_punct(";") else self.parse_expr()
            self.expect_punct(";")
            return Return(value, loc=tok.loc)
        if tok.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return Break(loc=tok.loc)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return Continue(loc=tok.loc)
        if tok.is_keyword("__shared__") or tok.is_keyword("const") or self.at_type():
            return self.parse_decl_stmt()
        expr = self.parse_expr()
        self.expect_punct(";")
        return ExprStmt(expr, loc=tok.loc)

    def parse_decl_stmt(self) -> DeclStmt:
        loc = self.peek().loc
        shared = bool(self.accept_keyword("__shared__"))
        const = bool(self.accept_keyword("const"))
        if not const:
            const = bool(self.accept_keyword("const"))
        base = self.parse_type()
        declarators: list[VarDeclarator] = []
        while True:
            dloc = self.peek().loc
            extra_ptr = 0
            while self.accept_punct("*"):
                extra_ptr += 1
            name = self.expect_ident().text
            dtype = Type(base.base, base.ptr + extra_ptr)
            array_size = None
            if self.accept_punct("["):
                array_size = self.parse_expr()
                self.expect_punct("]")
            init = None
            if self.accept_punct("="):
                init = self.parse_assignment()
            declarators.append(VarDeclarator(name, dtype, array_size, init, loc=dloc))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return DeclStmt(declarators, shared=shared, const=const, loc=loc)

    def parse_if(self) -> If:
        tok = self.expect_keyword("if")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_statement()
        els = None
        if self.accept_keyword("else"):
            els = self.parse_statement()
        return If(cond, then, els, loc=tok.loc)

    def parse_while(self) -> While:
        tok = self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return While(cond, body, loc=tok.loc)

    def parse_do_while(self) -> DoWhile:
        tok = self.expect_keyword("do")
        body = self.parse_statement()
        self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        self.expect_punct(";")
        return DoWhile(body, cond, loc=tok.loc)

    def parse_for(self) -> For:
        tok = self.expect_keyword("for")
        self.expect_punct("(")
        init: Optional[Stmt] = None
        if self.at_punct(";"):
            self.advance()
        elif self.at_type() or self.at_keyword("const"):
            init = self.parse_decl_stmt()
        else:
            expr = self.parse_expr()
            self.expect_punct(";")
            init = ExprStmt(expr, loc=tok.loc)
        cond = None if self.at_punct(";") else self.parse_expr()
        self.expect_punct(";")
        step = None if self.at_punct(")") else self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return For(init, cond, step, body, loc=tok.loc)

    # ---------------------------------------------------------------- exprs

    def parse_expr(self) -> Expr:
        expr = self.parse_assignment()
        while self.at_punct(","):
            # comma operator: keep as a right-nested BinOp
            loc = self.advance().loc
            right = self.parse_assignment()
            expr = BinOp(",", expr, right, loc=loc)
        return expr

    def parse_assignment(self) -> Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind is TokKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return Assign(tok.text, left, value, loc=tok.loc)
        return left

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(1)
        if self.at_punct("?"):
            loc = self.advance().loc
            then = self.parse_assignment()
            self.expect_punct(":")
            els = self.parse_assignment()
            return Ternary(cond, then, els, loc=loc)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind is not TokKind.PUNCT:
                return left
            prec = _BINOP_PREC.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = BinOp(tok.text, left, right, loc=tok.loc)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokKind.PUNCT and tok.text in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return UnOp(tok.text, operand, loc=tok.loc)
        if tok.is_punct("++") or tok.is_punct("--"):
            self.advance()
            operand = self.parse_unary()
            return IncDec(tok.text, operand, prefix=True, loc=tok.loc)
        if tok.is_punct("(") and self.at_type(1):
            # cast: `(int)x`, `(float*)p`
            self.advance()
            typ = self.parse_type()
            self.expect_punct(")")
            operand = self.parse_unary()
            return Cast(typ, operand, loc=tok.loc)
        if tok.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            typ = self.parse_type()
            self.expect_punct(")")
            sizes = {"char": 1, "bool": 1, "int": 4, "uint": 4, "float": 4,
                     "long": 8, "double": 8, "size_t": 8}
            nbytes = 8 if typ.is_pointer else sizes.get(typ.base, 4)
            return IntLit(nbytes, loc=tok.loc)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.is_punct("["):
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                expr = Index(expr, index, loc=tok.loc)
            elif tok.is_punct("."):
                self.advance()
                name = self.expect_ident().text
                expr = Member(expr, name, loc=tok.loc)
            elif tok.is_punct("->"):
                self.advance()
                name = self.expect_ident().text
                expr = Member(UnOp("*", expr, loc=tok.loc), name, loc=tok.loc)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self.advance()
                expr = IncDec(tok.text, expr, prefix=False, loc=tok.loc)
            else:
                return expr

    def parse_call_args(self) -> list[Expr]:
        self.expect_punct("(")
        args: list[Expr] = []
        if not self.at_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return args

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokKind.INT:
            self.advance()
            text = tok.text.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return IntLit(value, loc=tok.loc)
        if tok.kind is TokKind.FLOAT:
            self.advance()
            return FloatLit(float(tok.text.rstrip("fFlL")), loc=tok.loc)
        if tok.kind is TokKind.STRING:
            self.advance()
            return StringLit(tok.text, loc=tok.loc)
        if tok.kind is TokKind.CHAR:
            self.advance()
            return IntLit(ord(tok.text) if tok.text else 0, loc=tok.loc)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self.advance()
            return BoolLit(tok.text == "true", loc=tok.loc)
        if tok.is_punct("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if tok.kind is TokKind.IDENT:
            self.advance()
            name = tok.text
            if name in BUILTIN_VARS and self.at_punct("."):
                self.advance()
                dim = self.expect_ident().text
                if dim not in ("x", "y", "z"):
                    raise ParseError(f"{name}.{dim}: expected .x/.y/.z", tok.loc)
                return BuiltinVar(name, dim, loc=tok.loc)
            if self.at_punct("<<<"):
                return self.parse_launch(name, tok)
            if self.at_punct("("):
                args = self.parse_call_args()
                return Call(name, args, loc=tok.loc)
            return Ident(name, loc=tok.loc)
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)

    def parse_launch(self, callee: str, tok: Token) -> LaunchExpr:
        self.expect_punct("<<<")
        grid = self.parse_assignment()
        self.expect_punct(",")
        block = self.parse_assignment()
        shared = stream = None
        if self.accept_punct(","):
            shared = self.parse_assignment()
            if self.accept_punct(","):
                stream = self.parse_assignment()
        self.expect_punct(">>>")
        args = self.parse_call_args()
        return LaunchExpr(callee, grid, block, args, shared, stream, loc=tok.loc)


def parse(text: str, filename: str = "<string>") -> Module:
    """Parse MiniCUDA source text into a :class:`Module`."""
    parser = Parser(text, filename)
    module = parser.parse_module()
    return module

"""Unparser: MiniCUDA AST back to CUDA-C source text.

This is the analogue of ROSE's backend in the paper's toolchain — the
consolidation transforms produce a new AST which is unparsed to CUDA source
for inspection/golden tests. The output re-parses to a structurally equal
AST (tested property-style in ``tests/test_unparser.py``).
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Break,
    BuiltinVar,
    Call,
    Cast,
    Continue,
    DeclStmt,
    DoWhile,
    EmptyStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    IncDec,
    Index,
    IntLit,
    LaunchExpr,
    Member,
    Module,
    Node,
    PragmaStmt,
    Return,
    Stmt,
    StringLit,
    Ternary,
    UnOp,
    While,
)

#: Precedence levels used to decide where parentheses are required.
_PREC = {
    ",": 0,
    "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1, "%=": 1,
    "&=": 1, "|=": 1, "^=": 1, "<<=": 1, ">>=": 1,
    "?:": 2,
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "==": 8, "!=": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
    "unary": 13,
    "postfix": 14,
    "primary": 15,
}


class Unparser:
    def __init__(self, indent: str = "    "):
        self.indent_unit = indent

    # ------------------------------------------------------------- modules

    def unparse(self, node: Node) -> str:
        if isinstance(node, Module):
            return self.module(node)
        if isinstance(node, FunctionDef):
            return self.function(node)
        if isinstance(node, Stmt):
            return "\n".join(self.stmt(node, 0))
        if isinstance(node, Expr):
            return self.expr(node)
        raise TypeError(f"cannot unparse {type(node).__name__}")

    def module(self, mod: Module) -> str:
        parts = []
        for decl in mod.decls:
            if isinstance(decl, FunctionDef):
                parts.append(self.function(decl))
            elif isinstance(decl, GlobalDecl):
                qual = "__device__ " if decl.device else ""
                init = f" = {self.expr(decl.init)}" if decl.init is not None else ""
                parts.append(f"{qual}{decl.type} {decl.name}{init};")
        return "\n\n".join(parts) + "\n"

    def function(self, fn: FunctionDef) -> str:
        quals = " ".join(sorted(fn.qualifiers)) + (" " if fn.qualifiers else "")
        params = ", ".join(
            ("const " if p.const else "") + f"{p.type} {p.name}" for p in fn.params
        )
        header = f"{quals}{fn.ret_type} {fn.name}({params})"
        body = "\n".join(self.stmt(fn.body, 0))
        return f"{header} {body}"

    # ---------------------------------------------------------------- stmts

    def stmt(self, s: Stmt, level: int) -> list[str]:
        ind = self.indent_unit * level
        if isinstance(s, Block):
            lines = [f"{ind}{{" if level else "{"]
            for inner in s.stmts:
                lines.extend(self.stmt(inner, level + 1))
            lines.append(f"{ind}}}")
            return lines
        if isinstance(s, DeclStmt):
            quals = ("__shared__ " if s.shared else "") + ("const " if s.const else "")
            base = s.declarators[0].type
            parts = []
            for i, d in enumerate(s.declarators):
                text = d.name
                if d.array_size is not None:
                    text += f"[{self.expr(d.array_size)}]"
                if d.init is not None:
                    text += f" = {self.expr(d.init)}"
                if i == 0:
                    parts.append(f"{base} {text}")
                else:
                    # later declarators carry any extra pointer depth explicitly
                    parts.append("*" * max(0, d.type.ptr - base.ptr) + text)
            return [f"{ind}{quals}{', '.join(parts)};"]
        if isinstance(s, ExprStmt):
            return [f"{ind}{self.expr(s.expr)};"]
        if isinstance(s, If):
            lines = [f"{ind}if ({self.expr(s.cond)})"]
            lines = self._attach_body(lines, s.then, level)
            if s.els is not None:
                lines.append(f"{ind}else")
                lines = self._attach_body(lines, s.els, level)
            return lines
        if isinstance(s, While):
            lines = [f"{ind}while ({self.expr(s.cond)})"]
            return self._attach_body(lines, s.body, level)
        if isinstance(s, DoWhile):
            lines = [f"{ind}do"]
            lines = self._attach_body(lines, s.body, level)
            lines[-1] += f" while ({self.expr(s.cond)});"
            return lines
        if isinstance(s, For):
            init = ""
            if s.init is not None:
                init_lines = self.stmt(s.init, 0)
                init = init_lines[0].rstrip(";")
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self.expr(s.step) if s.step is not None else ""
            lines = [f"{ind}for ({init}; {cond}; {step})"]
            return self._attach_body(lines, s.body, level)
        if isinstance(s, Return):
            if s.value is None:
                return [f"{ind}return;"]
            return [f"{ind}return {self.expr(s.value)};"]
        if isinstance(s, Break):
            return [f"{ind}break;"]
        if isinstance(s, Continue):
            return [f"{ind}continue;"]
        if isinstance(s, EmptyStmt):
            return [f"{ind};"]
        if isinstance(s, PragmaStmt):
            lines = [f"{ind}#pragma {s.directive.describe()}"]
            lines.extend(self.stmt(s.stmt, level))
            return lines
        raise TypeError(f"cannot unparse statement {type(s).__name__}")

    def _attach_body(self, lines: list[str], body: Stmt, level: int) -> list[str]:
        if isinstance(body, Block):
            block_lines = self.stmt(body, level)
            lines[-1] += " " + block_lines[0].lstrip()
            lines.extend(block_lines[1:])
        else:
            lines.extend(self.stmt(body, level + 1))
        return lines

    # ---------------------------------------------------------------- exprs

    def expr(self, e: Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_prec(e)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, e: Expr) -> tuple[str, int]:
        if isinstance(e, IntLit):
            return str(e.value), _PREC["primary"]
        if isinstance(e, FloatLit):
            text = repr(e.value)
            if "." not in text and "e" not in text and "inf" not in text:
                text += ".0"
            return text + "f", _PREC["primary"]
        if isinstance(e, BoolLit):
            return ("true" if e.value else "false"), _PREC["primary"]
        if isinstance(e, StringLit):
            escaped = e.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            return f'"{escaped}"', _PREC["primary"]
        if isinstance(e, Ident):
            return e.name, _PREC["primary"]
        if isinstance(e, BuiltinVar):
            return f"{e.name}.{e.dim}", _PREC["primary"]
        if isinstance(e, UnOp):
            operand = self.expr(e.operand, _PREC["unary"])
            return f"{e.op}{operand}", _PREC["unary"]
        if isinstance(e, IncDec):
            operand = self.expr(e.operand, _PREC["postfix"])
            text = f"{e.op}{operand}" if e.prefix else f"{operand}{e.op}"
            return text, _PREC["unary"] if e.prefix else _PREC["postfix"]
        if isinstance(e, BinOp):
            prec = _PREC[e.op]
            left = self.expr(e.left, prec)
            right = self.expr(e.right, prec + 1)
            if e.op == ",":
                return f"{left}, {right}", prec
            return f"{left} {e.op} {right}", prec
        if isinstance(e, Assign):
            prec = _PREC[e.op]
            target = self.expr(e.target, prec + 1)
            value = self.expr(e.value, prec)
            return f"{target} {e.op} {value}", prec
        if isinstance(e, Ternary):
            prec = _PREC["?:"]
            cond = self.expr(e.cond, prec + 1)
            then = self.expr(e.then, prec)
            els = self.expr(e.els, prec)
            return f"{cond} ? {then} : {els}", prec
        if isinstance(e, Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.callee}({args})", _PREC["postfix"]
        if isinstance(e, LaunchExpr):
            cfg = [self.expr(e.grid), self.expr(e.block)]
            if e.shared is not None:
                cfg.append(self.expr(e.shared))
                if e.stream is not None:
                    cfg.append(self.expr(e.stream))
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.callee}<<<{', '.join(cfg)}>>>({args})", _PREC["postfix"]
        if isinstance(e, Index):
            base = self.expr(e.base, _PREC["postfix"])
            return f"{base}[{self.expr(e.index)}]", _PREC["postfix"]
        if isinstance(e, Member):
            base = self.expr(e.base, _PREC["postfix"])
            return f"{base}.{e.name}", _PREC["postfix"]
        if isinstance(e, Cast):
            operand = self.expr(e.expr, _PREC["unary"])
            return f"({e.type}){operand}", _PREC["unary"]
        raise TypeError(f"cannot unparse expression {type(e).__name__}")


def unparse(node: Node) -> str:
    """Render an AST node (module, function, statement or expression) as
    CUDA-C source text."""
    return Unparser().unparse(node)

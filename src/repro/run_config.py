"""The unified run configuration — one value for every run axis.

The repo grew one axis per PR (variant, then strategy, then threshold,
then workload, then backend, now oracle), each threaded as its own
keyword through ``App.run``, :class:`~repro.experiments.plan.RunSpec`,
the experiment runner, the service wire format, and the CLI.
:class:`RunConfig` collapses them into one frozen, canonicalizing
value::

    cfg = RunConfig(variant="consolidated", strategy="warp", threshold=16)
    app.run(cfg, dataset=ds)                      # App entry point
    runner.run_config("sssp", cfg)                # cached runner entry
    RunSpec.from_config("sssp", cfg)              # plan/service entry

Canonicalization happens at construction, so two configs describing the
same run compare (and hash) equal: redundant (variant, strategy)
spellings collapse (``('consolidated', 'warp')`` == ``('warp-level',
None)``), the default backend and oracle fold onto ``None``, and a live
:class:`~repro.sim.occupancy.LaunchConfig` folds to its hashable triple.
The legacy per-axis keywords on ``App.run`` / ``ExperimentRunner.run``
remain as compatibility shims and lower onto the same code paths, so
every pre-existing cache key is preserved byte-for-byte (the
frozen-payload regression test in ``tests/test_run_config.py`` holds the
key function to it).

Workload references are deliberately *not* folded here: collapsing an
app's default workload onto ``None`` needs the app, which a RunConfig
does not name — the runner and ``App.run`` apply
:func:`repro.workloads.canonical_for_app` exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from .apps.common import BASIC, canonicalize_variant


@dataclass(frozen=True)
class RunConfig:
    """Every axis of one application run, as canonical hashable data.

    ``config`` is the ``(mode, blocks, threads)`` launch-config triple
    (a live :class:`~repro.sim.occupancy.LaunchConfig` is accepted and
    folded); ``threshold=None`` means the app default, ``workload=None``
    the app's default dataset, ``backend``/``oracle`` ``None`` the
    default simulator on the default engine.
    """

    variant: str = BASIC
    strategy: Optional[str] = None
    threshold: Optional[int] = None
    workload: Optional[str] = None
    backend: Optional[str] = None
    oracle: Optional[str] = None
    allocator: str = "custom"
    config: Optional[tuple] = None
    #: profiling hook, NOT a run axis: a path to write a Chrome trace
    #: of this run to (``repro.telemetry``). ``compare=False`` keeps it
    #: out of equality/hash, and :meth:`axes` skips it, so two configs
    #: differing only in ``trace`` share one cache entry and telemetry
    #: can never perturb a cache key.
    trace: Optional[str] = field(default=None, compare=False)
    #: deep-profiling hook, same contract as ``trace``: a path to write
    #: the per-kernel attribution profile of this run to as JSON
    #: (:mod:`repro.perf`). Structurally excluded from identity, so a
    #: profiled run shares its cache entry with the plain run and its
    #: ``RunMetrics`` are regression-tested bitwise identical.
    profile: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        variant, strategy = canonicalize_variant(self.variant, self.strategy)
        object.__setattr__(self, "variant", variant)
        object.__setattr__(self, "strategy", strategy)
        object.__setattr__(self, "backend",
                           _canonical_backend(self.backend))
        object.__setattr__(self, "oracle", _canonical_oracle(self.oracle))
        config = self.config
        if config is not None and not isinstance(config, tuple):
            from .experiments.plan import RunSpec

            config = RunSpec.config_key(config)
        object.__setattr__(self, "config", config)
        if self.threshold is not None:
            object.__setattr__(self, "threshold", int(self.threshold))
        if self.trace is not None:
            import os

            object.__setattr__(self, "trace", os.fspath(self.trace))
        if self.profile is not None:
            import os

            object.__setattr__(self, "profile", os.fspath(self.profile))

    def describe(self) -> str:
        """Compact one-line spelling (CLI/report output)."""
        parts = [self.variant]
        for name in ("strategy", "threshold", "workload", "backend",
                     "oracle"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.allocator != "custom":
            parts.append(f"allocator={self.allocator}")
        if self.config is not None:
            parts.append(f"config={self.config}")
        return " ".join(parts)

    def axes(self) -> dict:
        """The axes as a plain dict (wire formats, logging).

        Only identity axes (``compare=True`` fields) appear: ``trace``
        and ``profile`` are observability hooks, not part of what the
        run *is*.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.compare}


def _canonical_backend(backend: Optional[str]) -> Optional[str]:
    """Validate and default-fold a backend name (must execute)."""
    if backend is None:
        return None
    from .backends import DEFAULT_BACKEND, get_backend

    resolved = get_backend(backend)
    if not resolved.executes:
        raise ValueError(
            f"backend {resolved.name!r} does not execute programs; "
            "use `repro compile --backend` for emit-only backends")
    return None if resolved.name == DEFAULT_BACKEND else resolved.name


def _canonical_oracle(oracle: Optional[str]) -> Optional[str]:
    """Validate and default-fold an oracle name (must be exact)."""
    if oracle is None:
        return None
    from .oracle import DEFAULT_ORACLE, get_oracle

    resolved = get_oracle(oracle)
    if not resolved.exact:
        raise ValueError(
            f"oracle {resolved.name!r} is a learned approximation and "
            "cannot execute runs; use it as a tuning prefilter "
            "(`repro tune --oracle surrogate`)")
    return None if resolved.name == DEFAULT_ORACLE else resolved.name

"""Parent-kernel transformation (§IV.C, second phase).

The five steps the paper lists:

1. *buffer allocation* — implicit in our runtime: the scope-keyed
   ``__dp_buf_acquire`` intrinsic allocates on first use, so the generated
   code simply names the buffer wherever it needs it;
2. *prework insertion* — prework is kept verbatim;
3. *replacement of the child kernel launch with buffer insertions* —
   the annotated launch statement becomes a ``__dp_buf_pushK`` of the
   work variables (plus the synthetic dim field for solo-block children);
4. *insertion of the required barrier synchronization* — owned by the
   :class:`~repro.compiler.strategies.base.ConsolidationStrategy`
   (``__syncwarp`` reconvergence for warp-level, ``__syncthreads`` for
   block-level, the custom exit-style global barrier for grid-level);
5. *postwork transformation* — inline for strategies that keep the parent
   alive past the consolidated launch; consolidated into a separate
   kernel launched by the last block for strategies with
   ``consolidates_postwork`` (grid level), duplicating the *pure* prework
   declarations the postwork depends on (the paper's "duplicating in the
   postwork the relevant portions of prework").

Everything granularity-specific is delegated to the strategy object;
this module only orchestrates the steps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..errors import TransformError
from ..frontend.ast_nodes import (
    Block,
    Call,
    DeclStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    Ident,
    LaunchExpr,
    PragmaStmt,
    Stmt,
    Ternary,
    Transformer,
    clone,
    walk,
)
from ..frontend.pragma import PER_THREAD_WORK_CONST
from ..sim.occupancy import LaunchConfig
from .analysis import SOLO_THREAD, SOLO_BLOCK, TemplateInfo
from .builders import (
    bin_,
    block,
    block_dim,
    call,
    call_stmt,
    decl_int,
    grid_dim,
    ident,
    if_,
    intlit,
    launch,
)
from .strategies import ConsolidationStrategy, get_strategy

StrategyLike = Union[str, ConsolidationStrategy]


# --------------------------------------------------------------------------
# buffer sizing (§IV.E "Buffer size for customized allocator")
# --------------------------------------------------------------------------

def slots_expr(tpl: TemplateInfo, strategy: StrategyLike) -> Expr:
    """Per-buffer slot-count expression: ``totalThread * const`` where
    ``totalThread`` is the strategy's buffer-scope size and ``const`` the
    per-thread work estimate (or the user's ``perBufferSize`` clause)."""
    strategy = get_strategy(strategy)
    per = tpl.directive.per_buffer_size
    if isinstance(per, int):
        return intlit(per)
    scope_threads = strategy.scope_threads()
    if isinstance(per, str):
        # runtime variable indicating items per thread (§IV.E: "a property
        # of the current work item", e.g. the number of children of a node)
        return bin_("*", scope_threads, ident(per))
    return bin_("*", scope_threads, intlit(PER_THREAD_WORK_CONST))


def acquire_expr(tpl: TemplateInfo, strategy: StrategyLike) -> Expr:
    strategy = get_strategy(strategy)
    return call(
        "__dp_buf_acquire",
        intlit(strategy.gran_code),
        slots_expr(tpl, strategy),
        intlit(len(tpl.fields)),
    )


# --------------------------------------------------------------------------
# step 3: launch -> push
# --------------------------------------------------------------------------

class _ReplaceLaunch(Transformer):
    """Swap the annotated launch statement for a buffer push, and unwrap
    the PragmaStmt marker."""

    def __init__(self, tpl: TemplateInfo, strategy: ConsolidationStrategy):
        self.tpl = tpl
        self.strategy = strategy
        self.replaced = 0

    def visit_PragmaStmt(self, node: PragmaStmt):
        if node.directive is self.tpl.directive:
            return node.stmt
        return node

    def visit_ExprStmt(self, node: ExprStmt):
        if node.expr is not self.tpl.launch:
            return node
        self.replaced += 1
        tpl = self.tpl
        field_exprs: list[Expr] = [ident(name) for name in tpl.directive.work]
        if tpl.dim_field is not None and tpl.dim_field >= len(tpl.directive.work):
            field_exprs.append(clone(tpl.launch.block))
        k = len(field_exprs)
        if k > 4:
            raise TransformError(
                f"at most 4 buffered work fields are supported, got {k}",
                tpl.pragma_stmt.loc,
            )
        return call_stmt(
            f"__dp_buf_push{k}",
            acquire_expr(tpl, self.strategy),
            *field_exprs,
        )


# --------------------------------------------------------------------------
# step 4/5 support: the launcher statements every strategy guards
# --------------------------------------------------------------------------

def _consolidated_launch_stmt(tpl: TemplateInfo, cfg: LaunchConfig,
                              strategy: ConsolidationStrategy,
                              cons_name: str) -> list[Stmt]:
    """``int __dp_n = __dp_buf_size(...); if (__dp_n > 0) cons<<<B,T>>>(...)``"""
    uniform_args = [clone(b.arg) for b in tpl.bindings if b.mode == "uniform"]
    handle = acquire_expr(tpl, strategy)
    stmts: list[Stmt] = [
        decl_int("__dp_hh", handle),
        decl_int("__dp_n", call("__dp_buf_size", ident("__dp_hh"))),
    ]
    grid_e, block_e = _config_exprs(tpl, cfg, strategy)
    launch_stmt = launch(cons_name, grid_e, block_e,
                         *(uniform_args + [ident("__dp_hh"), ident("__dp_n")]))
    body: list[Stmt] = [launch_stmt]
    stmts.append(if_(bin_(">", ident("__dp_n"), intlit(0)), block(*body)))
    return stmts


def _config_exprs(tpl: TemplateInfo, cfg: LaunchConfig,
                  strategy: ConsolidationStrategy) -> tuple[Expr, Expr]:
    """Grid/block expressions for the consolidated launch."""
    from ..sim.specs import K20C  # default spec for static configs

    spec = getattr(cfg, "spec", None) or K20C
    if cfg.mode == "one2one":
        # Fig. 6 baseline: as many blocks (or threads, for thread-mapped
        # children) as buffered items.
        if tpl.child_kind == SOLO_THREAD:
            # thread-mapped: threads = item count (hardware-clamped)
            t_expr = Ternary(bin_("<", ident("__dp_n"), intlit(spec.max_threads_per_block)),
                             ident("__dp_n"), intlit(spec.max_threads_per_block))
            g_expr = bin_("/", bin_("+", ident("__dp_n"),
                                    intlit(spec.max_threads_per_block - 1)),
                          intlit(spec.max_threads_per_block))
            return g_expr, t_expr
        threads = tpl.dim_const if (tpl.child_kind == SOLO_BLOCK
                                    and tpl.dim_const is not None) else \
            (cfg.threads or 256)
        return ident("__dp_n"), intlit(threads)
    blocks, threads = cfg.resolve(spec, strategy.name)
    # moldable clamp: never launch more blocks than the drain loop can use
    # (item count for block-mapped children, ceil(n/T) for thread-mapped);
    # KC_X remains the *cap*, exactly the role §IV.E gives it
    if tpl.child_kind == SOLO_THREAD:
        need = bin_("/", bin_("+", ident("__dp_n"), intlit(threads - 1)),
                    intlit(threads))
    else:
        need = ident("__dp_n")
    grid_e = Ternary(bin_("<", need, intlit(blocks)), need, intlit(blocks))
    return grid_e, intlit(threads)


# --------------------------------------------------------------------------
# postwork consolidation (strategies with consolidates_postwork)
# --------------------------------------------------------------------------

def _is_pure_expr(e: Expr) -> bool:
    from ..frontend.ast_nodes import Assign, IncDec

    for node in walk(e):
        if isinstance(node, (Assign, IncDec, LaunchExpr)):
            return False
        if isinstance(node, Call) and node.callee not in ("min", "max", "abs"):
            return False
    return True


def _free_idents(stmts: list[Stmt], bound: set[str]) -> set[str]:
    from ..frontend.ast_nodes import VarDeclarator

    bound = set(bound)
    free: set[str] = set()
    for s in stmts:
        for node in walk(s):
            if isinstance(node, VarDeclarator):
                bound.add(node.name)
            elif isinstance(node, Ident) and node.name not in bound:
                free.add(node.name)
    return free


def make_postwork_kernel(tpl: TemplateInfo,
                         strategy: StrategyLike) -> Optional[FunctionDef]:
    """Consolidate postwork into its own kernel (§IV.C: "we consolidate
    the postwork into a single kernel").

    The kernel reuses the parent's parameters and duplicates the pure
    prework declarations the postwork depends on. Raises TransformError
    when postwork depends on impure prework state.
    """
    if not tpl.postwork_indexes:
        return None
    from ..frontend.symbols import BUILTIN_CONSTANTS

    strategy = get_strategy(strategy)
    parent = tpl.parent
    postwork = [clone(parent.body.stmts[i]) for i in tpl.postwork_indexes]
    param_names = {p.name for p in parent.params}
    needed = _free_idents(postwork, bound=set())
    needed -= param_names
    needed -= set(BUILTIN_CONSTANTS)

    # collect pure top-level prework declarations, in order, that
    # (transitively) produce the needed names
    produced: dict[str, tuple[DeclStmt, set[str]]] = {}
    for i in range(tpl.anchor_index):
        stmt = parent.body.stmts[i]
        if isinstance(stmt, DeclStmt):
            for d in stmt.declarators:
                deps = set()
                if d.init is not None:
                    for node in walk(d.init):
                        if isinstance(node, Ident):
                            deps.add(node.name)
                pure = d.init is None or _is_pure_expr(d.init)
                if pure and d.array_size is None and not stmt.shared:
                    produced[d.name] = (DeclStmt([clone(d)], const=stmt.const), deps)

    # resolve transitively
    ordered: list[str] = []

    def need(name: str, trail: tuple = ()):  # depth-first over decl deps
        if name in param_names or name in BUILTIN_CONSTANTS or name in ordered:
            return
        if name in trail:
            raise TransformError(f"cyclic prework dependency on {name!r}")
        if name not in produced:
            raise TransformError(
                f"{strategy.name}-level postwork depends on {name!r}, which "
                "is not a pure top-level prework declaration; the transform "
                "cannot duplicate it (paper §IV.C limits postwork "
                "dependencies to duplicable prework)",
                tpl.pragma_stmt.loc,
            )
        _, deps = produced[name]
        for dep in deps:
            if dep in produced or (dep not in param_names
                                   and dep not in BUILTIN_CONSTANTS):
                need(dep, trail + (name,))
        ordered.append(name)

    for name in sorted(needed):
        need(name)

    body_stmts: list[Stmt] = [clone(produced[name][0]) for name in ordered]
    body_stmts.extend(postwork)
    return FunctionDef(
        name=strategy.postwork_name(parent.name),
        ret_type=parent.ret_type,
        params=[replace(p) for p in parent.params],
        body=Block(body_stmts),
        qualifiers=parent.qualifiers,
        loc=parent.loc,
    )


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def transform_parent(tpl: TemplateInfo, strategy: StrategyLike,
                     cfg: LaunchConfig,
                     cons_name: str) -> tuple[FunctionDef, Optional[FunctionDef]]:
    """Apply the five parent-transformation steps; returns the rewritten
    parent and (for postwork-consolidating strategies) the consolidated
    postwork kernel.

    The template's module is consumed: callers transform a freshly parsed
    (or freshly built) module per consolidation, never a shared AST.
    """
    strategy = get_strategy(strategy)
    parent = tpl.parent
    # postwork extraction must read the *original* body, before the launch
    # replacement rewrites it
    postwork_kernel = None
    if strategy.consolidates_postwork:
        postwork_kernel = make_postwork_kernel(tpl, strategy)

    replacer = _ReplaceLaunch(tpl, strategy)
    new_body: Block = replacer.visit(parent.body)
    if replacer.replaced != 1:
        raise TransformError(
            f"internal: expected to replace exactly 1 launch, replaced "
            f"{replacer.replaced}", tpl.pragma_stmt.loc,
        )

    stmts = list(new_body.stmts)
    if strategy.consolidates_postwork:
        # drop postwork (and stray device-syncs) from the parent: the last
        # scope launches the consolidated postwork kernel instead
        stmts = [s for i, s in enumerate(stmts) if i <= tpl.anchor_index]
    else:
        # drop top-level cudaDeviceSynchronize statements; the designated
        # launcher re-inserts the synchronization correctly
        stmts = [s for i, s in enumerate(stmts)
                 if i <= tpl.anchor_index or not _is_devsync(s)]

    launcher = _consolidated_launch_stmt(tpl, cfg, strategy, cons_name)
    postwork_launch = None
    if postwork_kernel is not None:
        postwork_launch = launch(
            postwork_kernel.name, grid_dim(), block_dim(),
            *[ident(p.name) for p in postwork_kernel.params])
    section = strategy.designated_section(launcher,
                                          need_sync=tpl.had_device_sync,
                                          postwork_launch=postwork_launch)
    insert_at = tpl.anchor_index + 1
    stmts[insert_at:insert_at] = section
    new_parent = FunctionDef(
        name=parent.name,
        ret_type=parent.ret_type,
        params=[replace(p) for p in parent.params],
        body=Block(stmts),
        qualifiers=parent.qualifiers,
        loc=parent.loc,
    )
    return new_parent, postwork_kernel


def _is_devsync(s: Stmt) -> bool:
    return (isinstance(s, ExprStmt) and isinstance(s.expr, Call)
            and s.expr.callee == "cudaDeviceSynchronize")

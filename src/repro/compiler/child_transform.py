"""Child-kernel transformation (§IV.C, first phase).

Turns the input child kernel into a *consolidated, moldable* child kernel
that drains the consolidation buffer. The three §IV.C cases:

solo thread (``<<<1,1>>>``)
    every thread of the consolidated kernel fetches work items in a
    grid-stride loop and processes each exactly as the single original
    thread would (threadIdx/blockIdx collapse to 0);

solo block (``<<<1,T>>>``)
    every *block* fetches work items in a block-stride loop; the item body
    is wrapped in a moldable ``for (t = threadIdx.x; t < dim; t +=
    blockDim.x)`` loop where ``dim`` is the item's original block size
    (constant, or recovered from a synthetic buffer field);

multi block (``<<<G,T>>>``)
    the original body must already be moldable (grid-stride style); the
    consolidated kernel iterates work items in an outer loop with all
    threads cooperating on each item.

The returned kernel has signature
``(uniform child params..., int __dp_h, int __dp_n)``.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import TransformError
from ..frontend.ast_nodes import (
    Block,
    BuiltinVar,
    Call,
    Expr,
    FunctionDef,
    INT,
    Param,
    Stmt,
    Transformer,
    clone,
    walk,
)
from .analysis import MULTI_BLOCK, SOLO_BLOCK, SOLO_THREAD, TemplateInfo
from .builders import (
    bin_,
    block,
    block_dim,
    block_idx,
    call,
    decl_int,
    for_int,
    global_tid,
    grid_dim,
    grid_stride,
    ident,
    intlit,
    thread_idx,
)

#: reserved identifier prefix for transform-introduced names
RESERVED_PREFIX = "__dp_"


class SubstituteBuiltins(Transformer):
    """Replace CUDA builtin vector variables by given expressions."""

    def __init__(self, mapping: dict[str, Expr]):
        self.mapping = mapping

    def visit_BuiltinVar(self, node: BuiltinVar):
        if node.dim == "x" and node.name in self.mapping:
            return clone(self.mapping[node.name])
        return node


def consolidated_name(child_name: str, strategy) -> str:
    """Name of the drain kernel. ``strategy`` may be a strategy object
    or a registered name; either way the strategy's ``consolidated_name``
    hook (which subclasses may override) decides, so the child and
    parent transforms always agree."""
    from .strategies import get_strategy

    return get_strategy(strategy).consolidated_name(child_name)


def _forbid_syncthreads(body: Stmt, kind: str) -> None:
    for node in walk(body):
        if isinstance(node, Call) and node.callee == "__syncthreads":
            raise TransformError(
                f"__syncthreads in a {kind} child kernel cannot be preserved "
                "by the moldable rewrite (threads take different trip "
                "counts); restructure the child or use a multi-block child",
                node.loc,
            )


def _work_decls(tpl: TemplateInfo) -> list[Stmt]:
    """``int <param> = __dp_buf_get(__dp_h, __dp_s, field);`` for each
    buffered child parameter."""
    decls: list[Stmt] = []
    for b in tpl.bindings:
        if b.mode == "work":
            decls.append(decl_int(
                b.param_name,
                call("__dp_buf_get", ident("__dp_h"), ident("__dp_s"),
                     intlit(b.fld)),
            ))
    return decls


def make_consolidated_child(tpl: TemplateInfo, strategy) -> FunctionDef:
    """Build the consolidated child kernel for a template.

    ``strategy`` is a :class:`~repro.compiler.strategies.base.
    ConsolidationStrategy` (or a bare granularity name); the drain-loop
    shape is decided by the child *kind*, so the strategy only
    contributes the generated kernel's name.
    """
    child = tpl.child
    body = clone(child.body)
    kind = tpl.child_kind

    if kind == SOLO_THREAD:
        _forbid_syncthreads(body, "solo-thread")
        inner = SubstituteBuiltins({
            "threadIdx": intlit(0),
            "blockIdx": intlit(0),
            "blockDim": intlit(1),
            "gridDim": intlit(1),
        }).visit(body)
        loop_body = block(*(_work_decls(tpl) + [inner]))
        loop = for_int("__dp_s", global_tid(),
                       bin_("<", ident("__dp_s"), ident("__dp_n")),
                       grid_stride(), loop_body)
        stmts: list[Stmt] = [loop]

    elif kind == SOLO_BLOCK:
        _forbid_syncthreads(body, "solo-block")
        inner = SubstituteBuiltins({
            "threadIdx": ident("__dp_t"),
            "blockDim": ident("__dp_dim"),
            "blockIdx": intlit(0),
            "gridDim": intlit(1),
        }).visit(body)
        if tpl.dim_const is not None:
            dim_decl = decl_int("__dp_dim", intlit(tpl.dim_const))
        else:
            dim_decl = decl_int(
                "__dp_dim",
                call("__dp_buf_get", ident("__dp_h"), ident("__dp_s"),
                     intlit(tpl.dim_field)),
            )
        mold = for_int("__dp_t", thread_idx(),
                       bin_("<", ident("__dp_t"), ident("__dp_dim")),
                       block_dim(), block(inner))
        loop_body = block(*(_work_decls(tpl) + [dim_decl, mold]))
        loop = for_int("__dp_s", block_idx(),
                       bin_("<", ident("__dp_s"), ident("__dp_n")),
                       grid_dim(), loop_body)
        stmts = [loop]

    elif kind == MULTI_BLOCK:
        # all threads cooperate on every item; the body must already be
        # moldable (grid-stride) so the consolidated dims apply directly.
        inner = clone(body)
        loop_body = block(*(_work_decls(tpl) + [inner]))
        loop = for_int("__dp_s", intlit(0),
                       bin_("<", ident("__dp_s"), ident("__dp_n")),
                       intlit(1), loop_body)
        stmts = [loop]
    else:  # pragma: no cover - classify_child is exhaustive
        raise TransformError(f"unknown child kind {kind!r}")

    params = [replace(p) for b, p in zip(tpl.bindings, child.params)
              if b.mode == "uniform"]
    params.append(Param("__dp_h", INT))
    params.append(Param("__dp_n", INT))
    return FunctionDef(
        name=consolidated_name(child.name, strategy),
        ret_type=child.ret_type,
        params=params,
        body=Block(stmts),
        qualifiers=child.qualifiers,
        loc=child.loc,
    )

"""Consolidation driver: applies the child and parent transformations to a
module (Fig. 3's kernel-transformation flow).

For irregular loops (distinct parent/child kernels) the two phases are
applied separately to each kernel; for parallel recursion (child == parent)
they are applied sequentially to the single input kernel — the consolidated
child is built from the *original* body and then itself parent-transformed,
which is what lets the consolidated kernel relaunch itself on the next
level's buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from ..errors import TransformError
from ..frontend.ast_nodes import FunctionDef, Module
from ..frontend.typecheck import ModuleInfo, check_module
from ..frontend.unparser import unparse
from ..sim.occupancy import LaunchConfig
from ..sim.specs import DeviceSpec, K20C
from .analysis import TemplateInfo, find_template
from .parent_transform import transform_parent
from .strategies import get_strategy


@dataclass
class ConsolidationReport:
    """What the compiler did — consumed by experiments and shown to users."""

    granularity: str
    buffer_type: str
    parent_kernel: str
    child_kernel: str
    child_kind: str
    consolidated_kernel: str
    postwork_kernel: Optional[str]
    work_fields: tuple[str, ...]
    recursive: bool
    config_mode: str
    config: Optional[tuple[int, int]]  # (blocks, threads) when static

    def describe(self) -> str:
        cfg = (f"{self.config[0]}x{self.config[1]}" if self.config
               else self.config_mode)
        return (f"{self.granularity}-level consolidation of "
                f"{self.child_kernel} ({self.child_kind}) launched from "
                f"{self.parent_kernel}; buffer={self.buffer_type}, "
                f"fields={list(self.work_fields)}, config={cfg}"
                + (", recursive" if self.recursive else "")
                + (f", postwork={self.postwork_kernel}" if self.postwork_kernel
                   else ""))


@dataclass
class ConsolidationResult:
    module: Module
    info: ModuleInfo
    source: str
    report: ConsolidationReport


def _config_from_directive(tpl: TemplateInfo, config: Optional[LaunchConfig],
                           spec: DeviceSpec) -> LaunchConfig:
    if config is not None:
        if config.spec is None:
            config = dc_replace(config, spec=spec)
        return config
    d = tpl.directive
    if d.blocks is not None:
        return LaunchConfig(mode="explicit", blocks=d.blocks,
                            threads=d.threads, spec=spec)
    return LaunchConfig(mode="kc", threads=d.threads, spec=spec)


def consolidate_module(module: Module, granularity=None,
                       config: Optional[LaunchConfig] = None,
                       parent: Optional[str] = None,
                       spec: DeviceSpec = K20C) -> ConsolidationResult:
    """Apply workload consolidation to a *freshly built* module.

    ``granularity`` names a registered
    :class:`~repro.compiler.strategies.base.ConsolidationStrategy` (or is
    one); ``None`` uses the pragma's ``consldt`` clause. The module is
    consumed (transformed in place and rebuilt); callers that need
    several strategies applied to the same code should re-parse per call
    (see :func:`repro.compiler.pipeline.consolidate_source`).
    """
    info = check_module(module)
    tpl = find_template(info, parent)
    strategy = get_strategy(granularity if granularity is not None
                            else tpl.directive.granularity)
    cfg = _config_from_directive(tpl, config, spec)
    cons_name = strategy.consolidated_name(tpl.child.name)
    for fn in module.functions():
        if fn.name == cons_name:
            raise TransformError(
                f"module already contains a kernel named {cons_name!r}")

    if tpl.recursive:
        # phase 1 (child): clone the ORIGINAL body into the drain kernel
        cons_child = strategy.build_child(tpl)
        # phase 2 (parent) on the original kernel
        new_parent, post1 = transform_parent(tpl, strategy, cfg, cons_name)
        other = [d for d in module.decls
                 if not (isinstance(d, FunctionDef) and d.name == tpl.parent.name)]
        temp_module = Module(other + [new_parent, cons_child])
        temp_info = check_module(temp_module, allow_reserved=True)
        tpl2 = find_template(temp_info, parent_name=cons_name)
        new_cons, post2 = transform_parent(tpl2, strategy, cfg, cons_name)
        decls = [d for d in temp_module.decls
                 if not (isinstance(d, FunctionDef) and d.name == cons_name)]
        decls.append(new_cons)
        for post in (post1, post2):
            if post is not None:
                decls.append(post)
        postwork_name = post1.name if post1 else (post2.name if post2 else None)
        final = Module(decls)
    else:
        cons_child = strategy.build_child(tpl)
        new_parent, post = transform_parent(tpl, strategy, cfg, cons_name)
        decls = []
        for d in module.decls:
            if isinstance(d, FunctionDef) and d.name == tpl.parent.name:
                decls.append(new_parent)
            else:
                decls.append(d)
        decls.append(cons_child)
        if post is not None:
            decls.append(post)
        postwork_name = post.name if post else None
        final = Module(decls)

    final_info = check_module(final, allow_reserved=True)  # validate generated code
    static = None
    if cfg.mode != "one2one":
        static = cfg.resolve(cfg.spec or spec, strategy.name)
    report = ConsolidationReport(
        granularity=strategy.name,
        buffer_type=tpl.directive.buffer_type,
        parent_kernel=tpl.parent.name,
        child_kernel=tpl.child.name,
        child_kind=tpl.child_kind,
        consolidated_kernel=cons_name,
        postwork_kernel=postwork_name,
        work_fields=tuple(tpl.fields),
        recursive=tpl.recursive,
        config_mode=cfg.mode,
        config=static,
    )
    return ConsolidationResult(
        module=final,
        info=final_info,
        source=unparse(final),
        report=report,
    )

"""Small AST-construction helpers shared by the transforms.

These keep the transform code close to the shape of the CUDA it emits:
``call("__dp_buf_get", ident("__dp_h"), intlit(0))`` reads like the
generated line.
"""

from __future__ import annotations

from ..frontend.ast_nodes import (
    Assign,
    BinOp,
    Block,
    BuiltinVar,
    Call,
    DeclStmt,
    Expr,
    ExprStmt,
    For,
    Ident,
    If,
    INT,
    IntLit,
    LaunchExpr,
    Return,
    Stmt,
    VarDeclarator,
)


def intlit(v: int) -> IntLit:
    return IntLit(int(v))


def ident(name: str) -> Ident:
    return Ident(name)


def bin_(op: str, left: Expr, right: Expr) -> BinOp:
    return BinOp(op, left, right)


def call(name: str, *args: Expr) -> Call:
    return Call(name, list(args))


def call_stmt(name: str, *args: Expr) -> ExprStmt:
    return ExprStmt(call(name, *args))


def decl_int(name: str, init: Expr) -> DeclStmt:
    return DeclStmt([VarDeclarator(name, INT, None, init)])


def assign_stmt(target: Expr, value: Expr) -> ExprStmt:
    return ExprStmt(Assign("=", target, value))


def block(*stmts: Stmt) -> Block:
    return Block(list(stmts))


def if_(cond: Expr, then: Stmt, els: Stmt | None = None) -> If:
    return If(cond, then, els)


def for_int(var: str, init: Expr, cond: Expr, step_value: Expr, body: Block) -> For:
    """``for (int var = init; cond; var += step_value) body``"""
    return For(
        init=decl_int(var, init),
        cond=cond,
        step=Assign("+=", ident(var), step_value),
        body=body,
    )


def thread_idx() -> BuiltinVar:
    return BuiltinVar("threadIdx", "x")


def block_idx() -> BuiltinVar:
    return BuiltinVar("blockIdx", "x")


def block_dim() -> BuiltinVar:
    return BuiltinVar("blockDim", "x")


def grid_dim() -> BuiltinVar:
    return BuiltinVar("gridDim", "x")


def global_tid() -> Expr:
    """``blockIdx.x * blockDim.x + threadIdx.x``"""
    return bin_("+", bin_("*", block_idx(), block_dim()), thread_idx())


def grid_stride() -> Expr:
    """``gridDim.x * blockDim.x``"""
    return bin_("*", grid_dim(), block_dim())


def launch(callee: str, grid: Expr, blk: Expr, *args: Expr) -> ExprStmt:
    return ExprStmt(LaunchExpr(callee, grid, blk, list(args)))


def ret() -> Return:
    return Return(None)

"""The paper's contribution: directive-based workload-consolidation
compiler for dynamic-parallelism CUDA code (§IV)."""

from .analysis import (  # noqa: F401
    MULTI_BLOCK,
    SOLO_BLOCK,
    SOLO_THREAD,
    TemplateInfo,
    classify_child,
    find_template,
)
from .child_transform import consolidated_name, make_consolidated_child  # noqa: F401
from .consolidator import (  # noqa: F401
    ConsolidationReport,
    ConsolidationResult,
    consolidate_module,
)
from .parent_transform import transform_parent  # noqa: F401
from .pipeline import GRANULARITIES, consolidate_all, consolidate_source  # noqa: F401
from .strategies import (  # noqa: F401
    ConsolidationStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)

"""Source-to-source entry points for the consolidation compiler.

This is the user-facing equivalent of the paper's directive-based compiler
(Fig. 3): annotated CUDA in, consolidated CUDA out. It sits between the
frontend (:mod:`repro.frontend`, which parses MiniCUDA and its
``#pragma dp`` directives) and the simulator (:mod:`repro.sim`, which
executes the generated code); README.md walks the whole pipeline and
DESIGN.md §3-§4 document the transforms. Which *aggregation granularity*
is applied is decided by a pluggable
:class:`~repro.compiler.strategies.base.ConsolidationStrategy`
(DESIGN.md §10).

    >>> from repro.compiler import consolidate_source
    >>> result = consolidate_source(annotated_src, granularity="block")
    >>> print(result.source)          # the generated CUDA
    >>> print(result.report.describe())

Each call re-parses the input so the same annotated source can be
consolidated under every strategy independently. Compilation is pure and
deterministic: the same (source, strategy, config, spec) inputs yield
byte-identical output in any process. The experiment layer leans on this
— consolidation happens *inside* each cached application run, so the
work-plan scheduler (DESIGN.md §8) can fan runs across worker processes
and content-address the results without ever hashing compiler state.
"""

from __future__ import annotations

from typing import Optional

from ..frontend.parser import parse
from ..sim.occupancy import LaunchConfig
from ..sim.specs import DeviceSpec, K20C
from .consolidator import ConsolidationResult, consolidate_module
from .strategies import available_strategies

#: the paper's three granularities (the built-in strategies; plugins may
#: register more — see :func:`available_strategies`)
GRANULARITIES = ("warp", "block", "grid")


def consolidate_source(source: str, granularity=None,
                       config: Optional[LaunchConfig] = None,
                       parent: Optional[str] = None,
                       spec: DeviceSpec = K20C,
                       filename: str = "<annotated>",
                       strategy=None) -> ConsolidationResult:
    """Consolidate annotated MiniCUDA source under one strategy.

    ``granularity`` (alias ``strategy``) names a registered
    consolidation strategy and overrides the pragma's ``consldt`` clause
    (the experiments sweep all three built-ins); ``config`` overrides the
    kernel configuration policy (KC_X by default).
    """
    if strategy is not None:
        if granularity is not None and granularity != strategy:
            raise ValueError(
                f"conflicting granularity={granularity!r} and "
                f"strategy={strategy!r}")
        granularity = strategy
    module = parse(source, filename)
    return consolidate_module(module, granularity=granularity, config=config,
                              parent=parent, spec=spec)


def consolidate_all(source: str, config: Optional[LaunchConfig] = None,
                    parent: Optional[str] = None,
                    spec: DeviceSpec = K20C) -> dict[str, ConsolidationResult]:
    """Consolidate under every registered strategy, keyed by name
    (``'warp'``/``'block'``/``'grid'`` plus any registered plugins)."""
    return {
        name: consolidate_source(source, granularity=name, config=config,
                                 parent=parent, spec=spec)
        for name in available_strategies()
    }

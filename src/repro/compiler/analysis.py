"""Template analysis for the consolidation transforms.

Validates that an annotated kernel follows the paper's Fig. 1 template and
extracts everything the child/parent transformations (§IV.C) need:

* the single ``#pragma dp``-annotated statement and the single launch site
  inside it;
* the *section split* of the parent body: prework (top-level statements up
  to and including the annotated one), the launch, and postwork (top-level
  statements after it);
* the classification of the child kernel from the launch configuration —
  **solo thread** (``<<<1,1>>>``), **solo block** (``<<<1,T>>>``) or
  **multi block** (everything else), exactly the three cases of §IV.C;
* the mapping of launch arguments to buffered work fields vs. uniform
  passthrough arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TransformError
from ..frontend.ast_nodes import (
    BuiltinVar,
    Call,
    Expr,
    FunctionDef,
    Ident,
    IntLit,
    LaunchExpr,
    PragmaStmt,
    Stmt,
    walk,
)
from ..frontend.pragma import DpDirective
from ..frontend.typecheck import ModuleInfo

SOLO_THREAD = "solo_thread"
SOLO_BLOCK = "solo_block"
MULTI_BLOCK = "multi_block"


@dataclass
class ArgBinding:
    """How one child-kernel parameter is supplied after consolidation."""

    param_name: str
    arg: Expr
    #: 'work' -> read from buffer field `field`; 'uniform' -> passed through
    mode: str
    fld: int = -1


@dataclass
class TemplateInfo:
    parent: FunctionDef
    directive: DpDirective
    pragma_stmt: PragmaStmt
    #: index of the top-level parent-body statement containing the pragma
    anchor_index: int
    launch: LaunchExpr
    child: FunctionDef
    child_kind: str
    bindings: list[ArgBinding]
    #: names of buffered work fields, in field order (directive order plus
    #: a synthetic trailing dim field when needed)
    fields: list[str]
    #: launch block-dim handling for solo-block children: either an int
    #: (constant dim) or the buffer field index of the synthetic dim
    dim_const: Optional[int] = None
    dim_field: Optional[int] = None
    #: does the parent recursively launch itself?
    recursive: bool = False
    #: top-level statement indexes of the postwork section
    postwork_indexes: list[int] = field(default_factory=list)
    #: does a top-level cudaDeviceSynchronize() separate launch and postwork?
    had_device_sync: bool = False


def _const_int(e: Expr) -> Optional[int]:
    if isinstance(e, IntLit):
        return e.value
    return None


def uniform_names(fn: FunctionDef, info: ModuleInfo) -> set[str]:
    """Names whose values are identical across all threads of a kernel:
    parameters and file-scope globals (builtin vector vars are *not*)."""
    names = {p.name for p in fn.params}
    names.update(info.globals.keys())
    return names


def expr_is_uniform(e: Expr, uniforms: set[str]) -> bool:
    """Conservative uniformity: no thread builtins, all free identifiers
    uniform, no function calls (could depend on hidden thread state)."""
    for node in walk(e):
        if isinstance(node, BuiltinVar):
            return False
        if isinstance(node, Call) or isinstance(node, LaunchExpr):
            return False
        if isinstance(node, Ident) and node.name not in uniforms:
            # builtin constants like INT_MAX are uniform
            from ..frontend.symbols import BUILTIN_CONSTANTS

            if node.name not in BUILTIN_CONSTANTS:
                return False
    return True


def find_template(info: ModuleInfo, parent_name: Optional[str] = None) -> TemplateInfo:
    """Locate and validate the annotated launch template in a module."""
    module = info.module
    pragmas: list[tuple[FunctionDef, int, PragmaStmt]] = []
    for fn in module.kernels():
        if parent_name is not None and fn.name != parent_name:
            continue
        for idx, stmt in enumerate(fn.body.stmts):
            for node in walk(stmt):
                if isinstance(node, PragmaStmt):
                    pragmas.append((fn, idx, node))
    if not pragmas:
        where = f" in kernel {parent_name!r}" if parent_name else ""
        raise TransformError(f"no #pragma dp directive found{where}")
    if len(pragmas) > 1:
        locs = ", ".join(str(p.loc) for _, _, p in pragmas)
        raise TransformError(
            f"exactly one #pragma dp per module is supported, found "
            f"{len(pragmas)} ({locs})"
        )
    parent, anchor_index, pragma_stmt = pragmas[0]
    directive: DpDirective = pragma_stmt.directive

    launches = [n for n in walk(pragma_stmt.stmt) if isinstance(n, LaunchExpr)]
    if len(launches) != 1:
        raise TransformError(
            f"the #pragma dp statement must contain exactly one kernel "
            f"launch, found {len(launches)}",
            pragma_stmt.loc,
        )
    launch = launches[0]
    try:
        child = module.function(launch.callee)
    except KeyError:
        raise TransformError(f"launch of unknown kernel {launch.callee!r}",
                             launch.loc) from None

    child_kind = classify_child(launch)
    bindings, fields = bind_arguments(parent, child, launch, directive, info)

    dim_const = dim_field = None
    if child_kind == SOLO_BLOCK:
        dim_const, dim_field = resolve_dim(launch.block, parent, directive,
                                           fields, info)
    elif child_kind == SOLO_THREAD:
        pass
    else:
        # multi-block children must be moldable (grid-stride style); the
        # launch dims are advisory and need not be buffered.
        pass

    postwork_indexes = list(range(anchor_index + 1, len(parent.body.stmts)))
    had_sync = False
    kept_post = []
    for i in postwork_indexes:
        stmt = parent.body.stmts[i]
        if _is_device_sync_stmt(stmt):
            had_sync = True
        else:
            kept_post.append(i)

    return TemplateInfo(
        parent=parent,
        directive=directive,
        pragma_stmt=pragma_stmt,
        anchor_index=anchor_index,
        launch=launch,
        child=child,
        child_kind=child_kind,
        bindings=bindings,
        fields=fields,
        dim_const=dim_const,
        dim_field=dim_field,
        recursive=(launch.callee == parent.name),
        postwork_indexes=kept_post,
        had_device_sync=had_sync,
    )


def _is_device_sync_stmt(stmt: Stmt) -> bool:
    from ..frontend.ast_nodes import ExprStmt

    return (isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Call)
            and stmt.expr.callee == "cudaDeviceSynchronize")


def classify_child(launch: LaunchExpr) -> str:
    """§IV.C's three cases, decided from the launch configuration."""
    grid_c = _const_int(launch.grid)
    block_c = _const_int(launch.block)
    if grid_c == 1 and block_c == 1:
        return SOLO_THREAD
    if grid_c == 1:
        return SOLO_BLOCK
    return MULTI_BLOCK


def bind_arguments(parent: FunctionDef, child: FunctionDef, launch: LaunchExpr,
                   directive: DpDirective, info: ModuleInfo
                   ) -> tuple[list[ArgBinding], list[str]]:
    """Split launch arguments into buffered work fields and uniform args."""
    uniforms = uniform_names(parent, info)
    work_list = list(directive.work)
    fields: list[str] = list(work_list)
    bindings: list[ArgBinding] = []
    for param, arg in zip(child.params, launch.args):
        if isinstance(arg, Ident) and arg.name in work_list:
            fld = work_list.index(arg.name)
            if not param.type.is_integer:
                raise TransformError(
                    f"work variable {arg.name!r} feeds non-integer child "
                    f"parameter {param.name!r} of type {param.type} — the "
                    "consolidation buffer holds indexes/pointers (Table I)",
                    arg.loc,
                )
            bindings.append(ArgBinding(param.name, arg, "work", fld))
        elif expr_is_uniform(arg, uniforms):
            bindings.append(ArgBinding(param.name, arg, "uniform"))
        else:
            raise TransformError(
                f"launch argument for child parameter {param.name!r} is "
                "thread-dependent but not listed in the work() clause; add "
                "it to work() so it can be buffered",
                getattr(arg, "loc", None),
            )
    return bindings, fields


def resolve_dim(block_expr: Expr, parent: FunctionDef, directive: DpDirective,
                fields: list[str], info: ModuleInfo
                ) -> tuple[Optional[int], Optional[int]]:
    """Decide how the consolidated solo-block child learns each item's
    original block size (the moldable-wrap loop bound)."""
    c = _const_int(block_expr)
    if c is not None:
        return c, None
    if isinstance(block_expr, Ident) and block_expr.name in fields:
        return None, fields.index(block_expr.name)
    uniforms = uniform_names(parent, info)
    if expr_is_uniform(block_expr, uniforms):
        # uniform non-constant dim: treat as a uniform argument by buffering
        # once per item anyway (simplest correct scheme)
        pass
    if isinstance(block_expr, Ident):
        fields.append(block_expr.name)
        return None, len(fields) - 1
    raise TransformError(
        "the child launch block dimension must be a constant or a variable "
        "(optionally listed in work()) so the consolidated kernel can "
        "recover each item's size; hoist the expression into a local "
        "variable first",
        getattr(block_expr, "loc", None),
    )

"""Block-level consolidation: one buffer and one consolidated launch per
thread block.

The middle ground the paper defaults to for irregular loops: a
``__syncthreads`` barrier makes every warp of the block wait for the
slowest producer (a load-balance cost the simulator surfaces as barrier
stall), in exchange for a B-fold reduction in launches and far fewer
buffers than warp level. KC_16 expects up to 16 concurrent drain
kernels.
"""

from __future__ import annotations

from typing import Optional

from ...frontend.ast_nodes import Expr, ExprStmt, Stmt
from ..builders import bin_, block, block_dim, call_stmt, if_, intlit, thread_idx
from ...sim.dp import GRAN_BLOCK
from .base import ConsolidationStrategy


class BlockStrategy(ConsolidationStrategy):
    name = "block"
    gran_code = GRAN_BLOCK
    kc_concurrency = 16
    tradeoff = ("B-fold launch reduction and few buffers; __syncthreads "
                "makes the block wait for its slowest warp")

    def scope_threads(self) -> Expr:
        return block_dim()

    def designated_section(self, launcher: list[Stmt], need_sync: bool,
                           postwork_launch: Optional[ExprStmt]) -> list[Stmt]:
        self._reject_postwork(postwork_launch)
        body = list(launcher)
        if need_sync:
            body.append(call_stmt("cudaDeviceSynchronize"))
        section: list[Stmt] = [
            call_stmt("__syncthreads"),
            if_(bin_("==", thread_idx(), intlit(0)), block(*body)),
        ]
        if need_sync:
            section.append(call_stmt("__syncthreads"))
        return section

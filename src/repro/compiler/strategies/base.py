"""The :class:`ConsolidationStrategy` abstraction.

A *strategy* owns every granularity-specific decision the consolidation
compiler makes (Olabi et al., arXiv:2201.02789, generalize the paper's
single aggregation granularity into exactly this design space):

* the **buffer scope** — which threads share one consolidation buffer
  (the ``__dp_buf_acquire`` scope code the runtime keys buffers by);
* the **buffer sizing** term — how many threads contribute to one buffer
  (§IV.E sizes buffers as ``scope threads x per-thread work estimate``);
* the **designated-launcher section** — the barrier construct that makes
  the buffer contents visible and the guard that elects the one thread
  which launches the consolidated child (§IV.C step 4);
* **postwork handling** — whether postwork stays inline in the parent or
  is consolidated into a separate kernel launched by the last scope to
  arrive (§IV.C step 5; only the grid strategy needs the latter);
* the **kernel-configuration concurrency target** — the ``X`` in the
  paper's ``KC_X`` rule (§IV.E), i.e. how many consolidated kernels are
  expected to run concurrently at this granularity.

Strategies are stateless singletons registered by name (see
:mod:`repro.compiler.strategies`); the rest of the compiler only ever
talks to this interface, so a new aggregation granularity is one new
subclass plus ``register_strategy()`` — no transform code changes.
"""

from __future__ import annotations

import abc
from typing import Optional, TYPE_CHECKING

from ...errors import TransformError
from ...frontend.ast_nodes import Expr, ExprStmt, FunctionDef, Stmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..analysis import TemplateInfo


class ConsolidationStrategy(abc.ABC):
    """One aggregation granularity for workload consolidation.

    Subclasses define the class attributes and the two codegen hooks;
    instances are stateless and shared (the registry hands out
    singletons).
    """

    #: registry key and name suffix of generated kernels ('warp', ...)
    name: str = ""
    #: buffer scope code passed to ``__dp_buf_acquire`` (see sim/dp.py)
    gran_code: int = -1
    #: the ``X`` of the paper's KC_X configuration rule for this scope
    kc_concurrency: int = 1
    #: whether postwork is consolidated into a separate kernel (§IV.C)
    consolidates_postwork: bool = False
    #: one-line launch-overhead / load-balance trade-off summary (docs,
    #: ablation tables)
    tradeoff: str = ""

    # ------------------------------------------------------------- naming

    def consolidated_name(self, child_name: str) -> str:
        """Name of the consolidated (drain) kernel for a child kernel."""
        return f"{child_name}_cons_{self.name}"

    def postwork_name(self, parent_name: str) -> str:
        return f"{parent_name}_post_{self.name}"

    # ------------------------------------------------------------ codegen

    @abc.abstractmethod
    def scope_threads(self) -> Expr:
        """Expression for the number of threads sharing one buffer
        (the §IV.E ``totalThread`` term of the buffer-size prediction)."""

    @abc.abstractmethod
    def designated_section(self, launcher: list[Stmt], need_sync: bool,
                           postwork_launch: Optional[ExprStmt]) -> list[Stmt]:
        """Barrier + designated-launcher statements inserted after the
        anchor statement of the parent (§IV.C steps 4-5).

        ``launcher`` reads the buffer size and conditionally launches the
        consolidated child; ``need_sync`` says the original parent joined
        its children with ``cudaDeviceSynchronize``; ``postwork_launch``
        is the launch of the consolidated postwork kernel, only ever
        non-None for strategies with ``consolidates_postwork``.
        """

    def build_child(self, tpl: "TemplateInfo") -> FunctionDef:
        """Build the consolidated child kernel (§IV.C phase 1). The
        default drain-loop construction is shared by all granularities;
        strategies may override to change the drain shape."""
        from ..child_transform import make_consolidated_child

        return make_consolidated_child(tpl, self)

    # ----------------------------------------------------------- plumbing

    def _reject_postwork(self, postwork_launch: Optional[ExprStmt]) -> None:
        if postwork_launch is not None:
            raise TransformError(
                f"strategy {self.name!r} keeps postwork inline and cannot "
                "emit a consolidated postwork launch"
            )

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"scope={self.gran_code} KC_{self.kc_concurrency}>")

"""Pluggable consolidation strategies (aggregation granularities).

The paper consolidates child launches at warp, block, or grid scope;
this package turns each scope into a :class:`ConsolidationStrategy`
object and keeps them in a name-keyed registry, so the transforms in
:mod:`repro.compiler` are granularity-agnostic and experiments can sweep
the strategy axis (``repro run <app> consolidated --strategy <name>``,
``repro granularity``). DESIGN.md §10 documents the layer.

Registering a new strategy makes it reachable end-to-end — compiler,
simulator, runner cache key, and CLI — without touching any of them::

    from repro.compiler.strategies import (
        ConsolidationStrategy, register_strategy)

    class PairStrategy(WarpStrategy):       # e.g. a tuned warp variant
        name = "warp-kc8"
        kc_concurrency = 8

    register_strategy(PairStrategy())
"""

from __future__ import annotations

from typing import Union

from ...errors import TransformError
from ...sim.dp import GRAN_NAMES
from .base import ConsolidationStrategy
from .block import BlockStrategy
from .grid import GridStrategy
from .warp import WarpStrategy

__all__ = [
    "ConsolidationStrategy",
    "WarpStrategy",
    "BlockStrategy",
    "GridStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "unregister_strategy",
    "BUILTIN_STRATEGIES",
]

#: name -> singleton; insertion order is the presentation order used by
#: ``consolidate_all`` and the granularity ablation
_REGISTRY: dict[str, ConsolidationStrategy] = {}


def register_strategy(strategy: ConsolidationStrategy,
                      replace: bool = False) -> ConsolidationStrategy:
    """Add a strategy to the registry (validated); returns it."""
    if not isinstance(strategy, ConsolidationStrategy):
        raise TypeError(
            f"expected a ConsolidationStrategy instance, got {strategy!r}")
    if not strategy.name:
        raise ValueError(f"{type(strategy).__name__} must define a name")
    if strategy.gran_code not in GRAN_NAMES:
        scopes = ", ".join(f"{c}={n}" for c, n in GRAN_NAMES.items())
        raise ValueError(
            f"strategy {strategy.name!r}: gran_code must be a buffer scope "
            f"the runtime knows ({scopes}), got {strategy.gran_code}")
    if strategy.kc_concurrency < 1:
        raise ValueError(
            f"strategy {strategy.name!r}: kc_concurrency must be >= 1")
    if strategy.name in _REGISTRY and not replace:
        raise ValueError(f"strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a strategy (test/plugin cleanup). Built-ins may be removed
    too; re-register them from the exported classes if needed."""
    if name not in _REGISTRY:
        raise KeyError(f"strategy {name!r} is not registered")
    del _REGISTRY[name]


def get_strategy(name: Union[str, ConsolidationStrategy]
                 ) -> ConsolidationStrategy:
    """Look up a strategy by name; instances pass through unchanged."""
    if isinstance(name, ConsolidationStrategy):
        return name
    strategy = _REGISTRY.get(name)
    if strategy is None:
        raise TransformError(
            f"unknown consolidation strategy {name!r}; "
            f"available: {', '.join(available_strategies())}")
    return strategy


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


register_strategy(WarpStrategy())
register_strategy(BlockStrategy())
register_strategy(GridStrategy())

#: the paper's three granularities, as registered singletons
BUILTIN_STRATEGIES = tuple(_REGISTRY.values())

"""Warp-level consolidation: one buffer and one consolidated launch per
warp.

Cheapest barrier (``__syncwarp`` reconvergence — lanes of a warp are
already lockstep) and the shortest wait before the consolidated child can
start, but the smallest aggregation factor: with W resident warps the
device still sees W consolidated launches, and the many small buffers
stress the device-heap allocator (exactly what the paper's Fig. 5
measures). KC_32 expects up to 32 of these kernels to run concurrently.
"""

from __future__ import annotations

from typing import Optional

from ...frontend.ast_nodes import Expr, ExprStmt, Stmt
from ..builders import bin_, block, call_stmt, if_, intlit, thread_idx
from ...sim.dp import GRAN_WARP
from .base import ConsolidationStrategy

#: SIMT width assumed by the generated lane-0 guard (matches every spec
#: the simulator ships; a non-32-wide device would need a new strategy)
WARP_WIDTH = 32


class WarpStrategy(ConsolidationStrategy):
    name = "warp"
    gran_code = GRAN_WARP
    kc_concurrency = 32
    tradeoff = ("lowest launch wait, cheapest barrier; smallest "
                "aggregation factor and most buffers (allocator-bound)")

    def scope_threads(self) -> Expr:
        return intlit(WARP_WIDTH)

    def designated_section(self, launcher: list[Stmt], need_sync: bool,
                           postwork_launch: Optional[ExprStmt]) -> list[Stmt]:
        self._reject_postwork(postwork_launch)
        body = list(launcher)
        if need_sync:
            body.append(call_stmt("cudaDeviceSynchronize"))
        lane0 = bin_("==", bin_("%", thread_idx(), intlit(WARP_WIDTH)),
                     intlit(0))
        section: list[Stmt] = [
            call_stmt("__syncwarp"),
            if_(lane0, block(*body)),
        ]
        if need_sync:
            section.append(call_stmt("__syncwarp"))
        return section

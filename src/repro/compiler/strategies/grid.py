"""Grid-level consolidation: a single buffer and a single consolidated
launch for the whole parent grid.

Maximum aggregation — the launch overhead all but disappears and the one
drain kernel can be configured to own the entire device (KC_1) — at the
price of the custom exit-style global barrier (``__dp_grid_arrive_last``)
and the longest wait: no child work starts until the *last* parent block
arrives. Postwork cannot stay inline (most parent blocks have exited by
then), so it is consolidated into a separate kernel launched by the last
block (§IV.C step 5).
"""

from __future__ import annotations

from typing import Optional

from ...frontend.ast_nodes import Expr, ExprStmt, Stmt
from ..builders import (
    bin_,
    block,
    block_dim,
    call,
    call_stmt,
    grid_dim,
    if_,
    intlit,
    thread_idx,
)
from ...sim.dp import GRAN_GRID
from .base import ConsolidationStrategy


class GridStrategy(ConsolidationStrategy):
    name = "grid"
    gran_code = GRAN_GRID
    kc_concurrency = 1
    consolidates_postwork = True
    tradeoff = ("maximum aggregation, one drain kernel owns the device; "
                "global barrier delays children until the last parent "
                "block, postwork moves to a separate kernel")

    def scope_threads(self) -> Expr:
        return bin_("*", block_dim(), grid_dim())

    def designated_section(self, launcher: list[Stmt], need_sync: bool,
                           postwork_launch: Optional[ExprStmt]) -> list[Stmt]:
        body = list(launcher)
        if need_sync or postwork_launch is not None:
            body.append(call_stmt("cudaDeviceSynchronize"))
        if postwork_launch is not None:
            body.append(postwork_launch)
        return [
            call_stmt("__syncthreads"),
            if_(bin_("==", thread_idx(), intlit(0)),
                block(if_(call("__dp_grid_arrive_last"), block(*body)))),
        ]

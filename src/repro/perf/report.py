"""Deep-profile reports: per-kernel attribution, hotspots, Chrome export.

Consumes a finished :class:`~repro.perf.collect.ProfileCollector` and
produces:

* :func:`build_profile` — a :class:`DeepProfile` merging the two halves
  of attribution: trace-derived stats (busy cycles, warp efficiency,
  barrier stalls — from the :class:`BlockTrace` forest the run already
  recorded) and run-time counters (DRAM/L2 deltas per round, push
  contention, divergent-vs-uniform rounds — from the collector), plus
  an exact occupancy/active-kernels step function from a re-scheduled
  timeline.
* :func:`render_profile` — the deterministic ``repro profile`` table
  with a hotspot ranking (byte-identical across runs of the same spec).
* :func:`profile_chrome_trace` / :func:`write_profile_trace` — the
  kernel timeline + occupancy counter track as Chrome trace-event JSON
  (same envelope and writer as :mod:`repro.telemetry.export`).

The reconciliation invariant: the re-scheduled makespan is computed
without a memory system, which the scheduler only uses for overhead
*counter* charging, never timing — so ``rescheduled_cycles`` equals
``RunMetrics.cycles`` exactly, and the table's total line is provably
the same quantity the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.profiler import instance_trace_stats
from ..sim.timeline import capture_timeline
from .collect import ProfileCollector

#: stamped into exported profile JSON
PROFILE_FORMAT = "repro-perf-profile/1"


@dataclass
class KernelRow:
    """Aggregated attribution for one kernel (by name × launch origin)."""

    name: str
    from_device: bool
    instances: int = 0
    busy_cycles: int = 0
    warp_steps: int = 0
    active_lane_steps: int = 0
    barrier_stall_cycles: int = 0
    launches: int = 0
    dram_transactions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    rounds_uniform: int = 0
    rounds_divergent: int = 0
    rounds_batched: int = 0
    pushes_by_scope: dict = field(default_factory=dict)
    push_cycles: int = 0
    pops: int = 0
    pop_cycles: int = 0
    buffers_by_scope: dict = field(default_factory=dict)
    acquire_cycles: int = 0

    @property
    def label(self) -> str:
        return self.name + (" <dp>" if self.from_device else "")

    @property
    def warp_efficiency(self) -> float:
        if not self.warp_steps:
            return 0.0
        return self.active_lane_steps / (self.warp_steps * 32)

    @property
    def rounds(self) -> int:
        return self.rounds_uniform + self.rounds_divergent

    @property
    def pushes(self) -> int:
        return sum(self.pushes_by_scope.values())


@dataclass
class DeepProfile:
    """Everything ``repro profile`` renders, as plain data."""

    label: str
    #: sum of RunMetrics.cycles over the run's synchronize points
    total_cycles: float = 0.0
    #: makespan of the memsys-free re-schedule (must equal total_cycles)
    rescheduled_cycles: float = 0.0
    kernels: list[KernelRow] = field(default_factory=list)
    #: (t, resident_warps, active_kernels) step function, cross-segment
    occupancy: list[tuple] = field(default_factory=list)
    #: (name, from_device, depth, start, duration, grid, block) spans
    spans: list[tuple] = field(default_factory=list)
    dram_transactions: int = 0
    overhead_transactions: dict = field(default_factory=dict)
    warp_execution_efficiency: float = 0.0
    achieved_occupancy: float = 0.0
    max_resident_warps: int = 0

    @property
    def busy_cycles(self) -> int:
        return sum(k.busy_cycles for k in self.kernels)

    @property
    def attributed_dram(self) -> int:
        return sum(k.dram_transactions for k in self.kernels)

    @property
    def scheduler_dram(self) -> int:
        """Overhead traffic charged at timing time (parent swaps and
        virtual-pool spills), which no functional round can own."""
        return self.dram_transactions - self.attributed_dram

    def hotspots(self, n: int = 3) -> list[KernelRow]:
        return self.kernels[:n]


def build_profile(collector: ProfileCollector, label: str = "") -> DeepProfile:
    """Merge collector counters with the recorded instance forests."""
    profile = DeepProfile(label=label)
    rows: dict[tuple, KernelRow] = {}
    offset = 0.0
    for seg in collector.segments:
        metrics = seg.metrics
        profile.total_cycles += metrics.cycles
        # cumulative memory-system counters: the last segment's metrics
        # already include every earlier segment of this run
        profile.dram_transactions = metrics.dram_transactions
        profile.overhead_transactions = dict(metrics.overhead_transactions)
        profile.warp_execution_efficiency = metrics.warp_execution_efficiency
        profile.achieved_occupancy = metrics.achieved_occupancy
        profile.max_resident_warps = seg.spec.max_resident_warps
        timeline = capture_timeline(seg.roots, seg.spec, seg.cost,
                                    occupancy=True)
        profile.rescheduled_cycles += timeline.makespan
        for sample in timeline.occupancy:
            profile.occupancy.append((sample.t + offset,
                                      sample.resident_warps,
                                      sample.active_kernels))
        for sp in timeline.spans:
            profile.spans.append((sp.name, sp.from_device, sp.depth,
                                  sp.start + offset, sp.duration,
                                  sp.grid, sp.block_dim))
        for root in seg.roots:
            for inst in root.subtree():
                row = rows.setdefault(
                    (inst.name, inst.from_device),
                    KernelRow(name=inst.name, from_device=inst.from_device))
                row.instances += 1
                stats = instance_trace_stats(inst)
                row.busy_cycles += stats["busy_cycles"]
                row.warp_steps += stats["warp_steps"]
                row.active_lane_steps += stats["active_lane_steps"]
                row.barrier_stall_cycles += stats["barrier_stall_cycles"]
                row.launches += stats["launches"]
                counters = collector.instances.get(inst.uid)
                if counters is not None:
                    row.dram_transactions += counters.dram_transactions
                    row.l2_hits += counters.l2_hits
                    row.l2_misses += counters.l2_misses
                    row.rounds_uniform += counters.rounds_uniform
                    row.rounds_divergent += counters.rounds_divergent
                    row.rounds_batched += counters.rounds_batched
                    for scope, n in counters.pushes_by_scope.items():
                        row.pushes_by_scope[scope] = \
                            row.pushes_by_scope.get(scope, 0) + n
                    row.push_cycles += counters.push_cycles
                    row.pops += counters.pops
                    row.pop_cycles += counters.pop_cycles
                    for scope, n in counters.buffers_by_scope.items():
                        row.buffers_by_scope[scope] = \
                            row.buffers_by_scope.get(scope, 0) + n
                    row.acquire_cycles += counters.acquire_cycles
        offset += timeline.makespan
    profile.kernels = sorted(rows.values(),
                             key=lambda r: (-r.busy_cycles, r.label))
    return profile


# ------------------------------------------------------------------ rendering


def _pct(num: float, den: float) -> str:
    return f"{100.0 * num / den:.1f}%" if den else "-"


def render_profile(profile: DeepProfile, top: int = 0) -> str:
    """The ``repro profile`` text report. Deterministic for a
    deterministic run: every number is exact sim state, every float is
    printed with fixed precision, and row order is (busy cycles desc,
    label) — so two runs of one spec render byte-identically."""
    from ..experiments.reporting import Table

    title = "per-kernel attribution"
    if profile.label:
        title += f" — {profile.label}"
    table = Table(title=title, columns=[
        "kernel", "inst", "busy-cy", "busy%", "warp-eff", "stall-cy",
        "dram", "rounds", "div%", "batched%", "pushes", "push-cy",
    ])
    busy_total = profile.busy_cycles
    rows = profile.kernels[:top] if top else profile.kernels
    for row in rows:
        pushes = row.pushes
        push_text = "-"
        if pushes:
            scopes = "+".join(f"{scope}:{n}" for scope, n in
                              sorted(row.pushes_by_scope.items()))
            push_text = f"{pushes} ({scopes})"
        table.add(
            row.label, str(row.instances), f"{row.busy_cycles:,}",
            _pct(row.busy_cycles, busy_total),
            f"{row.warp_efficiency:.1%}",
            f"{row.barrier_stall_cycles:,}",
            f"{row.dram_transactions:,}", f"{row.rounds:,}",
            _pct(row.rounds_divergent, row.rounds),
            _pct(row.rounds_batched, row.rounds),
            push_text, f"{row.push_cycles:,}",
        )
    if top and len(profile.kernels) > top:
        table.notes.append(
            f"{len(profile.kernels) - top} more kernels elided (--top)")
    lines = [table.render()]
    lines.append("")
    lines.append("hotspots (by busy cycles):")
    for i, row in enumerate(profile.hotspots(), 1):
        lines.append(f"  {i}. {row.label:32s} "
                     f"{_pct(row.busy_cycles, busy_total):>6s} of busy, "
                     f"{_pct(row.dram_transactions, profile.dram_transactions):>6s} of DRAM")
    lines.append("")
    lines.append(f"makespan          : {profile.total_cycles:,.0f} cycles "
                 f"(re-scheduled: {profile.rescheduled_cycles:,.0f})")
    lines.append(f"warp efficiency   : "
                 f"{profile.warp_execution_efficiency:.1%} run-wide")
    lines.append(f"occupancy         : {profile.achieved_occupancy:.1%} "
                 f"achieved ({len(profile.occupancy)} timeline steps)")
    overhead = sum(profile.overhead_transactions.values())
    tags = ", ".join(f"{k}={v}" for k, v in
                     sorted(profile.overhead_transactions.items()))
    lines.append(f"DRAM transactions : {profile.dram_transactions:,} total = "
                 f"{profile.attributed_dram:,} kernel-attributed + "
                 f"{profile.scheduler_dram:,} scheduler-time "
                 f"(overhead incl. in-round: {overhead:,}; {tags})" if tags
                 else f"DRAM transactions : {profile.dram_transactions:,}")
    return "\n".join(lines)


def render_occupancy(profile: DeepProfile, width: int = 64,
                     max_rows: int = 24) -> str:
    """ASCII occupancy timeline (deterministically downsampled)."""
    if not profile.occupancy or profile.total_cycles <= 0:
        return "(no occupancy samples)"
    samples = profile.occupancy
    step = max(1, len(samples) // max_rows)
    shown = samples[::step]
    peak = max(1, profile.max_resident_warps)
    lines = ["t(cycles)        warps  kernels"]
    for t, warps, kernels in shown:
        bar = "#" * int(round(width * warps / peak))
        lines.append(f"{t:>14,.0f}  {warps:>5d}  {kernels:>7d}  |{bar}")
    if step > 1:
        lines.append(f"... ({len(samples)} transitions, showing every "
                     f"{step}th)")
    return "\n".join(lines)


# ---------------------------------------------------------------- exporters


def profile_to_json(profile: DeepProfile) -> dict:
    """JSON-able view of the profile (``--json`` / RunConfig(profile=...))."""
    return {
        "format": PROFILE_FORMAT,
        "label": profile.label,
        "total_cycles": profile.total_cycles,
        "rescheduled_cycles": profile.rescheduled_cycles,
        "warp_execution_efficiency": profile.warp_execution_efficiency,
        "achieved_occupancy": profile.achieved_occupancy,
        "dram_transactions": profile.dram_transactions,
        "overhead_transactions": dict(sorted(
            profile.overhead_transactions.items())),
        "kernels": [{
            "kernel": row.label,
            "instances": row.instances,
            "busy_cycles": row.busy_cycles,
            "warp_efficiency": row.warp_efficiency,
            "barrier_stall_cycles": row.barrier_stall_cycles,
            "dram_transactions": row.dram_transactions,
            "l2_hits": row.l2_hits,
            "l2_misses": row.l2_misses,
            "rounds_uniform": row.rounds_uniform,
            "rounds_divergent": row.rounds_divergent,
            "rounds_batched": row.rounds_batched,
            "pushes_by_scope": dict(sorted(row.pushes_by_scope.items())),
            "push_cycles": row.push_cycles,
            "pops": row.pops,
            "pop_cycles": row.pop_cycles,
            "launches": row.launches,
        } for row in profile.kernels],
        "occupancy": [list(s) for s in profile.occupancy],
    }


def profile_chrome_trace(profile: DeepProfile) -> dict:
    """Kernel timeline + occupancy counters as Chrome trace-event JSON.

    Reuses the telemetry trace envelope (``otherData.format``), with one
    difference in units: timestamps are simulated *cycles*, not wall
    microseconds. Kernel lifetimes are ``ph: "X"`` complete events on a
    per-nesting-depth track; occupancy/active-kernel series are
    ``ph: "C"`` counter events, which Perfetto renders as a filled area.
    """
    from ..telemetry.export import TRACE_FORMAT

    events = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": f"simulated GPU ({profile.label})"
                  if profile.label else "simulated GPU"}},
    ]
    depths = sorted({sp[2] for sp in profile.spans})
    for depth in depths:
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": depth + 1,
                       "args": {"name": f"dp-depth-{depth}"}})
    for name, from_device, depth, start, duration, grid, block in \
            profile.spans:
        events.append({
            "name": name, "cat": "kernel", "ph": "X",
            "ts": round(start, 3), "dur": round(max(0.0, duration), 3),
            "pid": 0, "tid": depth + 1,
            "args": {"grid": grid, "block": block,
                     "from_device": from_device},
        })
    for t, warps, kernels in profile.occupancy:
        events.append({
            "name": "occupancy", "ph": "C", "ts": round(t, 3),
            "pid": 0, "tid": 0,
            "args": {"resident_warps": warps, "active_kernels": kernels},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"format": TRACE_FORMAT,
                      "profile": PROFILE_FORMAT,
                      "unit": "cycles",
                      "kernel_spans": len(profile.spans),
                      "occupancy_samples": len(profile.occupancy)},
    }


def write_profile(path, profile: DeepProfile) -> str:
    """Write the profile JSON (not the Chrome trace) to ``path``."""
    import json
    import os

    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile_to_json(profile), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def write_profile_trace(path, profile: DeepProfile) -> str:
    """Write the Chrome trace of the profile timeline to ``path``."""
    from ..telemetry.export import write_trace_object

    return write_trace_object(path, profile_chrome_trace(profile))

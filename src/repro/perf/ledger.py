"""Append-only performance ledger: the repo's perf trajectory on disk.

Every bench emits a ``BENCH_<name>.json`` envelope (:mod:`benchmarks/_emit`);
this module ingests those envelopes into a content-keyed JSONL ledger
living beside the result store (``<cache-dir>/perf-ledger.jsonl``), one
record per numeric cell::

    {"bench": "fig7_overall", "cell": "speedups.sssp.grid-level",
     "value": 2.07, "sha": "288d2f4", "ts": 1754630000.0,
     "version": "...", "envelope_sha": "ab12..."}

Content keying makes ingestion idempotent: the envelope's canonical
JSON is hashed, and an envelope whose hash the ledger already holds is
skipped — re-running ``repro perf ingest`` over the same artifacts never
duplicates history. ``repro perf diff`` compares each cell's newest
value against its most recent *differently-keyed* predecessor, with a
noise floor below which changes are ignored, and ``repro perf check``
exits nonzero when a cell moved in its *bad* direction beyond the
threshold — the CI regression gate.

Cell direction is inferred from the metric name (``speedup``/``jobs_per_s``
up, ``wall_s``/``cycles``/``dram`` down); unrecognized cells are reported
but never gated, so a new bench can't fail CI until its cells are named
recognizably. Everything here is stdlib-only and import-light (the
cache-dir helper loads lazily) so the CLI can ingest without dragging
the sim in.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

#: record schema version (bump on shape changes; readers skip unknown)
LEDGER_FORMAT = 1

#: overrides `git rev-parse` for the recorded commit id (CI sets it)
GIT_SHA_ENV = "REPRO_GIT_SHA"

#: ledger filename, beside the ResultStore shards
LEDGER_NAME = "perf-ledger.jsonl"

#: default gate: relative worsening beyond this fails `repro perf check`
DEFAULT_THRESHOLD = 0.10
#: relative changes at or below this are noise, never reported as deltas
DEFAULT_NOISE_FLOOR = 0.02

#: name fragments marking a cell where bigger is better — checked first,
#: so `cache_hit_rate` lands on "higher" before "_rate" could mislead
_HIGHER = ("speedup", "per_s", "throughput", "jobs", "gain", "efficien",
           "occupancy", "hit_rate", "rho", "coverage", "dedup")
#: fragments marking a cell where smaller is better
_LOWER = ("wall", "second", "latency", "_ms", "_s", "p50", "p95", "p99",
          "cycle", "dram", "transaction", "miss", "stall", "overhead",
          "dropped", "bytes", "time", "evaluation", "simulation")


def cell_direction(cell: str) -> Optional[str]:
    """'higher' | 'lower' | None (unknown: reported, never gated)."""
    name = cell.lower()
    for frag in _HIGHER:
        if frag in name:
            return "higher"
    for frag in _LOWER:
        if frag in name:
            return "lower"
    return None


def git_sha() -> str:
    """The commit id to stamp records with ($REPRO_GIT_SHA, else git)."""
    sha = os.environ.get(GIT_SHA_ENV)
    if sha:
        return sha
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True, timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def default_ledger_path(cache_dir=None) -> Path:
    from ..experiments.store import default_cache_dir

    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / LEDGER_NAME


def flatten_payload(payload, prefix: str = "") -> dict:
    """Numeric leaves of a nested payload as '.'-joined cells.

    Booleans and strings are skipped (they are labels, not measurements);
    lists index their elements so positional series stay diffable.
    """
    out: dict = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            sub = flatten_payload(payload[key],
                                  f"{prefix}.{key}" if prefix else str(key))
            out.update(sub)
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            out.update(flatten_payload(item, f"{prefix}.{i}"))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        if prefix:
            out[prefix] = float(payload)
    return out


def envelope_sha(envelope: dict) -> str:
    """Content key of one bench envelope (canonical-JSON sha256)."""
    canonical = json.dumps(envelope, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class Delta:
    """One cell's newest value against its previous distinct ingest."""

    bench: str
    cell: str
    baseline: float
    current: float
    direction: Optional[str]
    baseline_sha: str
    current_sha: str

    @property
    def change(self) -> float:
        """Signed relative change vs baseline (0.1 = +10%)."""
        return (self.current - self.baseline) / self.baseline

    @property
    def worsening(self) -> Optional[float]:
        """Relative move in the cell's *bad* direction (None: unknown
        direction, never gated)."""
        if self.direction == "higher":
            return -self.change
        if self.direction == "lower":
            return self.change
        return None

    def describe(self) -> str:
        arrow = {"higher": "(higher is better)",
                 "lower": "(lower is better)",
                 None: "(direction unknown, not gated)"}[self.direction]
        return (f"{self.bench}:{self.cell} {self.baseline:g} -> "
                f"{self.current:g} ({self.change:+.1%}) {arrow} "
                f"[{self.baseline_sha} -> {self.current_sha}]")


class PerfLedger:
    """The JSONL ledger: atomic appends, idempotent envelope ingestion,
    baseline-vs-current deltas and the regression gate."""

    def __init__(self, path):
        self.path = Path(path)

    # ------------------------------------------------------------- reading

    def records(self) -> list[dict]:
        if not self.path.exists():
            return []
        out = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn/foreign line: skip, never crash perf CLI
                if isinstance(rec, dict) and rec.get("format") == LEDGER_FORMAT:
                    out.append(rec)
        return out

    def known_envelopes(self) -> set:
        return {rec.get("envelope_sha") for rec in self.records()}

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------ ingestion

    def ingest_envelope(self, envelope: dict, sha: Optional[str] = None,
                        ts: Optional[float] = None) -> int:
        """Append one bench envelope's numeric cells; returns the number
        of records written (0 when this exact envelope is already in —
        ingestion is idempotent by content key)."""
        if not isinstance(envelope, dict) or "bench" not in envelope \
                or "payload" not in envelope:
            raise ValueError("not a bench envelope (needs bench + payload); "
                             "benches emit these via benchmarks/_emit.py")
        key = envelope_sha(envelope)
        if key in self.known_envelopes():
            return 0
        cells = flatten_payload(envelope["payload"])
        if not cells:
            return 0
        sha = sha if sha is not None else git_sha()
        ts = ts if ts is not None else time.time()
        lines = []
        for cell, value in sorted(cells.items()):
            lines.append(json.dumps({
                "format": LEDGER_FORMAT,
                "bench": envelope["bench"],
                "cell": cell,
                "value": value,
                "sha": sha,
                "ts": ts,
                "version": envelope.get("version", "unknown"),
                "envelope_sha": key,
            }, sort_keys=True))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # a crashed writer can leave a newline-less tail; start a fresh
        # line so its torn record stays isolated instead of swallowing ours
        prefix = ""
        if self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    prefix = "\n"
        # one write + flush: concurrent ingests may interleave envelopes
        # but never tear a line (O_APPEND semantics)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(prefix + "\n".join(lines) + "\n")
            fh.flush()
        return len(lines)

    def ingest_file(self, path) -> tuple[str, int]:
        with open(path, encoding="utf-8") as fh:
            envelope = json.load(fh)
        n = self.ingest_envelope(envelope)
        return envelope.get("bench", "?"), n

    def ingest_dir(self, directory,
                   pattern: str = "BENCH_*.json") -> list[tuple[str, int]]:
        out = []
        for path in sorted(Path(directory).glob(pattern)):
            out.append(self.ingest_file(path))
        return out

    # -------------------------------------------------------------- history

    def history(self, bench: Optional[str] = None,
                cell: Optional[str] = None) -> list[dict]:
        """Records in append order, optionally filtered."""
        return [rec for rec in self.records()
                if (bench is None or rec["bench"] == bench)
                and (cell is None or cell in rec["cell"])]

    def series(self) -> dict:
        """(bench, cell) -> records in append order."""
        out: dict = {}
        for rec in self.records():
            out.setdefault((rec["bench"], rec["cell"]), []).append(rec)
        return out

    # ---------------------------------------------------------------- diffs

    def diff(self, noise_floor: float = DEFAULT_NOISE_FLOOR) -> list[Delta]:
        """Each cell's newest value vs its last differently-keyed
        predecessor, changes at or below the noise floor dropped."""
        deltas = []
        for (bench, cell), recs in sorted(self.series().items()):
            current = recs[-1]
            baseline = next(
                (rec for rec in reversed(recs[:-1])
                 if rec["envelope_sha"] != current["envelope_sha"]), None)
            if baseline is None or baseline["value"] == 0:
                continue
            delta = Delta(bench=bench, cell=cell,
                          baseline=float(baseline["value"]),
                          current=float(current["value"]),
                          direction=cell_direction(cell),
                          baseline_sha=baseline.get("sha", "?"),
                          current_sha=current.get("sha", "?"))
            if abs(delta.change) <= noise_floor:
                continue
            deltas.append(delta)
        return deltas

    def check(self, threshold: float = DEFAULT_THRESHOLD,
              noise_floor: float = DEFAULT_NOISE_FLOOR
              ) -> tuple[list[Delta], list[Delta]]:
        """(regressions, improvements-or-informational) beyond the noise
        floor. A cell regresses when it moved in its bad direction by
        more than ``threshold``; unknown-direction cells never regress."""
        regressions, other = [], []
        for delta in self.diff(noise_floor=noise_floor):
            worsening = delta.worsening
            if worsening is not None and worsening > threshold:
                regressions.append(delta)
            else:
                other.append(delta)
        return regressions, other

"""Deep-profiling collector: per-kernel-instance counter attribution.

The sim's :class:`~repro.sim.profiler.RunMetrics` are whole-run scalars;
this module adds the *attribution* layer underneath them — which kernel
spent the cycles, issued the DRAM transactions, fought over the
consolidation-buffer insertion counter, or ran divergent rounds.

Activation mirrors telemetry tracing (:mod:`repro.telemetry.trace`): a
ContextVar holds the active :class:`ProfileCollector`; engines, the DP
runtime and the Device read it once at construction and carry a plain
attribute, so the *disabled* path costs one ``is not None`` check per
round and allocates nothing. The collector only ever *reads* simulator
state (memory-system counter deltas around each round, the per-push
cycle price the runtime already computed) — it never prices anything
itself, which is the structural half of the never-perturb argument
(DESIGN.md §17): a profiled run executes the exact same code path with
the exact same costs, so ``RunMetrics`` stay bitwise identical.

Round classification (the ROADMAP's "deepen the vectorized engine"
signal): a round whose gathered lane events share one opcode is
*uniform*, mixed opcodes make it *divergent*, and *batched* counts the
uniform rounds the vectorized engine actually processed through a NumPy
fast path (always 0 on the scalar engine).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class InstanceProfile:
    """Counters attributed to one kernel instance during execution."""

    uid: int
    name: str
    from_device: bool
    depth: int
    #: round breakdown — uniform (one opcode), divergent (mixed),
    #: batched (uniform rounds taken by a vectorized fast path)
    rounds_uniform: int = 0
    rounds_divergent: int = 0
    rounds_batched: int = 0
    active_lane_events: int = 0
    #: memory-system counter deltas over this instance's rounds
    dram_transactions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    #: consolidation-buffer traffic by scope name ('warp'/'block'/'grid')
    pushes_by_scope: dict = field(default_factory=dict)
    #: cycles the runtime charged for pushes (atomic contention on the
    #: insertion counter + slot stores) and pops (buf_get reads)
    push_cycles: int = 0
    pops: int = 0
    pop_cycles: int = 0
    buffers_by_scope: dict = field(default_factory=dict)
    acquire_cycles: int = 0

    @property
    def rounds(self) -> int:
        return self.rounds_uniform + self.rounds_divergent


@dataclass
class ProfileSegment:
    """One synchronize()'s worth of finished work: the instance forest,
    the fused metrics, and the device spec/cost needed to re-schedule
    it for the occupancy timeline."""

    roots: list
    metrics: object
    spec: object
    cost: object


class ProfileCollector:
    """Accumulates per-instance counters across one profiled run.

    Engines bracket each instance's block loop with :meth:`enter` /
    :meth:`exit` (the stack nests across ``cudaDeviceSynchronize``
    children, which run inside the parent's bracket), and report each
    priced round with :meth:`record_round`. The DP runtime reports
    buffer operations against the instance currently on top.
    """

    def __init__(self):
        self.instances: dict[int, InstanceProfile] = {}
        self.segments: list[ProfileSegment] = []
        self._stack: list[InstanceProfile] = []

    # ------------------------------------------------------- engine hooks

    def enter(self, inst) -> None:
        prof = self.instances.get(inst.uid)
        if prof is None:
            prof = InstanceProfile(uid=inst.uid, name=inst.name,
                                   from_device=inst.from_device,
                                   depth=inst.depth)
            self.instances[inst.uid] = prof
        self._stack.append(prof)

    def exit(self) -> None:
        self._stack.pop()

    def record_round(self, op0: int, active: int, dram: int, l2_hits: int,
                     l2_misses: int, batched: bool) -> None:
        """One priced warp round of the instance on top of the stack.

        ``op0`` is the engines' opcode-uniformity marker (an opcode when
        every gathered event shares it, ``-2`` when mixed, ``-1`` when
        the round carried only state transitions); the counter arguments
        are memory-system deltas across the round.
        """
        prof = self._stack[-1]
        if op0 == -2:
            prof.rounds_divergent += 1
        else:
            prof.rounds_uniform += 1
            if batched:
                prof.rounds_batched += 1
        prof.active_lane_events += active
        prof.dram_transactions += dram
        prof.l2_hits += l2_hits
        prof.l2_misses += l2_misses

    # ----------------------------------------------------- DP runtime hooks

    def record_push(self, scope: str, n: int, cycles: int) -> None:
        prof = self._stack[-1] if self._stack else None
        if prof is None:
            return
        prof.pushes_by_scope[scope] = prof.pushes_by_scope.get(scope, 0) + n
        prof.push_cycles += cycles

    def record_pop(self, n: int, cycles: int) -> None:
        prof = self._stack[-1] if self._stack else None
        if prof is None:
            return
        prof.pops += n
        prof.pop_cycles += cycles

    def record_acquire(self, scope: str, cycles: int) -> None:
        prof = self._stack[-1] if self._stack else None
        if prof is None:
            return
        prof.buffers_by_scope[scope] = \
            prof.buffers_by_scope.get(scope, 0) + 1
        prof.acquire_cycles += cycles

    # ------------------------------------------------------------- finalize

    def finalize(self, roots: list, metrics, spec, cost) -> None:
        """Called by ``Device.synchronize`` with the finished forest and
        its fused metrics (before the device clears its root list)."""
        self.segments.append(ProfileSegment(roots=roots, metrics=metrics,
                                            spec=spec, cost=cost))

    @property
    def total_cycles(self) -> float:
        return sum(seg.metrics.cycles for seg in self.segments)


# ---------------------------------------------------------------- activation

#: the active collector for the current context; None = profiling off
_STATE: ContextVar[Optional[ProfileCollector]] = ContextVar(
    "repro_perf_collector", default=None)


def active_collector() -> Optional[ProfileCollector]:
    """The collector bound in this context, or None (profiling off)."""
    return _STATE.get()


@contextmanager
def profiling(collector: Optional[ProfileCollector] = None):
    """Bind a collector so Devices constructed inside attach to it::

        with profiling() as collector:
            run = app.run(cfg)
        profile = build_profile(collector)

    Like ``RunConfig(trace=...)``, this is observational only: results,
    ``RunMetrics`` and cache keys are bitwise/byte identical with and
    without an active collector (regression-tested in tests/test_perf.py).
    """
    if collector is None:
        collector = ProfileCollector()
    token = _STATE.set(collector)
    try:
        yield collector
    finally:
        _STATE.reset(token)

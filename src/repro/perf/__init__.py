"""repro.perf — simulated-GPU deep profiler and performance ledger.

Two halves:

- **Deep profiler** (:mod:`.collect`, :mod:`.report`): activate a
  :class:`ProfileCollector` with the :func:`profiling` context manager,
  run any sim workload, then :func:`~repro.perf.report.build_profile`
  turns what the engines recorded into a per-kernel attribution table,
  hotspot ranking, occupancy timeline and Chrome-trace export. Purely
  observational: profiled runs produce bitwise-identical
  :class:`~repro.sim.profiler.RunMetrics` and identical cache keys.

- **Perf ledger** (:mod:`.ledger`): content-keyed JSONL history of every
  bench envelope, with baseline-vs-current deltas and the
  ``repro perf check`` regression gate.

Only the collection layer is imported here: :mod:`repro.sim.device`
reads :func:`active_collector` at Device construction, so this package
must not import the sim back (``report`` does, for timeline capture —
import it explicitly).
"""

from .collect import (InstanceProfile, ProfileCollector, ProfileSegment,
                      active_collector, profiling)

__all__ = [
    "InstanceProfile",
    "ProfileCollector",
    "ProfileSegment",
    "active_collector",
    "profiling",
]

"""MiniCUDA AST -> Python generator source.

Every MiniCUDA function compiles to a Python *generator function*:

* global-memory accesses become ``yield`` events consumed by the SIMT
  engine (:mod:`repro.sim.engine`), which performs the access, prices the
  traffic, and sends the result back;
* locals map to Python locals; local arrays to Python lists; ``__shared__``
  declarations to per-block lists obtained from the thread context;
* device-function calls become ``yield from`` delegation, so nested memory
  events flow through transparently;
* kernel launches become ``LAUNCH`` events carrying the callee *name* —
  binding happens in the engine's registry, which is what lets compiler-
  generated consolidated kernels launch each other recursively.

The module must have been through :func:`repro.frontend.check_module`
first: codegen relies on the ``.ty`` annotations for C division semantics
and pointer-vs-scalar decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CodegenError
from ..frontend.ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Break,
    BuiltinVar,
    Call,
    Cast,
    Continue,
    DeclStmt,
    DoWhile,
    EmptyStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    Ident,
    If,
    IncDec,
    Index,
    IntLit,
    LaunchExpr,
    PragmaStmt,
    Return,
    Stmt,
    StringLit,
    Ternary,
    UnOp,
    VarDeclarator,
    While,
    walk,
)
from ..frontend.symbols import BUILTIN_CONSTANTS
from ..frontend.typecheck import ModuleInfo

_ATOMIC_OPS = {
    "atomicAdd": "add",
    "atomicSub": "sub",
    "atomicMin": "min",
    "atomicMax": "max",
    "atomicExch": "exch",
    "atomicCAS": "cas",
    "atomicOr": "or",
    "atomicAnd": "and",
}

_MATH_FNS = {
    "sqrtf": "_sqrtf",
    "sqrt": "_sqrtf",
    "expf": "_expf",
    "logf": "_logf",
    "powf": "_powf",
    "floorf": "_floorf",
    "ceilf": "_ceilf",
    "fabsf": "_fabs",
    "fabs": "_fabs",
    "abs": "abs",
    "min": "min",
    "max": "max",
}

#: kinds a name can have inside a function body
_SCALAR = "scalar"
_PTR = "ptr"
_LOCAL_ARRAY = "local_array"
_SHARED_ARRAY = "shared_array"   # __shared__ int s[N] -> per-block list
_SHARED_SCALAR = "shared_scalar" # __shared__ int n    -> one-element list


def mangle(name: str) -> str:
    return "__mc_" + name


@dataclass
class _FnScope:
    kinds: dict[str, str] = field(default_factory=dict)


class FunctionCompiler:
    def __init__(self, fn: FunctionDef, module_info: ModuleInfo):
        self.fn = fn
        self.info = module_info
        self.lines: list[str] = []
        self.indent = 1
        self.kinds: list[dict[str, str]] = [{}]
        self.temp_counter = 0
        self.has_yield = False

    # -------------------------------------------------------------- helpers

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, stem: str = "t") -> str:
        self.temp_counter += 1
        return f"__{stem}{self.temp_counter}"

    def push_scope(self) -> None:
        self.kinds.append({})

    def pop_scope(self) -> None:
        self.kinds.pop()

    def declare(self, name: str, kind: str) -> None:
        self.kinds[-1][name] = kind

    def kind_of(self, name: str) -> str | None:
        for scope in reversed(self.kinds):
            if name in scope:
                return scope[name]
        if name in self.info.globals:
            decl = self.info.globals[name]
            return _PTR if decl.type.is_pointer else _SCALAR
        return None

    def err(self, message: str, node) -> CodegenError:
        return CodegenError(message, getattr(node, "loc", None))

    # --------------------------------------------------------------- driver

    def compile(self) -> str:
        params = ", ".join(p.name for p in self.fn.params)
        header = f"def {mangle(self.fn.name)}(ctx{', ' + params if params else ''}):"
        for p in self.fn.params:
            self.declare(p.name, _PTR if p.type.is_pointer else _SCALAR)
        self.compile_block(self.fn.body, new_scope=False)
        if not self.has_yield:
            # make sure the function is a generator even if it never yields
            self.emit("if False:")
            self.emit("    yield None")
        body = "\n".join(self.lines) if self.lines else "    pass"
        return header + "\n" + body

    # ----------------------------------------------------------- statements

    def compile_block(self, block: Block, new_scope: bool = True) -> None:
        if new_scope:
            self.push_scope()
        emitted = False
        for stmt in block.stmts:
            emitted = self.compile_stmt(stmt) or emitted
        if not emitted:
            self.emit("pass")
        if new_scope:
            self.pop_scope()

    def compile_stmt(self, s: Stmt) -> bool:
        """Emit a statement; returns True if any line was emitted."""
        if isinstance(s, Block):
            self.compile_block(s)
            return True
        if isinstance(s, DeclStmt):
            for d in s.declarators:
                self.compile_declarator(d, s)
            return True
        if isinstance(s, ExprStmt):
            self.compile_expr_stmt(s.expr)
            return True
        if isinstance(s, If):
            self.emit(f"if {self.truthy(s.cond)}:")
            self.indent += 1
            self.compile_stmt_as_block(s.then)
            self.indent -= 1
            if s.els is not None:
                self.emit("else:")
                self.indent += 1
                self.compile_stmt_as_block(s.els)
                self.indent -= 1
            return True
        if isinstance(s, While):
            self.emit(f"while {self.truthy(s.cond)}:")
            self.indent += 1
            self.emit("ctx.c += 1")
            self.compile_stmt_as_block(s.body)
            self.indent -= 1
            return True
        if isinstance(s, DoWhile):
            self._forbid_continue(s.body, "do-while")
            self.emit("while True:")
            self.indent += 1
            self.emit("ctx.c += 1")
            self.compile_stmt_as_block(s.body)
            self.emit(f"if not ({self.truthy(s.cond)}):")
            self.emit("    break")
            self.indent -= 1
            return True
        if isinstance(s, For):
            self._forbid_continue(s.body, "for")
            self.push_scope()
            if s.init is not None:
                self.compile_stmt(s.init)
            cond = self.truthy(s.cond) if s.cond is not None else "True"
            self.emit(f"while {cond}:")
            self.indent += 1
            self.emit("ctx.c += 1")
            self.compile_stmt_as_block(s.body)
            if s.step is not None:
                self.compile_expr_stmt(s.step)
            self.indent -= 1
            self.pop_scope()
            return True
        if isinstance(s, Return):
            if s.value is None:
                self.emit("return")
            else:
                self.emit(f"return {self.expr(s.value)}")
            return True
        if isinstance(s, Break):
            self.emit("break")
            return True
        if isinstance(s, Continue):
            self.emit("continue")
            return True
        if isinstance(s, EmptyStmt):
            return False
        if isinstance(s, PragmaStmt):
            # Directives reaching the backend have not been consumed by the
            # consolidation compiler: execute the annotated statement as-is
            # (this is exactly how the paper's basic-dp baselines run).
            return self.compile_stmt(s.stmt)
        raise self.err(f"cannot compile statement {type(s).__name__}", s)

    def compile_stmt_as_block(self, s: Stmt) -> None:
        before = len(self.lines)
        self.compile_stmt(s)
        if len(self.lines) == before:
            self.emit("pass")

    def _forbid_continue(self, body: Stmt, what: str) -> None:
        # `continue` directly inside for/do-while would skip the step /
        # condition under the Python lowering; the benchmark codes never
        # need it, so reject loudly instead of miscompiling.
        depth = 0
        for node in walk(body):
            if isinstance(node, (While, DoWhile, For)):
                depth += 1
            if isinstance(node, Continue) and depth == 0:
                raise self.err(
                    f"'continue' inside a {what} loop is not supported by the "
                    "Python backend", node,
                )

    def compile_declarator(self, d: VarDeclarator, s: DeclStmt) -> None:
        if d.array_size is not None:
            size = self.expr(d.array_size)
            if s.shared:
                self.declare(d.name, _SHARED_ARRAY)
                self.emit(f"{d.name} = ctx.shared_array({d.name!r}, {size})")
            else:
                self.declare(d.name, _LOCAL_ARRAY)
                init = "0.0" if d.type.is_float else "0"
                self.emit(f"{d.name} = [{init}] * ({size})")
            if d.init is not None:
                raise self.err("array initializers are not supported", d)
            return
        if s.shared:
            # scalar shared variable: back it with a one-element list
            self.declare(d.name, _SHARED_SCALAR)
            self.emit(f"{d.name} = ctx.shared_array({d.name!r}, 1)")
            if d.init is not None:
                self.emit(f"{d.name}[0] = {self.expr(d.init)}")
            return
        kind = _PTR if d.type.is_pointer else _SCALAR
        self.declare(d.name, kind)
        if d.init is not None:
            self.emit(f"{d.name} = {self.expr(d.init)}")
        else:
            default = "0.0" if d.type.is_float else ("None" if kind == _PTR else "0")
            self.emit(f"{d.name} = {default}")

    # ------------------------------------------------- expression statements

    def compile_expr_stmt(self, e: Expr) -> None:
        if isinstance(e, Assign):
            self.compile_assign(e)
            return
        if isinstance(e, IncDec):
            self.compile_incdec_stmt(e)
            return
        if isinstance(e, BinOp) and e.op == ",":
            self.compile_expr_stmt(e.left)
            self.compile_expr_stmt(e.right)
            return
        if isinstance(e, Call):
            code = self.call_expr(e, as_stmt=True)
            if code is not None:
                self.emit(code)
            return
        if isinstance(e, LaunchExpr):
            self.emit(self.launch_expr(e))
            return
        # any other expression: evaluate for side effects (loads)
        self.emit(f"{self.expr(e)}")

    def compile_assign(self, e: Assign) -> None:
        target = e.target
        if isinstance(target, Ident):
            kind = self.kind_of(target.name)
            if kind == _SHARED_SCALAR:
                if e.op == "=":
                    self.emit(f"{target.name}[0] = {self.expr(e.value)}")
                else:
                    self.emit(f"{target.name}[0] {e.op} {self.expr(e.value)}")
                return
            if e.op == "=":
                self.emit(f"{target.name} = {self.expr(e.value)}")
            else:
                self.emit(f"{target.name} {e.op} {self.expr(e.value)}")
            self._retype_int_assign(target, e)
            return
        if isinstance(target, Index) or (isinstance(target, UnOp) and target.op == "*"):
            base, index = self.lvalue_base_index(target)
            kind = self.base_kind(target)
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY):
                if e.op == "=":
                    self.emit(f"{base}[{index}] = {self.expr(e.value)}")
                else:
                    self.emit(f"{base}[{index}] {e.op} {self.expr(e.value)}")
                return
            # device memory
            self.has_yield = True
            if e.op == "=":
                self.emit(f"yield (ST, {base}, {index}, {self.expr(e.value)})")
            else:
                tmp = self.fresh("i")
                py_op = e.op[:-1]  # '+=' -> '+'
                self.emit(f"{tmp} = {index}")
                old = f"(yield (LD, {base}, {tmp}))"
                value = self.binop_code(py_op, old, self.expr(e.value), e.target.ty)
                self.emit(f"yield (ST, {base}, {tmp}, {value})")
            return
        raise self.err("unsupported assignment target", e)

    def _retype_int_assign(self, target: Ident, e: Assign) -> None:
        # C would truncate float->int on assignment to an int scalar; emit a
        # coercion only when the value type is float and the target is int.
        tt = getattr(e.target, "ty", None)
        vt = getattr(e.value, "ty", None)
        if tt is not None and vt is not None and tt.is_integer and vt.is_float:
            self.emit(f"{target.name} = int({target.name})")

    def compile_incdec_stmt(self, e: IncDec) -> None:
        delta = "+ 1" if e.op == "++" else "- 1"
        target = e.operand
        if isinstance(target, Ident):
            kind = self.kind_of(target.name)
            if kind == _SHARED_SCALAR:
                self.emit(f"{target.name}[0] = {target.name}[0] {delta}")
            else:
                self.emit(f"{target.name} = {target.name} {delta}")
            return
        if isinstance(target, Index) or (isinstance(target, UnOp) and target.op == "*"):
            base, index = self.lvalue_base_index(target)
            kind = self.base_kind(target)
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY):
                self.emit(f"{base}[{index}] = {base}[{index}] {delta}")
            else:
                self.has_yield = True
                tmp = self.fresh("i")
                self.emit(f"{tmp} = {index}")
                self.emit(f"yield (ST, {base}, {tmp}, (yield (LD, {base}, {tmp})) {delta})")
            return
        raise self.err("unsupported ++/-- target", e)

    # ------------------------------------------------------------- lvalues

    def lvalue_base_index(self, target: Expr) -> tuple[str, str]:
        """Return (base_code, index_code) for an Index or *p target."""
        if isinstance(target, UnOp) and target.op == "*":
            return self.expr(target.operand), "0"
        assert isinstance(target, Index)
        base = target.base
        if isinstance(base, Ident):
            return base.name, self.expr(target.index)
        # e.g. (p + k)[i]
        return self.expr(base), self.expr(target.index)

    def base_kind(self, target: Expr) -> str:
        if isinstance(target, UnOp) and target.op == "*":
            return _PTR
        assert isinstance(target, Index)
        if isinstance(target.base, Ident):
            kind = self.kind_of(target.base.name)
            if kind is None:
                raise self.err(f"unknown identifier {target.base.name!r}", target)
            return kind
        return _PTR

    # ---------------------------------------------------------- expressions

    def truthy(self, e: Expr) -> str:
        return self.expr(e)

    def expr(self, e: Expr) -> str:
        if isinstance(e, IntLit):
            return repr(e.value)
        if isinstance(e, FloatLit):
            return repr(e.value)
        if isinstance(e, BoolLit):
            return "True" if e.value else "False"
        if isinstance(e, StringLit):
            return repr(e.value)
        if isinstance(e, Ident):
            if e.name in BUILTIN_CONSTANTS and self.kind_of(e.name) is None:
                return repr(BUILTIN_CONSTANTS[e.name][1])
            kind = self.kind_of(e.name)
            if kind == _SHARED_SCALAR:
                return f"{e.name}[0]"
            return e.name
        if isinstance(e, BuiltinVar):
            return self.builtin_var(e)
        if isinstance(e, UnOp):
            return self.unop(e)
        if isinstance(e, IncDec):
            raise self.err("++/-- may only be used as a statement", e)
        if isinstance(e, BinOp):
            return self.binop(e)
        if isinstance(e, Assign):
            raise self.err("assignment may only be used as a statement", e)
        if isinstance(e, Ternary):
            return (f"({self.expr(e.then)} if {self.truthy(e.cond)} "
                    f"else {self.expr(e.els)})")
        if isinstance(e, Call):
            code = self.call_expr(e, as_stmt=False)
            assert code is not None
            return code
        if isinstance(e, LaunchExpr):
            return self.launch_expr(e)
        if isinstance(e, Index):
            return self.index_load(e)
        if isinstance(e, Cast):
            return self.cast(e)
        raise self.err(f"cannot compile expression {type(e).__name__}", e)

    def builtin_var(self, e: BuiltinVar) -> str:
        if e.dim != "x":
            return "0" if e.name in ("threadIdx", "blockIdx") else "1"
        return {
            "threadIdx": "ctx.tx",
            "blockIdx": "ctx.bx",
            "blockDim": "ctx.bdim",
            "gridDim": "ctx.gdim",
        }[e.name]

    def unop(self, e: UnOp) -> str:
        if e.op == "*":
            operand = e.operand
            # *p -> load; *(p+k) -> load at offset
            self.has_yield = True
            return f"(yield (LD, {self.expr(operand)}, 0))"
        if e.op == "&":
            # &a[i] -> pointer view (device) — typecheck restricts to Index
            target = e.operand
            assert isinstance(target, Index)
            kind = self.base_kind(target)
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY):
                raise self.err("address-of local/shared arrays is not supported", e)
            base, index = self.lvalue_base_index(target)
            return f"{base}.view({index})"
        if e.op == "!":
            return f"(not {self.expr(e.operand)})"
        if e.op == "~":
            return f"(~{self.expr(e.operand)})"
        return f"({e.op}{self.expr(e.operand)})"

    def binop(self, e: BinOp) -> str:
        op = e.op
        lt = getattr(e.left, "ty", None)
        rt = getattr(e.right, "ty", None)
        left = self.expr(e.left)
        right = self.expr(e.right)
        if op == "&&":
            return f"({left} and {right})"
        if op == "||":
            return f"({left} or {right})"
        if op == ",":
            raise self.err("comma expression only supported as a statement", e)
        # pointer arithmetic
        if lt is not None and lt.is_pointer and op in ("+", "-") and rt is not None \
                and rt.is_integer:
            sign = "" if op == "+" else "-"
            return f"{left}.view({sign}({right}))"
        if lt is not None and rt is not None and lt.is_integer and rt.is_pointer \
                and op == "+":
            return f"{right}.view({left})"
        return self.binop_code(op, left, right, lt, rt)

    def binop_code(self, op: str, left: str, right: str, lt=None, rt=None) -> str:
        both_int = (
            lt is not None and rt is not None
            and getattr(lt, "is_integer", False) and getattr(rt, "is_integer", False)
        )
        if op == "/":
            if both_int or (lt is not None and rt is None and lt.is_integer):
                return f"_idiv({left}, {right})"
            if lt is None and rt is None:
                return f"_idiv({left}, {right})"  # conservative: int semantics
            return f"({left} / {right})"
        if op == "%":
            return f"_imod({left}, {right})"
        py = {"==": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">=",
              "+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^",
              "<<": "<<", ">>": ">>"}[op]
        return f"({left} {py} {right})"

    def index_load(self, e: Index) -> str:
        base = e.base
        if isinstance(base, Ident):
            kind = self.kind_of(base.name)
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY, _SHARED_SCALAR):
                return f"{base.name}[{self.expr(e.index)}]"
            if kind is None:
                raise self.err(f"unknown identifier {base.name!r}", e)
            self.has_yield = True
            return f"(yield (LD, {base.name}, {self.expr(e.index)}))"
        # computed pointer, e.g. (p + k)[i]
        self.has_yield = True
        return f"(yield (LD, {self.expr(base)}, {self.expr(e.index)}))"

    def cast(self, e: Cast) -> str:
        inner = self.expr(e.expr)
        if e.type.is_pointer:
            return inner
        if e.type.is_float:
            return f"float({inner})"
        if e.type.base == "bool":
            return f"bool({inner})"
        return f"int({inner})"

    # -------------------------------------------------------------- calls

    def call_expr(self, e: Call, as_stmt: bool) -> str | None:
        name = e.callee
        if name == "__syncthreads" or name == "__syncwarp" or name == "__threadfence":
            self.has_yield = True
            if name == "__syncthreads":
                return "yield (SYNC,)" if as_stmt else "((yield (SYNC,)) or 0)"
            if name == "__syncwarp":
                # lockstep reconvergence point: functionally required by the
                # round-interleaved engine, priced at zero extra cycles
                # (the paper's 'implicit synchronization' for warp-level)
                return "yield (WSYNC,)" if as_stmt else "((yield (WSYNC,)) or 0)"
            return "ctx.c += 1" if as_stmt else "0"  # threadfence: free in-model
        if name == "cudaDeviceSynchronize":
            self.has_yield = True
            return "yield (DEVSYNC,)" if as_stmt else "((yield (DEVSYNC,)) or 0)"
        if name in _ATOMIC_OPS:
            return self.atomic(e, as_stmt)
        if name in _MATH_FNS:
            args = ", ".join(self.expr(a) for a in e.args)
            code = f"{_MATH_FNS[name]}({args})"
            return None if as_stmt else code
        if name == "printf":
            return None  # formatting cost is negligible and unused
        if name == "assert":
            return f"assert {self.truthy(e.args[0])}"
        if name.startswith("__dp_"):
            return self.dp_intrinsic(e, as_stmt)
        # user device function
        info = self.info.functions.get(name)
        if info is None:
            raise self.err(f"call to unknown function {name!r}", e)
        args = ", ".join(self.expr(a) for a in e.args)
        self.has_yield = True
        call = f"(yield from {mangle(name)}(ctx{', ' + args if args else ''}))"
        return call

    def atomic(self, e: Call, as_stmt: bool) -> str:
        op = _ATOMIC_OPS[e.callee]
        ptr = e.args[0]
        base, index = self.pointer_arg(ptr)
        operands = ", ".join(self.expr(a) for a in e.args[1:])
        self.has_yield = True
        code = f"(yield (ATOM, {op!r}, {base}, {index}, {operands}))"
        return code if not as_stmt else code

    def pointer_arg(self, ptr: Expr) -> tuple[str, str]:
        """Decompose a pointer-valued argument into (array, index) code."""
        if isinstance(ptr, UnOp) and ptr.op == "&":
            target = ptr.operand
            assert isinstance(target, Index)
            kind = self.base_kind(target)
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY):
                raise self.err("atomics on local/shared arrays are unsupported", ptr)
            return self.lvalue_base_index(target)
        # plain pointer expression: element 0
        return self.expr(ptr), "0"

    def dp_intrinsic(self, e: Call, as_stmt: bool) -> str:
        name = e.callee[len("__dp_"):]
        if name == "lane":
            return "ctx.lane"
        if name == "warp_id":
            return "ctx.warp_id"
        args = ", ".join(self.expr(a) for a in e.args)
        self.has_yield = True
        tup = f"({args},)" if len(e.args) == 1 else f"({args})"
        if not e.args:
            tup = "()"
        return f"(yield (INTR, {name!r}, {tup}))"

    def launch_expr(self, e: LaunchExpr) -> str:
        args = ", ".join(self.expr(a) for a in e.args)
        tup = f"({args},)" if len(e.args) == 1 else f"({args})"
        if not e.args:
            tup = "()"
        self.has_yield = True
        return (f"yield (LAUNCH, {e.callee!r}, int({self.expr(e.grid)}), "
                f"int({self.expr(e.block)}), {tup})")


_PRELUDE = '''\
"""Auto-generated by repro.backend.codegen — do not edit."""
from repro.sim.events import LD, ST, ATOM, SYNC, LAUNCH, DEVSYNC, INTR, WSYNC
from repro.backend.intrinsics import (
    _idiv, _imod, _powf, _fabs, _sqrtf, _expf, _logf, _floorf, _ceilf,
)
'''


def generate_module_source(info: ModuleInfo) -> str:
    """Compile every function of a checked module to Python source."""
    parts = [_PRELUDE]
    for fn in info.module.functions():
        compiler = FunctionCompiler(fn, info)
        parts.append(compiler.compile())
    names = ", ".join(
        f"{fn.name!r}: {mangle(fn.name)}" for fn in info.module.functions()
        if fn.is_kernel
    )
    parts.append(f"KERNELS = {{{names}}}")
    all_names = ", ".join(
        f"{fn.name!r}: {mangle(fn.name)}" for fn in info.module.functions()
    )
    parts.append(f"FUNCTIONS = {{{all_names}}}")
    return "\n\n".join(parts) + "\n"


@dataclass
class CompiledModule:
    """A loaded MiniCUDA module: kernel generator functions + metadata."""

    info: ModuleInfo
    python_source: str
    kernels: dict[str, object]
    functions: dict[str, object]


def compile_module(info: ModuleInfo, filename: str = "<minicuda>") -> CompiledModule:
    """Compile a checked module into executable generator functions."""
    source = generate_module_source(info)
    namespace: dict = {}
    code = compile(source, filename + ".py", "exec")
    exec(code, namespace)
    return CompiledModule(
        info=info,
        python_source=source,
        kernels=namespace["KERNELS"],
        functions=namespace["FUNCTIONS"],
    )

"""Runtime helpers imported by generated kernel code.

Generated code (see :mod:`repro.backend.codegen`) calls these for C
semantics that differ from Python's: truncating integer division, C
remainder sign, and the math intrinsics of the MiniCUDA builtin set.
"""

from __future__ import annotations

import math


def _idiv(a, b):
    """C integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a, b):
    """C integer remainder: sign follows the dividend."""
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def _shr(a, b):
    """Arithmetic shift right (C int semantics for non-huge values)."""
    return a >> b


_MATH_TABLE = {
    "sqrtf": math.sqrt,
    "sqrt": math.sqrt,
    "expf": math.exp,
    "logf": math.log,
    "floorf": math.floor,
    "ceilf": math.ceil,
}


def _powf(a, b):
    return float(a) ** float(b)


def _fabs(a):
    return abs(float(a))


_sqrtf = math.sqrt
_expf = math.exp
_logf = math.log
_floorf = math.floor
_ceilf = math.ceil

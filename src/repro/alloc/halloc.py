"""Slab allocator modelling *halloc* (Adinetz & Pleiter).

halloc serves small allocations from per-size-class slabs with bitmap-like
bookkeeping, which makes it faster than the default CUDA heap but still
meaningfully more expensive per operation than a pre-allocated pool (the
paper finds halloc ~on par with the default allocator for consolidation
buffers, Fig. 5 — both lose to pre-alloc).

Functional model: power-of-two size classes from 16 B to ``max_small``;
each class carves chunks out of fixed-size slabs on demand and keeps a
free stack for reuse. Larger requests fall back to a first-fit region at
the top of the heap.
"""

from __future__ import annotations

from ..errors import AllocationError
from .base import Allocator
from .cuda_default import CudaDefaultAllocator

SLAB_BYTES = 64 * 1024


class HallocAllocator(Allocator):
    kind = "halloc"

    def __init__(self, heap_base: int, heap_bytes: int, op_cycles: int,
                 contention: float = 0.0, max_small: int = 8192):
        super().__init__(heap_base, heap_bytes, op_cycles, contention)
        self.max_small = max_small
        # small-object region: first 3/4 of the heap, large fallback: rest
        self.small_limit = heap_base + (heap_bytes // 4) * 3
        self._slab_bump = heap_base
        self.free_stacks: dict[int, list[int]] = {}
        self.chunk_class: dict[int, int] = {}  # addr -> size class
        self.large = CudaDefaultAllocator(self.small_limit,
                                          heap_base + heap_bytes - self.small_limit,
                                          op_cycles)

    @staticmethod
    def _size_class(nbytes: int) -> int:
        c = 16
        while c < nbytes:
            c <<= 1
        return c

    def alloc(self, nbytes: int) -> int:
        nbytes = self._round(nbytes)
        if nbytes > self.max_small:
            addr = self.large.alloc(nbytes)
            self.chunk_class[addr] = -nbytes  # negative marks large
            self.live_bytes += nbytes
            self.stats.note_alloc(nbytes, self.live_bytes, self.op_cycles)
            return addr
        cls = self._size_class(nbytes)
        stack = self.free_stacks.setdefault(cls, [])
        if not stack:
            self._carve_slab(cls, stack)
        addr = stack.pop()
        self.chunk_class[addr] = cls
        self.live_bytes += cls
        self.stats.note_alloc(cls, self.live_bytes, self.op_cycles)
        return addr

    def _carve_slab(self, cls: int, stack: list[int]) -> None:
        if self._slab_bump + SLAB_BYTES > self.small_limit:
            self.stats.failed += 1
            raise AllocationError("halloc: small-object region exhausted")
        base = self._slab_bump
        self._slab_bump += SLAB_BYTES
        stack.extend(range(base + SLAB_BYTES - cls, base - 1, -cls))

    def free(self, addr: int) -> None:
        cls = self.chunk_class.pop(addr, None)
        if cls is None:
            raise AllocationError(f"halloc free of unallocated address 0x{addr:x}")
        if cls < 0:
            self.large.free(addr)
            self.live_bytes += cls  # cls is negative
        else:
            self.free_stacks[cls].append(addr)
            self.live_bytes -= cls
        self.stats.note_free(self.op_cycles)

    def reset(self) -> None:
        super().reset()
        self._slab_bump = self.heap_base
        self.free_stacks.clear()
        self.chunk_class.clear()
        self.large.reset()

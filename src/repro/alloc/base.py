"""Device-heap allocator interface.

§IV.E of the paper: consolidation buffers may be allocated with (1) the
default CUDA device allocator, (2) the halloc slab allocator, or (3) a
customized allocator over a pre-allocated memory pool. All three manage the
*device heap* region of :class:`repro.sim.memory.GlobalMemory` and are
functional (real address ranges, real reuse), with per-operation cycle
costs supplied by the :class:`repro.sim.specs.CostModel` so the Fig. 5
comparison is reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class AllocatorStats:
    """Operation counts and charged cycles for one allocator instance."""

    allocs: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    peak_bytes: int = 0
    cycles: int = 0
    failed: int = 0

    def note_alloc(self, nbytes: int, live_bytes: int, cycles: int) -> None:
        self.allocs += 1
        self.bytes_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, live_bytes)
        self.cycles += cycles

    def note_free(self, cycles: int) -> None:
        self.frees += 1
        self.cycles += cycles


class Allocator(abc.ABC):
    """Abstract device-heap allocator.

    ``alloc`` returns a byte address inside ``[heap_base, heap_base+heap_bytes)``
    or raises :class:`repro.errors.AllocationError`. ``op_cycles`` is the
    per-operation cost the DP runtime charges to the calling thread.
    """

    #: name used by the ``buffer(type: ...)`` pragma clause
    kind: str = "abstract"

    def __init__(self, heap_base: int, heap_bytes: int, op_cycles: int,
                 contention: float = 0.0):
        self.heap_base = heap_base
        self.heap_bytes = heap_bytes
        self.op_cycles = op_cycles
        #: lock-convoy factor: the k-th allocation of a run costs
        #: ``op_cycles * (1 + contention * k)`` (see CostModel docs)
        self.contention = contention
        self.stats = AllocatorStats()
        self.live_bytes = 0

    @abc.abstractmethod
    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` and return the byte address."""

    def charge_cycles(self) -> int:
        """Cycles the *next* allocation costs its calling thread, including
        the lock-convoy wait behind allocations already performed."""
        return int(self.op_cycles * (1 + self.contention * self.stats.allocs))

    @abc.abstractmethod
    def free(self, addr: int) -> None:
        """Release an allocation previously returned by :meth:`alloc`."""

    def reset(self) -> None:
        """Drop all allocations (used between experiment runs)."""
        self.live_bytes = 0

    # -- helpers for subclasses ---------------------------------------------

    ALIGN = 16

    @classmethod
    def _round(cls, nbytes: int) -> int:
        return max(cls.ALIGN, (nbytes + cls.ALIGN - 1) // cls.ALIGN * cls.ALIGN)

"""The paper's customized pre-allocated memory-pool allocator.

§IV.E: a memory pool (500 MB by default, ``totalSize`` clause) is reserved
up front; consolidation buffers are carved out of it with what amounts to a
single atomic bump per allocation, so the per-operation cost is tiny.
``free`` is a no-op (the pool is reset wholesale between launches/runs),
exactly like the paper's design where per-buffer regions are sized by the
``perBufferSize`` prediction and never individually recycled.
"""

from __future__ import annotations

from ..errors import AllocationError
from .base import Allocator


class PreallocPoolAllocator(Allocator):
    kind = "custom"

    def __init__(self, heap_base: int, heap_bytes: int, op_cycles: int,
                 contention: float = 0.0):
        super().__init__(heap_base, heap_bytes, op_cycles, contention)
        self._bump = heap_base

    def alloc(self, nbytes: int) -> int:
        nbytes = self._round(nbytes)
        if self._bump + nbytes > self.heap_base + self.heap_bytes:
            self.stats.failed += 1
            raise AllocationError(
                f"pre-allocated pool exhausted ({nbytes} bytes requested, "
                f"{self.heap_base + self.heap_bytes - self._bump} left); "
                "increase totalSize in the #pragma dp buffer clause"
            )
        addr = self._bump
        self._bump += nbytes
        self.live_bytes += nbytes
        self.stats.note_alloc(nbytes, self.live_bytes, self.op_cycles)
        return addr

    def free(self, addr: int) -> None:
        # Pool memory is reclaimed wholesale by reset(); individual frees
        # are free of charge and of effect, as in the paper's design.
        self.stats.note_free(0)

    def reset(self) -> None:
        super().reset()
        self._bump = self.heap_base

"""First-fit free-list allocator modelling CUDA's default device ``malloc``.

The real CUDA device allocator serializes on a global heap lock and walks
free lists; per-operation cost is high (the paper measures a 5.7x gap vs.
the pre-allocated pool at block-level consolidation and a 20x slowdown at
warp level, Fig. 5). Functionally this is a classic address-ordered
first-fit heap with boundary coalescing on free.
"""

from __future__ import annotations

from ..errors import AllocationError
from .base import Allocator


class CudaDefaultAllocator(Allocator):
    kind = "default"

    def __init__(self, heap_base: int, heap_bytes: int, op_cycles: int,
                 contention: float = 0.0):
        super().__init__(heap_base, heap_bytes, op_cycles, contention)
        # list of (addr, nbytes) free extents, address-ordered
        self.free_list: list[tuple[int, int]] = [(heap_base, heap_bytes)]
        self.allocated: dict[int, int] = {}

    def alloc(self, nbytes: int) -> int:
        nbytes = self._round(nbytes)
        for i, (addr, extent) in enumerate(self.free_list):
            if extent >= nbytes:
                if extent == nbytes:
                    del self.free_list[i]
                else:
                    self.free_list[i] = (addr + nbytes, extent - nbytes)
                self.allocated[addr] = nbytes
                self.live_bytes += nbytes
                self.stats.note_alloc(nbytes, self.live_bytes, self.op_cycles)
                return addr
        self.stats.failed += 1
        raise AllocationError(
            f"device malloc: out of heap memory ({nbytes} bytes requested)"
        )

    def free(self, addr: int) -> None:
        nbytes = self.allocated.pop(addr, None)
        if nbytes is None:
            raise AllocationError(f"device free of unallocated address 0x{addr:x}")
        self.live_bytes -= nbytes
        self.stats.note_free(self.op_cycles)
        self._insert_free(addr, nbytes)

    def _insert_free(self, addr: int, nbytes: int) -> None:
        # address-ordered insert with coalescing of adjacent extents
        lo, hi = 0, len(self.free_list)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.free_list[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self.free_list.insert(lo, (addr, nbytes))
        # coalesce with successor
        if lo + 1 < len(self.free_list):
            a, n = self.free_list[lo]
            b, m = self.free_list[lo + 1]
            if a + n == b:
                self.free_list[lo:lo + 2] = [(a, n + m)]
        # coalesce with predecessor
        if lo > 0:
            a, n = self.free_list[lo - 1]
            b, m = self.free_list[lo]
            if a + n == b:
                self.free_list[lo - 1:lo + 1] = [(a, n + m)]

    def reset(self) -> None:
        super().reset()
        self.free_list = [(self.heap_base, self.heap_bytes)]
        self.allocated.clear()

"""Device-heap allocators for consolidation buffers (paper §IV.E, Fig. 5)."""

from __future__ import annotations

from .base import Allocator, AllocatorStats  # noqa: F401
from .cuda_default import CudaDefaultAllocator  # noqa: F401
from .halloc import HallocAllocator  # noqa: F401
from .prealloc import PreallocPoolAllocator  # noqa: F401

from ..sim.specs import CostModel

#: pragma `buffer(type: ...)` name -> allocator class
ALLOCATORS = {
    "default": CudaDefaultAllocator,
    "halloc": HallocAllocator,
    "custom": PreallocPoolAllocator,
}

#: friendly experiment-facing aliases (Fig. 5 legend)
ALIASES = {
    "default": "default",
    "malloc": "default",
    "halloc": "halloc",
    "custom": "custom",
    "pre-alloc": "custom",
    "prealloc": "custom",
}


def make_allocator(kind: str, heap_base: int, heap_bytes: int,
                   cost: CostModel) -> Allocator:
    """Instantiate an allocator by pragma/figure name with the cost model's
    per-operation cycle prices."""
    kind = ALIASES.get(kind, kind)
    if kind == "default":
        return CudaDefaultAllocator(heap_base, heap_bytes,
                                    cost.malloc_default_cycles,
                                    cost.malloc_default_contention)
    if kind == "halloc":
        return HallocAllocator(heap_base, heap_bytes,
                               cost.malloc_halloc_cycles,
                               cost.malloc_halloc_contention)
    if kind == "custom":
        return PreallocPoolAllocator(heap_base, heap_bytes,
                                     cost.malloc_prealloc_cycles,
                                     cost.malloc_prealloc_contention)
    raise ValueError(f"unknown allocator kind {kind!r}")

"""The tuner: search the joint configuration space for one app.

Ties the subsystem together (DESIGN.md §11): a
:class:`~repro.tuning.space.TuningSpace` supplies candidates, a
registered :class:`~repro.tuning.search.SearchAlgorithm` decides which
to evaluate at which fidelity, the
:class:`~repro.tuning.oracle.SimulationOracle` scores them through the
cache-backed experiment runner, and the winner persists as a
:class:`~repro.tuning.registry.TunedConfig` that ``repro run <app>
tuned`` consumes.

The paper-default candidate (every knob ``None``) is *always* evaluated
at full fidelity and wins ties, so the tuned configuration is never
worse than the paper's fixed choice — the acceptance property the
``tuned_vs_paper`` harness reports per app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import __version__
from ..apps import get_app
from ..experiments.runner import ExperimentRunner, RunStats
from ..sim.specs import CostModel, DeviceSpec, K20C
from ..telemetry import span
from .objectives import Objective, get_objective
from .oracle import SimulationOracle, Trial
from .registry import TunedConfig, TunedConfigRegistry, tuned_key
from .search import get_search
from .space import Candidate, TuningSpace


@dataclass
class TuningResult:
    """Everything one :meth:`Tuner.tune` call learned."""

    app: str
    objective: Objective
    algorithm: str
    best: Trial
    baseline: Trial
    trials: list[Trial]
    config: TunedConfig
    key: str
    stats: RunStats
    #: when the scorer was a surrogate oracle: its decision report
    #: (per-rung predicted/simulated counts, training-set Spearman rho;
    #: :meth:`repro.oracle.surrogate.SurrogateOracle.surrogate_report`)
    surrogate: Optional[dict] = None

    @property
    def evaluations(self) -> int:
        return len(self.trials)

    def gain(self) -> float:
        """Improvement factor over the paper default, in the objective's
        better-direction (>= 1.0 by construction)."""
        base, best = self.baseline.value, self.best.value
        if self.objective.maximize:
            return best / base if base else float("inf")
        return base / best if best else float("inf")

    def describe(self) -> str:
        obj = self.objective
        where = (f" on {self.config.workload}"
                 if self.config.workload is not None else "")
        lines = [
            f"Tuned {get_app(self.app).label} for {obj.name}{where} "
            f"({self.algorithm}, {self.evaluations} evaluations)",
            f"  best  : {self.best.candidate.describe()} "
            f"-> {obj.format(self.best.value)}",
            f"  paper : {self.baseline.candidate.describe()} "
            f"-> {obj.format(self.baseline.value)}",
            f"  gain  : {self.gain():.2f}x over the paper default",
        ]
        return "\n".join(lines)


#: Spearman rho below which the surrogate's cheap-rung ranking is
#: considered unreliable (0.5 ~ "moderate correlation": below it, the
#: prefilter is close to shuffling candidates)
WEAK_SURROGATE_RHO = 0.5


def weak_surrogate_warning(report: Optional[dict],
                           floor: float = WEAK_SURROGATE_RHO
                           ) -> Optional[str]:
    """A caution string when a surrogate report shows a training-set
    Spearman rho under ``floor`` (or none at all), else None. The CLI
    prints it after the surrogate summary so a tune whose prefilter was
    effectively random is never mistaken for a trustworthy one."""
    if not report:
        return None
    rho = report.get("spearman")
    rows = report.get("train_rows", 0)
    if rho is None:
        return (f"surrogate rank quality is unknown (trained on {rows} "
                f"rows, no holdout Spearman rho); its candidate "
                "prefiltering may be unreliable")
    if rho < floor:
        return (f"surrogate Spearman rho {rho:.3f} is below {floor:g}; "
                "its cheap-rung ranking is weakly correlated with the "
                "simulator, so the tuned config may be far from optimal "
                "(consider --oracle sim or logging more training runs)")
    return None


@dataclass
class Tuner:
    """Search-based autotuner over the consolidation configuration space.

    Construction mirrors :class:`~repro.experiments.runner.ExperimentRunner`
    (scale / device spec / cost model / on-disk store / worker count);
    attach a :class:`TunedConfigRegistry` to persist winners.
    """

    scale: float = 1.0
    spec: DeviceSpec = K20C
    cost: Optional[CostModel] = None
    store: object = None
    registry: Optional[TunedConfigRegistry] = None
    jobs: int = 1
    verify: bool = True
    #: optional on-disk cache of materialized datasets shared by every
    #: fidelity runner (:class:`repro.workloads.DatasetCache`)
    dataset_cache: object = None
    #: optional :class:`repro.service.ServiceClient` — when attached
    #: (``repro tune --socket``), every candidate evaluation submits
    #: through the experiment service instead of local runners, sharing
    #: the daemon's coalescing, batching, and result store
    service: object = None
    #: which registered oracle (:mod:`repro.oracle`) scores candidates:
    #: None/'sim' = the simulator (vectorized engine), 'sim-scalar' =
    #: the scalar reference engine, 'surrogate' = the learned
    #: multi-fidelity prefilter (cheap rungs predicted, final rung
    #: always simulated)
    oracle: Optional[str] = None
    #: surrogate training log (:class:`repro.oracle.TrainingLog`);
    #: None with a store attached derives the conventional log beside it
    training_log: object = None
    #: run provenance accumulated across every tune() call
    stats: RunStats = field(default_factory=RunStats, repr=False)

    def _training_log(self):
        if self.training_log is None and self.store is not None:
            from ..oracle import TrainingLog

            self.training_log = TrainingLog.for_store(self.store)
        return self.training_log

    def _oracle(self, app: str, objective: Objective, workload=None):
        """Build the candidate scorer: a simulation oracle, threaded
        through the named oracle's :meth:`~repro.oracle.Oracle.scorer`
        (identity for exact oracles, surrogate wrapper for learned)."""
        from ..oracle import get_oracle

        named = get_oracle(self.oracle if self.oracle is not None
                           else "sim")
        log = self._training_log()
        sim = SimulationOracle(
            app, objective, scale=self.scale, spec=self.spec, cost=self.cost,
            store=self.store, jobs=self.jobs, verify=self.verify,
            workload=workload, dataset_cache=self.dataset_cache,
            client=self.service, training_log=log,
            oracle=(ExperimentRunner._canonical_oracle(named.name)
                    if named.exact else None))
        return named.scorer(sim, training_log=log)

    def _canonical_workload(self, app: str, workload):
        """Same default-folding rule as the experiment runner (shared
        via :func:`repro.workloads.canonical_for_app`): the app's own
        default workload tunes (and stores) as None."""
        from ..workloads import canonical_for_app

        return canonical_for_app(get_app(app), workload)

    def tune(self, app: str, objective="cycles", algorithm: str = "halving",
             space: Optional[TuningSpace] = None,
             budget: Optional[int] = None, seed: int = 0,
             workload: Optional[str] = None) -> TuningResult:
        """Search the space for one app; persist and return the winner.

        Deterministic for fixed ``(space, algorithm, budget, seed)``:
        a repeated call issues the identical evaluation sequence, so
        against a warm result store it executes zero simulations.
        ``workload`` tunes against a named dataset instead of the app's
        default; the winner persists in a per-workload registry slot.
        """
        get_app(app)  # validate the key before any simulation
        obj = get_objective(objective)
        workload = self._canonical_workload(app, workload)
        space = space if space is not None else TuningSpace.for_app(app)
        algo = get_search(algorithm)
        oracle = self._oracle(app, obj, workload=workload)

        with span("tune.app", app=app, objective=obj.name,
                  algorithm=algo.name):
            trials = list(algo.search(oracle, space.candidates(),
                                      budget=budget, seed=seed))
            # the paper default is always scored at full fidelity and
            # wins ties; reuse the search's own trial when it already
            # visited it
            default = space.default_candidate()
            baseline = next(
                (t for t in trials
                 if t.candidate == default and oracle.is_full_fidelity(t)),
                None)
            if baseline is None:
                baseline = oracle.evaluate([default])[0]
                trials.append(baseline)
        best = baseline
        for trial in trials:
            if oracle.is_full_fidelity(trial) and trial.loss < best.loss:
                best = trial

        key = tuned_key(app=app, objective=obj.name, spec=self.spec,
                        cost=oracle.cost, scale=self.scale,
                        verify=self.verify, version=__version__,
                        workload=workload)
        config = TunedConfig(
            app=app, objective=obj.name, candidate=best.candidate,
            value=best.value, baseline_value=baseline.value,
            algorithm=algo.name, evaluations=len(trials),
            scale=self.scale, device=self.spec.name, version=__version__,
            workload=workload,
        )
        if self.registry is not None:
            self.registry.put(key, config)

        stats = oracle.stats()
        self.stats.executed += stats.executed
        self.stats.memory_hits += stats.memory_hits
        self.stats.disk_hits += stats.disk_hits
        report = getattr(oracle, "surrogate_report", None)
        return TuningResult(app=app, objective=obj, algorithm=algo.name,
                            best=best, baseline=baseline,
                            trials=trials, config=config,
                            key=key, stats=stats,
                            surrogate=report() if callable(report) else None)


def best_threshold(app: str = "sssp", *, variant: str = "grid-level",
                   thresholds=(2, 8, 32, 128, 100_000),
                   runner: Optional[ExperimentRunner] = None,
                   scale: float = 0.5) -> int:
    """Threshold with the best simulated cycles for one app x variant —
    a 1-D grid search over the delegation-threshold axis.

    Subsumes the old ``ablation_threshold.best_threshold`` helper (which
    remains as a deprecated shim): the candidates lower onto exactly the
    RunSpecs the ablation sweep issues, so both share cache entries.
    ``runner`` pins evaluation to an existing runner (its scale, store
    and in-memory cache); otherwise a fresh one is built at ``scale``.
    """
    from ..apps.common import CONS, CONSOLIDATED

    if variant != CONS and variant not in CONSOLIDATED:
        raise ValueError(f"variant {variant!r} has no delegation threshold "
                         "to tune")
    strategy = CONSOLIDATED.get(variant)
    if runner is None:
        runner = ExperimentRunner(scale=scale)
    oracle = SimulationOracle(app, "cycles", runner=runner)
    candidates = [Candidate(strategy=strategy, threshold=t)
                  for t in thresholds]
    trials = oracle.evaluate(candidates)
    best = min(range(len(trials)), key=lambda i: (trials[i].loss, i))
    return thresholds[best]

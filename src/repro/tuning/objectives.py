"""Tuning objectives — which profiler metric the search optimizes.

The paper reports three quality axes for consolidation (overall cycles,
Fig. 7; warp execution efficiency, Fig. 8; DRAM transactions, Fig. 10);
each is a tunable objective here. An :class:`Objective` maps a
:class:`~repro.sim.profiler.RunMetrics` to a scalar *value* in natural
units and to a *loss* (always minimized internally), so search
algorithms never need to know whether an objective is maximized.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Objective:
    """One metric the tuner can optimize."""

    #: registry key (``repro tune --objective``)
    name: str
    #: attribute read off :class:`~repro.sim.profiler.RunMetrics`
    metric: str
    #: True for metrics where larger is better (loss negates the value)
    maximize: bool = False
    #: natural-unit suffix for reports
    label: str = ""
    #: value format for reports
    fmt: str = "{:,.0f}"

    def value(self, metrics) -> float:
        return float(getattr(metrics, self.metric))

    def loss(self, value: float) -> float:
        """The minimized scalar: negated for maximized objectives."""
        return -value if self.maximize else value

    def format(self, value: float) -> str:
        text = self.fmt.format(value)
        return f"{text} {self.label}" if self.label else text


#: name -> objective, in presentation order
OBJECTIVES = {
    o.name: o for o in (
        Objective("cycles", "cycles", label="cycles"),
        Objective("warp-eff", "warp_execution_efficiency", maximize=True,
                  label="warp efficiency", fmt="{:.1%}"),
        Objective("dram", "dram_transactions", label="DRAM transactions"),
    )
}


def get_objective(name) -> Objective:
    """Look up an objective by name; instances pass through unchanged."""
    if isinstance(name, Objective):
        return name
    obj = OBJECTIVES.get(name)
    if obj is None:
        raise KeyError(f"unknown tuning objective {name!r}; "
                       f"available: {', '.join(OBJECTIVES)}")
    return obj

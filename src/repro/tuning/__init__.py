"""``repro.tuning`` — a search-based autotuner for the consolidation
configuration space.

The paper fixes its knobs by hand: per-app delegation thresholds are
chosen without study (§V), and Fig. 6 shows the consolidated kernels are
sensitive to the child kernel configuration. This subsystem makes the
system choose its own configuration instead: a :class:`Tuner` searches
the joint space (consolidation strategy x delegation threshold x child
launch config x KC_X concurrency) per app x objective, using the
simulator as the cost oracle through the cache-backed experiment runner
— so tuning is parallel (``--jobs``) and warm-start cached (a repeated
tune executes zero simulations) for free. DESIGN.md §11 documents the
layer; ``repro tune <app>`` and ``repro tuned-vs-paper`` drive it from
the CLI.

Layout mirrors the compiler's strategy layer:

* :mod:`~repro.tuning.space` — :class:`TuningSpace` / :class:`Candidate`
  (the four knob axes; all-``None`` is the paper default);
* :mod:`~repro.tuning.objectives` — cycles / warp efficiency / DRAM
  transactions as pluggable :class:`Objective` values;
* :mod:`~repro.tuning.oracle` — :class:`SimulationOracle`, batching
  every candidate evaluation through ``ExperimentRunner.prefetch``;
* :mod:`~repro.tuning.search` — the :class:`SearchAlgorithm` registry
  (grid, seeded random, successive halving; plugins register more);
* :mod:`~repro.tuning.registry` — :class:`TunedConfig` persistence
  (JSON beside the result store) feeding the ``tuned`` app variant.
"""

from .objectives import OBJECTIVES, Objective, get_objective  # noqa: F401
from .oracle import MIN_RUNG_SCALE, SimulationOracle, Trial  # noqa: F401
from .registry import (  # noqa: F401
    TUNED_FILE,
    TunedConfig,
    TunedConfigRegistry,
    default_tuned_path,
    tuned_key,
)
from .search import (  # noqa: F401
    GridSearch,
    RandomSearch,
    SearchAlgorithm,
    SuccessiveHalving,
    available_searches,
    get_search,
    register_search,
    unregister_search,
)
from .space import (  # noqa: F401
    Candidate,
    ConfigChoice,
    TuningSpace,
)
from .tuner import (  # noqa: F401
    Tuner,
    TuningResult,
    WEAK_SURROGATE_RHO,
    best_threshold,
    weak_surrogate_warning,
)

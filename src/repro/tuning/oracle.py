"""The simulation cost oracle — how candidates get their scores.

Every candidate evaluation is one application run expressed as a
:class:`~repro.experiments.plan.RunSpec` and batched through
:meth:`~repro.experiments.runner.ExperimentRunner.prefetch`, so tuning
inherits the whole PR 1 execution stack for free: cache misses fan
across ``--jobs`` worker processes, results persist in the shared
content-addressed :class:`~repro.experiments.store.ResultStore`, and a
repeated tune executes **zero** simulations (every candidate is served
from cache).

Multi-fidelity search (successive halving) evaluates candidates at a
*fraction* of the tuning dataset scale; the oracle keeps one runner per
distinct scale, all sharing the same on-disk store, so low-fidelity
rungs are cached exactly like full-fidelity runs.

With a service client attached (``client=``; ``repro tune --socket``),
evaluation goes through the experiment service instead of local
runners: each batch is pipelined as one ``submit_many``, so the daemon
coalesces duplicates across *every* connected tuner and serves repeats
from its shared store. Reduced-fidelity rungs simply submit with their
rung scale — the server keeps a runner per scale, mirroring this
oracle's local arrangement. The client and server must agree on the
tuning context (device spec, cost model, verify flag); both default to
the same values, and the handshake exposes the server's so the CLI can
warn on mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..experiments.runner import ExperimentRunner, RunStats
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C
from ..telemetry import span
from .objectives import Objective, get_objective
from .space import Candidate

#: floor for reduced-fidelity rung scales: below this the generated
#: datasets degenerate and scores stop ranking candidates meaningfully
MIN_RUNG_SCALE = 0.05


@dataclass(frozen=True)
class Trial:
    """One evaluated candidate: objective value (natural units), loss
    (minimized), and the dataset scale it was measured at."""

    candidate: Candidate
    value: float
    loss: float
    scale: float


class SimulationOracle:
    """Scores candidates for one app x objective via the simulator."""

    def __init__(self, app: str, objective, *, scale: float = 1.0,
                 spec: DeviceSpec = K20C,
                 cost: Optional[CostModel] = None,
                 store=None, jobs: int = 1, verify: bool = True,
                 runner: Optional[ExperimentRunner] = None,
                 workload=None, dataset_cache=None, client=None,
                 oracle: Optional[str] = None,
                 training_log=None):
        self.app = app
        self.objective: Objective = get_objective(objective)
        #: canonical workload reference every candidate is scored on
        #: (None: the app's default dataset)
        self.workload = workload
        #: exact oracle (engine selection) every candidate runs under
        #: (None: the default vectorized engine)
        self.oracle = oracle
        #: surrogate training log handed to every fidelity runner
        #: (None with a store attached: the runner derives the
        #: conventional log beside it)
        self.training_log = training_log
        self.dataset_cache = dataset_cache
        #: optional :class:`repro.service.ServiceClient`; when set,
        #: evaluation submits through the experiment service instead of
        #: local runners
        self.client = client
        self._client_stats = RunStats()
        if runner is not None:
            # pin full-fidelity evaluations to an existing runner (and
            # share its store/device/cost/parallelism with any
            # reduced-scale rungs)
            scale, spec, cost = runner.scale, runner.spec, runner.cost
            store, verify, jobs = runner.store, runner.verify, runner.jobs
        self.scale = scale
        self.spec = spec
        self.cost = cost if cost is not None else DEFAULT_COST_MODEL
        self.store = store
        self.jobs = jobs
        self.verify = verify
        self._runners: dict[float, ExperimentRunner] = {}
        #: stats snapshot per runner at adoption, so :meth:`stats` reports
        #: only this oracle's work even on a pre-warmed external runner
        self._baselines: dict[float, RunStats] = {}
        if runner is not None:
            self._adopt(runner)

    def _adopt(self, runner: ExperimentRunner) -> None:
        from dataclasses import replace

        self._runners[runner.scale] = runner
        self._baselines[runner.scale] = replace(runner.stats)

    # -- runners ---------------------------------------------------------------

    def _rung_scale(self, factor: float) -> float:
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"fidelity factor must be in (0, 1], got {factor}")
        return min(self.scale, max(self.scale * factor, MIN_RUNG_SCALE))

    def runner_for(self, factor: float = 1.0) -> ExperimentRunner:
        """The (cached) runner evaluating at a fidelity factor."""
        scale = self._rung_scale(factor)
        if scale not in self._runners:
            self._adopt(ExperimentRunner(
                scale=scale, spec=self.spec, cost=self.cost,
                verify=self.verify, store=self.store, jobs=self.jobs,
                dataset_cache=self.dataset_cache,
                training_log=self.training_log))
        return self._runners[scale]

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, candidates, factor: float = 1.0) -> list[Trial]:
        """Score a batch of candidates at one fidelity.

        The whole batch is prefetched before any score is read, so cache
        misses run in parallel and trial order matches candidate order
        regardless of worker completion order.
        """
        candidates = list(candidates)
        specs = [c.run_spec(self.app, self.spec, workload=self.workload,
                            oracle=self.oracle)
                 for c in candidates]
        with span("tune.evaluate", app=self.app,
                  candidates=len(candidates),
                  scale=self._rung_scale(factor),
                  remote=self.client is not None):
            if self.client is not None:
                return self._evaluate_remote(candidates, specs, factor)
            runner = self.runner_for(factor)
            runner.prefetch(specs, jobs=self.jobs)
            trials = []
            for cand, spec in zip(candidates, specs):
                value = self.objective.value(runner.run_spec(spec).metrics)
                trials.append(Trial(candidate=cand, value=value,
                                    loss=self.objective.loss(value),
                                    scale=runner.scale))
        return trials

    def _evaluate_remote(self, candidates, specs,
                         factor: float) -> list[Trial]:
        """Score one batch through the experiment service: a single
        pipelined ``submit_many``, so the daemon coalesces duplicates
        and micro-batches the rest."""
        scale = self._rung_scale(factor)
        results = self.client.submit_many(specs, scale=scale)
        trials = []
        for cand, res in zip(candidates, results):
            value = self.objective.value(res.metrics)
            trials.append(Trial(candidate=cand, value=value,
                                loss=self.objective.loss(value),
                                scale=scale))
            # provenance mapping for :meth:`stats`: server-side cache
            # hits report as disk hits (they came off the shared store
            # or its memory image), coalesced joins as memory hits
            if res.source == "executed":
                self._client_stats.executed += 1
            elif res.source == "coalesced":
                self._client_stats.memory_hits += 1
            else:
                self._client_stats.disk_hits += 1
        return trials

    def is_full_fidelity(self, trial: Trial) -> bool:
        return trial.scale == self.scale

    def stats(self) -> RunStats:
        """Aggregate run provenance across every fidelity runner (only
        the work done since this oracle adopted each runner), plus any
        service-side evaluations."""
        total = RunStats(executed=self._client_stats.executed,
                         memory_hits=self._client_stats.memory_hits,
                         disk_hits=self._client_stats.disk_hits)
        for scale, runner in self._runners.items():
            base = self._baselines[scale]
            total.executed += runner.stats.executed - base.executed
            total.memory_hits += runner.stats.memory_hits - base.memory_hits
            total.disk_hits += runner.stats.disk_hits - base.disk_hits
        return total

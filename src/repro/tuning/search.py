"""Pluggable search algorithms for the configuration tuner.

Mirrors the consolidation-strategy registry
(:mod:`repro.compiler.strategies`): each algorithm is a stateless
named singleton, and registering a new one makes it reachable from
``repro tune --search`` and :meth:`repro.tuning.Tuner.tune` without
touching either::

    from repro.tuning import SearchAlgorithm, register_search

    class Bisect(SearchAlgorithm):
        name = "bisect"
        summary = "my custom pruning rule"
        def search(self, oracle, candidates, *, budget=None, seed=0):
            return oracle.evaluate(candidates[: (budget or 8)])

    register_search(Bisect())

An algorithm receives the **oracle** (its only way to score candidates)
and the full candidate list in deterministic space order, and returns
the trials it ran. Everything an algorithm does must be a pure function
of ``(candidates, budget, seed)`` and the returned scores — no wall
clocks, no global randomness — so a repeated tune replays the identical
evaluation sequence and is served entirely from the result cache.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Optional

from ..telemetry import span
from .oracle import SimulationOracle, Trial
from .space import Candidate


class SearchAlgorithm(abc.ABC):
    """One way of exploring the candidate space."""

    #: registry key (``repro tune --search``)
    name: str = ""
    #: one-line description for ``repro list`` and docs
    summary: str = ""

    @abc.abstractmethod
    def search(self, oracle: SimulationOracle, candidates: list[Candidate],
               *, budget: Optional[int] = None, seed: int = 0) -> list[Trial]:
        """Evaluate candidates through the oracle; return every trial.

        ``budget`` caps how many *candidates* the algorithm may draw
        from the space (None = no cap); ``seed`` drives any sampling.
        At least one trial must be at full fidelity — the tuner picks
        the winner among full-fidelity trials only.
        """

    def _pool(self, candidates: list[Candidate], budget: Optional[int],
              seed: int) -> list[Candidate]:
        """A budget-sized subset, seeded and in stable space order."""
        if budget is None or budget >= len(candidates):
            return list(candidates)
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = random.Random(seed)
        picked = sorted(rng.sample(range(len(candidates)), budget))
        return [candidates[i] for i in picked]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GridSearch(SearchAlgorithm):
    """Exhaustive sweep at full fidelity (the Fig. 6 'exhaustive search'
    reference, extended to the joint space)."""

    name = "grid"
    summary = "exhaustive sweep of the space at full fidelity"

    def search(self, oracle, candidates, *, budget=None, seed=0):
        return oracle.evaluate(self._pool(candidates, budget, seed))


class RandomSearch(SearchAlgorithm):
    """Seeded uniform sampling at full fidelity."""

    name = "random"
    summary = "seeded uniform sample of the space"
    #: candidates sampled when no budget is given
    default_budget = 16

    def search(self, oracle, candidates, *, budget=None, seed=0):
        budget = budget if budget is not None else self.default_budget
        return oracle.evaluate(self._pool(candidates, budget, seed))


class SuccessiveHalving(SearchAlgorithm):
    """Multi-fidelity pruning: score everything on a small dataset,
    promote the best ``1/eta`` to the next rung, finish at full scale.

    The rung schedule is expressed as dataset *scale factors* — the
    cheap rungs rank candidates on a quarter/half-size dataset, which
    the simulator makes nearly free, and only survivors pay the
    full-scale evaluation (DESIGN.md §11).
    """

    name = "halving"
    summary = "successive halving: rank small, promote survivors to full scale"
    #: dataset scale factor per rung (last must be 1.0 = full fidelity)
    rungs = (0.25, 0.5, 1.0)
    #: promotion keeps ceil(n / eta) survivors per rung
    eta = 3

    def search(self, oracle, candidates, *, budget=None, seed=0):
        survivors = self._pool(candidates, budget, seed)
        trials: list[Trial] = []
        for rung, factor in enumerate(self.rungs):
            with span("tune.rung", rung=rung, factor=factor,
                      candidates=len(survivors)):
                scored = oracle.evaluate(survivors, factor)
            trials.extend(scored)
            if rung == len(self.rungs) - 1:
                break
            keep = max(1, math.ceil(len(scored) / self.eta))
            # stable sort: ties promote the earlier candidate in space order
            order = sorted(range(len(scored)),
                           key=lambda i: (scored[i].loss, i))
            survivors = [scored[i].candidate for i in sorted(order[:keep])]
        return trials


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, SearchAlgorithm] = {}


def register_search(algorithm: SearchAlgorithm,
                    replace: bool = False) -> SearchAlgorithm:
    """Add a search algorithm to the registry (validated); returns it."""
    if not isinstance(algorithm, SearchAlgorithm):
        raise TypeError(
            f"expected a SearchAlgorithm instance, got {algorithm!r}")
    if not algorithm.name:
        raise ValueError(f"{type(algorithm).__name__} must define a name")
    if algorithm.name in _REGISTRY and not replace:
        raise ValueError(
            f"search algorithm {algorithm.name!r} is already registered")
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def unregister_search(name: str) -> None:
    """Remove a search algorithm (test/plugin cleanup)."""
    if name not in _REGISTRY:
        raise KeyError(f"search algorithm {name!r} is not registered")
    del _REGISTRY[name]


def get_search(name) -> SearchAlgorithm:
    """Look up an algorithm by name; instances pass through unchanged."""
    if isinstance(name, SearchAlgorithm):
        return name
    algorithm = _REGISTRY.get(name)
    if algorithm is None:
        raise KeyError(f"unknown search algorithm {name!r}; "
                       f"available: {', '.join(available_searches())}")
    return algorithm


def available_searches() -> tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    return tuple(_REGISTRY)


register_search(GridSearch())
register_search(RandomSearch())
register_search(SuccessiveHalving())

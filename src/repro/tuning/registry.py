"""Persistent registry of tuned configurations.

The tuner's product is a :class:`TunedConfig` — the winning
:class:`~repro.tuning.space.Candidate` for one app x objective, together
with its measured objective value and the paper-default baseline it
beat. Configs persist as one JSON file **beside the result store**
(``<cache-dir>/tuned.json``), content-keyed the same way run cache
entries are (:func:`tuned_key` hashes everything that determines a
tuning problem: app, objective, device spec, cost model, dataset scale,
verify flag, package version), so re-tuning the same problem overwrites
its own slot while a changed cost constant or device gets a fresh one.

Consumers: the ``tuned`` app variant
(``repro run <app> tuned``; :meth:`ExperimentRunner._resolve` looks the
entry up and lowers it onto a concrete consolidated RunSpec) and
``repro cache info`` (reports the registry alongside the run cache).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ..experiments.store import default_cache_dir
from .space import Candidate

#: bump to invalidate every persisted tuned config on a format change
TUNED_FORMAT = 1

#: file name of the registry, beside the ResultStore's shard directories
TUNED_FILE = "tuned.json"


def default_tuned_path(cache_dir=None) -> Path:
    """Registry location for a cache directory (default: the run cache's)."""
    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / TUNED_FILE


def tuned_key(*, app: str, objective: str, spec, cost, scale: float,
              verify: bool, version: str,
              workload: Optional[str] = None) -> str:
    """Stable content address for one tuning problem.

    ``workload`` (a canonical :mod:`repro.workloads` reference, already
    folded onto ``None`` for the app's default) enters the payload only
    when set, so pre-workload tuned entries keep their slots — the same
    compatibility rule as :func:`repro.experiments.store.run_key`.
    """
    payload = {
        "format": TUNED_FORMAT,
        "version": version,
        "app": app,
        "objective": objective,
        "spec": dataclasses.asdict(spec),
        "cost": dataclasses.asdict(cost),
        "scale": scale,
        "verify": verify,
    }
    if workload is not None:
        payload["workload"] = workload
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class TunedConfig:
    """The persisted outcome of one tuning problem."""

    app: str
    objective: str
    candidate: Candidate
    #: objective value of the winning candidate at full tuning scale
    value: float
    #: objective value of the paper-default configuration (same scale)
    baseline_value: float
    algorithm: str
    #: number of oracle evaluations the search performed
    evaluations: int
    scale: float
    device: str
    version: str
    #: canonical workload the config was tuned on (None: app default);
    #: defaulted so pre-workload registry files still deserialize
    workload: Optional[str] = None

    def to_json(self) -> dict:
        d = dataclasses.asdict(self)
        d["candidate"] = dataclasses.asdict(self.candidate)
        return d

    @classmethod
    def from_json(cls, d: dict) -> "TunedConfig":
        d = dict(d)
        d["candidate"] = Candidate(**d["candidate"])
        return cls(**d)


class TunedConfigRegistry:
    """Filesystem-backed map from tuned-problem key to TunedConfig.

    Reads never touch the filesystem beyond the one JSON file (a missing
    or unreadable registry is simply empty). Writes are read-modify-write
    of the whole map, so — unlike the one-file-per-key result store —
    atomic replace alone is not enough: mutations additionally hold an
    exclusive ``flock`` on a sidecar lock file, so two ``repro tune``
    processes sharing one cache directory cannot lose each other's
    entries.
    """

    def __init__(self, path):
        self.path = Path(path)

    # -- persistence -----------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive inter-process lock around a read-modify-write."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: best-effort, unlocked
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with (self.path.with_suffix(".lock")).open("w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _load(self) -> dict:
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("format") != TUNED_FORMAT:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _save(self, entries: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": TUNED_FORMAT, "entries": entries}
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- map interface ---------------------------------------------------------

    def put(self, key: str, config: TunedConfig) -> None:
        with self._locked():
            entries = self._load()
            entries[key] = config.to_json()
            self._save(entries)

    def get(self, key: str) -> Optional[TunedConfig]:
        entry = self._load().get(key)
        return TunedConfig.from_json(entry) if entry is not None else None

    def entries(self) -> list[TunedConfig]:
        """Every stored config, in stable (key-sorted) order."""
        loaded = self._load()
        return [TunedConfig.from_json(loaded[k]) for k in sorted(loaded)]

    def lookup(self, app: str, objective: str = "cycles",
               scale: Optional[float] = None,
               device: Optional[str] = None,
               workload: Optional[str] = None) -> Optional[TunedConfig]:
        """Best stored config for an app x objective x workload.

        Only entries tuned on the *same* workload are considered (a
        config tuned on ``star`` must never shadow the default-dataset
        slot, and vice versa). With several matching entries (e.g.
        tuned at different scales or for different simulated devices),
        prefers an exact scale match and an exact device match when
        given, then the largest tuning scale (closest to the real
        workload), then the best objective value *in the objective's
        better-direction*, breaking remaining ties deterministically.
        """
        from .objectives import get_objective

        try:
            loss = get_objective(objective).loss
        except KeyError:  # unknown objective name: order by raw value
            def loss(value):
                return value
        matches = [c for c in self.entries()
                   if c.app == app and c.objective == objective
                   and c.workload == workload]
        if not matches:
            return None
        for attr, want in (("scale", scale), ("device", device)):
            if want is not None:
                exact = [c for c in matches if getattr(c, attr) == want]
                if exact:
                    matches = exact
        matches.sort(key=lambda c: (-c.scale, loss(c.value), c.algorithm))
        return matches[0]

    def clear(self) -> int:
        """Remove every stored config; returns how many were removed."""
        if not self.path.exists():
            return 0
        with self._locked():
            entries = self._load()
            if entries:
                self._save({})
        return len(entries)

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __repr__(self) -> str:
        return f"TunedConfigRegistry({str(self.path)!r})"

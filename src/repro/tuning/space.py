"""The consolidation configuration space the tuner searches.

One :class:`Candidate` is a joint assignment of the four knobs PR 2 made
first-class:

* **consolidation strategy** — any registered
  :class:`~repro.compiler.strategies.base.ConsolidationStrategy` name, or
  ``None`` for the pragma's ``consldt`` clause (the paper's per-app
  choice);
* **delegation threshold** — the ``deg > threshold`` guard of the Fig. 1
  template, or ``None`` for the app's fixed default;
* **child launch configuration** — the paper's KC rule (default), a
  smaller block size under the KC rule, or Fig. 6's *1-1 mapping*
  baseline;
* **KC_X concurrency** — an explicit concurrency target ``X`` resolved to
  a static ``(B, T)`` via :func:`~repro.sim.occupancy.kc_config`,
  overriding the per-granularity default of §IV.E.

``None`` everywhere means "the paper's choice", so the all-``None``
candidate *is* the paper-default configuration — the tuner always
evaluates it, which is what makes "tuned is never worse than the paper
default" hold by construction.

Candidates are symbolic (no device spec baked in): they lower to a
:class:`~repro.experiments.plan.RunSpec` against a concrete
:class:`~repro.sim.specs.DeviceSpec` only at evaluation time, so the
same space tunes any simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.occupancy import DEFAULT_BLOCK_THREADS, kc_config
from ..sim.specs import DeviceSpec


@dataclass(frozen=True)
class ConfigChoice:
    """One launch-configuration axis value (KC concurrency x block size).

    All-``None`` is the paper's KC rule; ``kc_x`` pins the concurrency
    target; ``threads`` pins the block size; ``one2one`` is the Fig. 6
    1-1 mapping baseline (mutually exclusive with ``kc_x``).
    """

    kc_x: Optional[int] = None
    threads: Optional[int] = None
    one2one: bool = False

    def __post_init__(self):
        if self.one2one and self.kc_x is not None:
            raise ValueError("one2one mapping does not take a KC_X target")
        if self.kc_x is not None and self.kc_x < 1:
            raise ValueError("kc_x must be >= 1")
        if self.threads is not None and self.threads < 1:
            raise ValueError("threads must be >= 1")


@dataclass(frozen=True)
class Candidate:
    """One point of the joint configuration space (plain hashable data,
    so it JSON-round-trips through the tuned-config registry)."""

    strategy: Optional[str] = None
    threshold: Optional[int] = None
    kc_x: Optional[int] = None
    threads: Optional[int] = None
    one2one: bool = False

    def __post_init__(self):
        # same invariants as ConfigChoice: candidates may be built
        # directly (plugin search algorithms, tuned.json round trips),
        # so a contradictory combination must fail loudly here too
        if self.one2one and self.kc_x is not None:
            raise ValueError("one2one mapping does not take a KC_X target")
        if self.kc_x is not None and self.kc_x < 1:
            raise ValueError("kc_x must be >= 1")
        if self.threads is not None and self.threads < 1:
            raise ValueError("threads must be >= 1")

    def config_key(self, spec: DeviceSpec) -> Optional[tuple]:
        """The hashable :class:`~repro.experiments.plan.RunSpec.config`
        triple this candidate requests, resolved against a device."""
        if self.one2one:
            return ("one2one", None, self.threads)
        if self.kc_x is not None:
            blocks, threads = kc_config(
                spec, self.kc_x, self.threads or DEFAULT_BLOCK_THREADS)
            return ("explicit", blocks, threads)
        if self.threads is not None:
            return ("kc", None, self.threads)
        return None

    def run_spec(self, app: str, spec: DeviceSpec,
                 workload: Optional[str] = None,
                 oracle: Optional[str] = None):
        """Lower to a RunSpec (the generic ``consolidated`` variant; the
        runner canonicalizes built-in strategies onto their legacy
        variants, so candidate runs share cache entries with Figs. 7-10
        and the granularity ablation). ``workload`` pins the dataset the
        candidate is scored on (None: the app's default); ``oracle``
        pins the exact oracle (engine) scoring it."""
        from ..apps.common import CONS
        from ..experiments.plan import RunSpec

        return RunSpec(app=app, variant=CONS, strategy=self.strategy,
                       threshold=self.threshold,
                       config=self.config_key(spec), workload=workload,
                       oracle=oracle)

    def describe(self) -> str:
        strat = self.strategy if self.strategy is not None else "pragma"
        thr = self.threshold if self.threshold is not None else "app-default"
        if self.one2one:
            cfg = "1-1 mapping"
        elif self.kc_x is not None:
            cfg = f"KC_{self.kc_x}"
            if self.threads is not None:
                cfg += f"/T{self.threads}"
        elif self.threads is not None:
            cfg = f"KC-rule/T{self.threads}"
        else:
            cfg = "KC-rule"
        return f"strategy={strat} threshold={thr} config={cfg}"


#: default delegation thresholds swept (None = the app's paper value;
#: the extremes bracket the "delegate everything"/"delegate nothing" ends
#: of the ablation_threshold trade-off)
DEFAULT_THRESHOLDS = (None, 2, 32, 128)

#: default launch-configuration choices (paper KC rule, pinned KC_X
#: targets, a narrower block under the KC rule, and the 1-1 baseline)
DEFAULT_CONFIGS = (
    ConfigChoice(),
    ConfigChoice(kc_x=1),
    ConfigChoice(kc_x=16),
    ConfigChoice(kc_x=32),
    ConfigChoice(threads=128),
    ConfigChoice(one2one=True),
)


@dataclass(frozen=True)
class TuningSpace:
    """The cross product of the four knob axes, enumerated in a fixed
    order so every search algorithm is deterministic for a given seed."""

    strategies: tuple = (None,)
    thresholds: tuple = DEFAULT_THRESHOLDS
    configs: tuple = DEFAULT_CONFIGS

    def __post_init__(self):
        for cfg in self.configs:
            if not isinstance(cfg, ConfigChoice):
                raise TypeError(f"configs must be ConfigChoice, got {cfg!r}")

    @classmethod
    def default(cls) -> "TuningSpace":
        """Strategy axis from the live registry (plugin strategies are
        swept automatically), plus the default threshold/config axes."""
        from ..compiler.strategies import available_strategies

        return cls(strategies=(None,) + tuple(available_strategies()))

    @classmethod
    def for_app(cls, app_key: str) -> "TuningSpace":
        """The default space, with the threshold axis dropped for apps
        whose template has no delegation guard
        (:attr:`~repro.apps.common.App.has_delegation_guard`, the
        parallel-recursion benchmarks) — sweeping it would only multiply
        cache keys over byte-identical executions."""
        from ..apps import get_app

        space = cls.default()
        if not get_app(app_key).has_delegation_guard:
            return cls(strategies=space.strategies, thresholds=(None,))
        return space

    def default_candidate(self) -> Candidate:
        """The paper-default configuration (every knob at its default)."""
        return Candidate()

    def candidates(self) -> list[Candidate]:
        """Every point, in deterministic axis-nested order."""
        return [
            Candidate(strategy=s, threshold=t, kc_x=c.kc_x,
                      threads=c.threads, one2one=c.one2one)
            for s in self.strategies
            for t in self.thresholds
            for c in self.configs
        ]

    def __len__(self) -> int:
        return (len(self.strategies) * len(self.thresholds)
                * len(self.configs))

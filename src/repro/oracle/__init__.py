"""Pluggable run oracles — who answers "what are this run's metrics?".

Mirrors :mod:`repro.backends` (and the strategy/search/workload
registries): named singletons, built-ins registered at import. Built-ins:

``sim``
    the simulator on the **vectorized** functional engine — the default;
    omitting ``--oracle`` everywhere means exactly this, and the runner
    folds an explicit ``'sim'`` onto ``None`` so no cache key forks;
``sim-scalar``
    the simulator on the scalar reference engine. Bitwise-identical
    metrics by construction (the differential harness in
    ``tests/test_oracle.py`` holds both engines to it) — kept as the
    ground truth the vectorized engine is tested against;
``surrogate``
    a learned model (:mod:`repro.oracle.surrogate`) trained on the runs
    the experiment runner has already executed. Not exact, so only the
    tuner may consume it (``repro tune --oracle surrogate``): cheap
    successive-halving rungs are answered by prediction, the final rung
    is always simulated.

Registering an oracle makes it reachable end-to-end — ``App.run``, the
experiment runner's cache key, ``repro tune`` — without touching any of
them::

    from repro.oracle import EngineOracle, register_oracle

    register_oracle(EngineOracle("mine", "scalar", "my engine wrapper"))
"""

from __future__ import annotations

from typing import Union

from .base import EngineOracle, Oracle, OracleError
from .surrogate import (
    MIN_TRAIN_ROWS, SurrogateModel, SurrogateOracle, spearman,
)
from .training import LOG_FILENAME, TrainingLog, cost_fingerprint

__all__ = [
    "Oracle",
    "OracleError",
    "EngineOracle",
    "LearnedOracle",
    "SurrogateModel",
    "SurrogateOracle",
    "TrainingLog",
    "spearman",
    "cost_fingerprint",
    "MIN_TRAIN_ROWS",
    "LOG_FILENAME",
    "available_oracles",
    "get_oracle",
    "register_oracle",
    "unregister_oracle",
    "BUILTIN_ORACLES",
    "DEFAULT_ORACLE",
]

#: the oracle every run uses when none is named; omitting ``--oracle``
#: and naming this one produce identical cache keys (see store.run_key)
DEFAULT_ORACLE = "sim"


class LearnedOracle(Oracle):
    """The surrogate built-in: wraps the tuner's simulation oracle in a
    :class:`SurrogateOracle` trained from the runner's training log."""

    name = "surrogate"
    summary = "learned prefilter: predict cheap rungs, simulate the rest"
    exact = False
    engine = None

    def scorer(self, sim, *, training_log=None):
        return SurrogateOracle(sim, training_log)


#: name -> singleton; insertion order is the presentation order of
#: ``repro list``
_REGISTRY: dict[str, Oracle] = {}


def register_oracle(oracle: Oracle, replace: bool = False) -> Oracle:
    """Add an oracle to the registry (validated); returns it."""
    if not isinstance(oracle, Oracle):
        raise TypeError(f"expected an Oracle instance, got {oracle!r}")
    if not oracle.name:
        raise ValueError(f"{type(oracle).__name__} must define a name")
    if oracle.exact and oracle.engine is not None:
        from ..sim.device import ENGINES

        if oracle.engine not in ENGINES:
            raise ValueError(
                f"oracle {oracle.name!r} names unknown sim engine "
                f"{oracle.engine!r}; available: {', '.join(sorted(ENGINES))}")
    if oracle.name in _REGISTRY and not replace:
        raise ValueError(f"oracle {oracle.name!r} is already registered")
    _REGISTRY[oracle.name] = oracle
    return oracle


def unregister_oracle(name: str) -> None:
    """Remove an oracle (test/plugin cleanup). Built-ins may be removed
    too; re-register them from the exported classes if needed."""
    if name not in _REGISTRY:
        raise KeyError(f"oracle {name!r} is not registered")
    del _REGISTRY[name]


def get_oracle(name: Union[str, Oracle]) -> Oracle:
    """Look up an oracle by name; instances pass through unchanged."""
    if isinstance(name, Oracle):
        return name
    oracle = _REGISTRY.get(name)
    if oracle is None:
        raise OracleError(
            f"unknown oracle {name!r}; "
            f"available: {', '.join(available_oracles())}")
    return oracle


def available_oracles() -> tuple[str, ...]:
    """Registered oracle names, in registration order."""
    return tuple(_REGISTRY)


register_oracle(EngineOracle(
    "sim", "vectorized",
    "the simulator on the vectorized engine (the default)"))
register_oracle(EngineOracle(
    "sim-scalar", "scalar",
    "the simulator on the scalar reference engine"))
register_oracle(LearnedOracle())

#: the built-in oracles, as registered singletons
BUILTIN_ORACLES = tuple(_REGISTRY.values())

"""Oracle base class — how a run (or a tuning trial) gets its answer.

An :class:`Oracle` names one way of producing metrics for a run
description. **Exact** oracles are the simulator itself: they select a
functional-engine implementation (:data:`repro.sim.device.ENGINES`) and
their answers are bitwise-reproducible RunMetrics — any exact oracle may
be named on a :class:`~repro.experiments.plan.RunSpec`, ``App.run``, or
``repro run --oracle``. **Learned** oracles (``exact=False``) only
*approximate* metrics and are therefore valid solely as tuning
prefilters (``repro tune --oracle surrogate``): the runner refuses to
execute them, and the tuner always confirms winners at full fidelity
through the embedded simulation oracle.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..errors import ReproError


class OracleError(ReproError):
    """An oracle could not be resolved or used."""


class Oracle(abc.ABC):
    """One way of answering "what are this run's metrics?"."""

    #: registry key (``--oracle``)
    name: str = ""
    #: one-line description for ``repro list`` and docs
    summary: str = ""
    #: True when answers are real simulator runs (bitwise-reproducible
    #: metrics); False for learned approximations, which the experiment
    #: runner refuses to execute
    exact: bool = True
    #: functional-engine implementation exact runs select
    #: (:data:`repro.sim.device.ENGINES`); None defers to the device
    #: default
    engine: Optional[str] = None

    def scorer(self, sim, *, training_log=None):
        """The candidate scorer the tuner should drive.

        ``sim`` is the tuner's :class:`~repro.tuning.oracle.SimulationOracle`
        (already bound to app/objective/store/fidelity runners); exact
        oracles return it unchanged, learned oracles wrap it.
        """
        return sim

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class EngineOracle(Oracle):
    """An exact oracle: the simulator running one functional engine."""

    def __init__(self, name: str, engine: str, summary: str):
        self.name = name
        self.engine = engine
        self.summary = summary

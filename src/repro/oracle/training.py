"""Append-only training log for the learned surrogate oracle.

The result store is content-addressed: its keys are one-way hashes, and
its pickled AppRuns do not carry the threshold/config/cost axes that
determine them — so stored results cannot be turned back into
(configuration -> metrics) training pairs. Instead, the experiment
runner appends one JSONL row per *executed* simulation (cache hits never
re-log), right beside the store, capturing exactly the axes the
surrogate featurizes plus the objective metrics it predicts.

Rows are self-describing and versioned; unreadable or foreign-version
lines are skipped on read, so the log can grow across package versions
without a migration pass. Appends are single ``write`` calls of one
line, so concurrent runners interleave whole rows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Optional

#: bump when the row schema changes incompatibly; readers skip rows
#: written under a different version
LOG_VERSION = 1

#: filename of the log placed beside a result store
LOG_FILENAME = "surrogate-train.jsonl"

#: RunMetrics fields recorded as prediction targets — exactly the three
#: tuning objectives (:data:`repro.tuning.objectives.OBJECTIVES`)
TARGET_METRICS = ("cycles", "warp_execution_efficiency", "dram_transactions")


def cost_fingerprint(cost) -> str:
    """Short content hash of a cost model (training rows are only
    comparable under identical cost constants)."""
    blob = json.dumps(dataclasses.asdict(cost), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


class TrainingLog:
    """JSONL file of (run axes -> metrics) rows for surrogate training."""

    def __init__(self, path):
        self.path = Path(path)

    @classmethod
    def for_store(cls, store) -> "TrainingLog":
        """The log conventionally kept beside a ResultStore."""
        return cls(Path(store.root) / LOG_FILENAME)

    def record(self, *, app: str, workload: Optional[str], device: str,
               cost, scale: float, verify: bool, variant: str,
               strategy: Optional[str], threshold: Optional[int],
               config: Optional[tuple], metrics) -> None:
        """Append one executed run. ``config`` is the hashable
        ``(mode, blocks, threads)`` triple (or None)."""
        row = {
            "v": LOG_VERSION,
            "app": app,
            "workload": workload,
            "device": device,
            "cost": cost_fingerprint(cost),
            "scale": scale,
            "verify": verify,
            "variant": variant,
            "strategy": strategy,
            "threshold": threshold,
            "config": list(config) if config is not None else None,
            "metrics": {m: float(getattr(metrics, m))
                        for m in TARGET_METRICS},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")

    def rows(self, *, app: str, device: str, cost_fp: str, verify: bool,
             workload: Optional[str] = None) -> list[dict]:
        """Every readable row matching one training context.

        The context pins app, workload, device spec, cost model and
        verify flag; *scale* is deliberately not filtered — it is a
        feature, so full-fidelity history informs reduced-scale rungs
        (and vice versa). ``workload=None`` matches the app's default
        workload (the canonical folded spelling), not "any workload".
        """
        if not self.path.exists():
            return []
        out = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue  # torn / foreign line: skip, never raise
                if (row.get("v") == LOG_VERSION
                        and row.get("app") == app
                        and row.get("workload") == workload
                        and row.get("device") == device
                        and row.get("cost") == cost_fp
                        and row.get("verify") == verify):
                    out.append(row)
        return out

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def __repr__(self) -> str:
        return f"TrainingLog({str(self.path)!r})"

"""The learned surrogate oracle: ridge regression over run axes.

The tuner's multi-fidelity searches (successive halving) spend their
cheap rungs *ranking* candidates — the absolute score only matters at
the final full-fidelity rung, where the simulator confirms the winner.
A surrogate therefore only has to rank well to be useful, which a small
linear model over engineered configuration features achieves from a few
dozen logged runs.

Implementation notes:

* **Pure NumPy.** Ridge regression is a closed-form solve
  (``(XᵀX + λI) w = Xᵀy`` over standardized features), so no learning
  framework is needed and predictions are exactly reproducible.
* **Log-space targets.** Cycle and DRAM counts span orders of magnitude
  across dataset scales; training on ``log1p`` linearizes the scale
  axis. Maximized ratio objectives (warp efficiency) train raw.
* **Honest fallback.** Below :data:`MIN_TRAIN_ROWS` usable rows the
  model refuses to fit, and :class:`SurrogateOracle` transparently
  delegates to its embedded simulation oracle — a cold store tunes
  exactly like ``--oracle sim``, never off a garbage model.

:class:`SurrogateOracle` implements the scorer contract of
:class:`repro.tuning.oracle.SimulationOracle` (``evaluate`` /
``is_full_fidelity`` / ``stats``), so every registered search algorithm
works unmodified: reduced-fidelity rungs are answered by prediction
(zero simulations), full-fidelity evaluations always go to the
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.common import BASIC, BLOCK, CONS, FLAT, GRID, WARP
from ..telemetry import span
from .training import TrainingLog, cost_fingerprint

#: fewest usable training rows before the model consents to fit;
#: below this the surrogate oracle falls back to pure simulation
MIN_TRAIN_ROWS = 8

#: L2 penalty on the standardized design matrix
RIDGE_LAMBDA = 1e-3

#: canonical variant spellings the one-hot encoding distinguishes
#: (non-builtin strategies share the generic ``consolidated`` bucket)
_VARIANT_KEYS = (BASIC, FLAT, WARP, BLOCK, GRID, CONS)

#: launch-config modes (:meth:`repro.tuning.space.Candidate.config_key`)
_CONFIG_MODES = ("one2one", "explicit", "kc")


def _features(variant: str, strategy: Optional[str],
              threshold: Optional[int], config: Optional[tuple],
              scale: float, default_threshold: int) -> list[float]:
    """Feature vector for one run configuration.

    The same encoder serves training rows (already canonicalized by the
    runner) and tuning candidates, so train and predict can never skew.
    """
    feats = [1.0 if variant == key else 0.0 for key in _VARIANT_KEYS]
    t = threshold if threshold is not None else default_threshold
    feats.append(math.log2(1.0 + max(0, t)))
    if config is None:
        mode, blocks, threads = None, None, None
    else:
        mode, blocks, threads = config
    feats.extend(1.0 if mode == m else 0.0 for m in _CONFIG_MODES)
    feats.append(0.0 if config is None else 1.0)
    feats.append(math.log2(float(blocks)) if blocks else 0.0)
    feats.append(math.log2(float(threads)) if threads else 0.0)
    feats.append(math.log2(max(scale, 1e-6)))
    return feats


def spearman(a, b) -> float:
    """Spearman rank correlation of two equal-length sequences (the
    bench's surrogate-quality number). NaN when either side is
    constant (no ranking to correlate)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    # double-argsort ranks a constant vector 0..n-1, so the no-ranking
    # case must be detected on the raw values, not the ranks
    if len(a) < 2 or a.min() == a.max() or b.min() == b.max():
        return float("nan")
    ra = np.argsort(np.argsort(a, kind="stable"), kind="stable")
    rb = np.argsort(np.argsort(b, kind="stable"), kind="stable")
    sa, sb = ra.std(), rb.std()
    if sa == 0.0 or sb == 0.0:
        return float("nan")
    cov = float(((ra - ra.mean()) * (rb - rb.mean())).mean())
    return cov / float(sa * sb)


@dataclass
class SurrogateModel:
    """A fitted ridge regressor predicting one objective metric."""

    weights: np.ndarray
    x_mean: np.ndarray
    x_scale: np.ndarray
    #: True when the target was trained as ``log1p(metric)``
    log_target: bool
    default_threshold: int
    n_rows: int

    @classmethod
    def fit(cls, rows: list[dict], objective, *, default_threshold: int,
            min_rows: int = MIN_TRAIN_ROWS,
            ridge: float = RIDGE_LAMBDA) -> Optional["SurrogateModel"]:
        """Fit on training-log rows; None when too few are usable."""
        xs, ys = [], []
        log_target = not objective.maximize
        for row in rows:
            metric = row.get("metrics", {}).get(objective.metric)
            if metric is None:
                continue
            xs.append(_features(row["variant"], row["strategy"],
                                row["threshold"],
                                tuple(row["config"]) if row["config"]
                                else None,
                                row["scale"], default_threshold))
            ys.append(math.log1p(metric) if log_target else float(metric))
        if len(xs) < min_rows:
            return None
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        x_mean = x.mean(axis=0)
        x_scale = x.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        xn = np.hstack([(x - x_mean) / x_scale,
                        np.ones((x.shape[0], 1))])
        gram = xn.T @ xn + ridge * np.eye(xn.shape[1])
        weights = np.linalg.solve(gram, xn.T @ y)
        return cls(weights=weights, x_mean=x_mean, x_scale=x_scale,
                   log_target=log_target,
                   default_threshold=default_threshold, n_rows=len(xs))

    def predict_axes(self, axes: list[tuple], scale: float) -> np.ndarray:
        """Predicted metric values (natural units) for run-axis tuples
        ``(variant, strategy, threshold, config)`` at one dataset scale."""
        x = np.asarray(
            [_features(v, s, t, c, scale, self.default_threshold)
             for v, s, t, c in axes], dtype=np.float64)
        xn = np.hstack([(x - self.x_mean) / self.x_scale,
                        np.ones((x.shape[0], 1))])
        z = xn @ self.weights
        return np.expm1(z) if self.log_target else z

    def predict_rows(self, rows: list[dict],
                     objective) -> tuple[np.ndarray, np.ndarray]:
        """(predicted, actual) over training-log rows with a usable
        objective metric — the pairing behind the training-set Spearman
        number ``repro tune`` reports. Uses each row's own scale, so the
        fit is judged on exactly what it was trained on."""
        xs, actual = [], []
        for row in rows:
            metric = row.get("metrics", {}).get(objective.metric)
            if metric is None:
                continue
            xs.append(_features(row["variant"], row["strategy"],
                                row["threshold"],
                                tuple(row["config"]) if row["config"]
                                else None,
                                row["scale"], self.default_threshold))
            actual.append(float(metric))
        if not xs:
            return np.empty(0), np.empty(0)
        x = np.asarray(xs, dtype=np.float64)
        xn = np.hstack([(x - self.x_mean) / self.x_scale,
                        np.ones((x.shape[0], 1))])
        z = xn @ self.weights
        pred = np.expm1(z) if self.log_target else z
        return pred, np.asarray(actual, dtype=np.float64)


class SurrogateOracle:
    """Multi-fidelity prefilter: predict the cheap rungs, simulate the
    final one.

    Drop-in for :class:`repro.tuning.oracle.SimulationOracle` wherever a
    search algorithm consumes one. Full-fidelity evaluations — and every
    evaluation while the training log is too cold to fit — delegate to
    the embedded simulation oracle unchanged, so the tuner's winner is
    always a real simulated score.
    """

    def __init__(self, sim, training_log: Optional[TrainingLog] = None,
                 *, min_rows: int = MIN_TRAIN_ROWS):
        self.sim = sim
        self.training_log = training_log
        self.min_rows = min_rows
        #: predictions served instead of simulations (reporting/tests)
        self.predicted = 0
        #: low-fidelity batches that fell back to simulation (cold log)
        self.fallbacks = 0
        #: per-batch decision trail, in evaluation order: dicts of
        #: ``{scale, mode, candidates}`` with mode one of ``predicted``
        #: / ``simulated`` (full fidelity) / ``fallback`` (cold log) —
        #: surfaced by ``repro tune`` via :meth:`surrogate_report`
        self.decisions: list[dict] = []
        self._model: Optional[SurrogateModel] = None
        self._model_fitted = False
        self._train_rows: list[dict] = []

    # mirror the attributes tuner/search read off a simulation oracle
    @property
    def app(self):
        return self.sim.app

    @property
    def objective(self):
        return self.sim.objective

    @property
    def scale(self):
        return self.sim.scale

    @property
    def workload(self):
        return self.sim.workload

    @property
    def cost(self):
        return self.sim.cost

    @property
    def spec(self):
        return self.sim.spec

    @property
    def verify(self):
        return self.sim.verify

    def model(self) -> Optional[SurrogateModel]:
        """The fitted model (trained lazily, once per oracle)."""
        if not self._model_fitted:
            self._model_fitted = True
            if self.training_log is not None:
                rows = self.training_log.rows(
                    app=self.sim.app, workload=self.sim.workload,
                    device=self.sim.spec.name,
                    cost_fp=cost_fingerprint(self.sim.cost),
                    verify=self.sim.verify)
                self._train_rows = rows
                self._model = SurrogateModel.fit(
                    rows, self.sim.objective,
                    default_threshold=self._default_threshold(),
                    min_rows=self.min_rows)
        return self._model

    def _default_threshold(self) -> int:
        from ..apps import get_app

        return get_app(self.sim.app).threshold

    # -- scorer contract -------------------------------------------------------

    def evaluate(self, candidates, factor: float = 1.0):
        """Score a batch: predictions for reduced fidelity, simulation
        for full fidelity (and as the cold-log fallback)."""
        from ..tuning.oracle import Trial

        candidates = list(candidates)
        scale = self.sim._rung_scale(factor)
        if scale >= self.sim.scale:
            # full fidelity is always simulated — a prediction must
            # never be eligible as the tuner's winner
            self.decisions.append({"scale": scale, "mode": "simulated",
                                   "candidates": len(candidates)})
            return self.sim.evaluate(candidates, factor)
        model = self.model()
        if model is None:
            self.fallbacks += 1
            self.decisions.append({"scale": scale, "mode": "fallback",
                                   "candidates": len(candidates)})
            return self.sim.evaluate(candidates, factor)
        from ..apps.common import canonicalize_variant

        self.decisions.append({"scale": scale, "mode": "predicted",
                               "candidates": len(candidates)})
        with span("oracle.predict", app=self.sim.app,
                  candidates=len(candidates), scale=scale):
            axes = []
            for cand in candidates:
                variant, strategy = canonicalize_variant(CONS, cand.strategy)
                axes.append((variant, strategy, cand.threshold,
                             cand.config_key(self.sim.spec)))
            values = model.predict_axes(axes, scale)
        self.predicted += len(candidates)
        obj = self.sim.objective
        return [Trial(candidate=cand, value=float(v),
                      loss=obj.loss(float(v)), scale=scale)
                for cand, v in zip(candidates, values)]

    def is_full_fidelity(self, trial) -> bool:
        return self.sim.is_full_fidelity(trial)

    def stats(self):
        return self.sim.stats()

    def surrogate_report(self) -> dict:
        """What the surrogate decided during this tune, for ``repro
        tune`` output and telemetry: per-batch decision trail, aggregate
        predicted/fallback counts, training-set size, and the model's
        Spearman rank correlation on its own training rows (the
        inspectable counterpart of BENCH_surrogate_tune.json's claim)."""
        model = self.model()
        rho = None
        if model is not None and self._train_rows:
            pred, actual = model.predict_rows(self._train_rows,
                                              self.sim.objective)
            if len(pred) >= 2:
                value = spearman(pred, actual)
                if not math.isnan(value):
                    rho = round(float(value), 4)
        return {
            "oracle": "surrogate",
            "predicted": self.predicted,
            "fallbacks": self.fallbacks,
            "train_rows": 0 if model is None else model.n_rows,
            "spearman": rho,
            "decisions": list(self.decisions),
        }

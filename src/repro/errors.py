"""Exception hierarchy for the repro package.

Every error raised by the frontend, compiler, backend or simulator derives
from :class:`ReproError` so callers can catch the whole family at once.
Frontend errors carry a :class:`~repro.frontend.source.SourceLocation` when
one is available, and render ``file:line:col: message`` strings the way a
conventional compiler driver would.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


#: The package's deprecation cadence (DESIGN.md §15): when an API moves
#: to a canonical home, the old spelling survives for **two PRs** as a
#: shim that emits :class:`DeprecationWarning` and delegates verbatim,
#: then is removed outright — the removal site keeps a one-line comment
#: pointing here. Shims never change behaviour (identical RunSpecs,
#: identical cache keys), so retiring one invalidates nothing on disk.
DeprecationPolicy = (
    "deprecated APIs warn for two PRs, then are removed; see DESIGN.md §15"
)


class SourceError(ReproError):
    """An error tied to a location in MiniCUDA source code."""

    def __init__(self, message: str, loc=None):
        self.message = message
        self.loc = loc
        super().__init__(self._render())

    def _render(self) -> str:
        if self.loc is None:
            return self.message
        return f"{self.loc}: {self.message}"


class LexError(SourceError):
    """Raised by the lexer on malformed input (bad characters, unterminated
    comments or literals)."""


class ParseError(SourceError):
    """Raised by the parser on a syntax error."""


class PragmaError(SourceError):
    """Raised for malformed ``#pragma dp`` directives (Table I grammar)."""


class TypeCheckError(SourceError):
    """Raised by semantic analysis (unknown identifiers, bad launches,
    non-lvalue assignments, arity mismatches, ...)."""


class TransformError(SourceError):
    """Raised when a consolidation transform cannot be applied, e.g. the
    annotated kernel does not follow the paper's Fig. 1 template."""


class CodegenError(SourceError):
    """Raised by the Python backend for constructs it cannot lower."""


class SimulationError(ReproError):
    """Raised by the GPU simulator for violations of device limits or
    internal inconsistencies (e.g. exceeding the DP nesting depth)."""


class LaunchError(SimulationError):
    """Raised for invalid kernel launch configurations."""


class AllocationError(SimulationError):
    """Raised by device memory allocators (out of memory, bad free)."""


class DeviceAssertError(SimulationError):
    """Raised when a MiniCUDA ``assert``-style intrinsic fails during
    functional execution."""

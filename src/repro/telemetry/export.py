"""Trace exporters: Chrome trace-event JSON, attribution, span trees.

The JSON exporter targets the Chrome trace-event format ("JSON Object
Format" with a ``traceEvents`` list of ``ph: "X"`` complete events),
which both chrome://tracing and Perfetto open directly. Export is
deterministic for a deterministic run: spans sort by (start, record
order), thread ids compress to first-seen small integers, and
timestamps are microseconds from the tracer's epoch.

The text side serves ``repro trace``: a per-phase wall-clock
attribution table (self-time, so a parent is not double-billed for its
children) and an indented span tree.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections import defaultdict
from typing import Optional

from .trace import Tracer

#: stamped into ``otherData`` so tools can gate on the producer
TRACE_FORMAT = "repro-telemetry/1"

_SCALARS = (str, int, float, bool, type(None))


def _arg(value):
    return value if isinstance(value, _SCALARS) else str(value)


def _note_dropped(tracer: Tracer) -> None:
    """Surface span overflow at export time: count the loss in the
    default metrics registry and warn once per tracer — a silently
    truncated trace misattributes everything past the cap."""
    if getattr(tracer, "_overflow_noted", False):
        return
    tracer._overflow_noted = True
    from .metrics import default_registry

    default_registry().counter(
        "repro_trace_dropped_spans",
        "spans dropped by bounded tracers (observed at export time)",
    ).inc(tracer.dropped)
    warnings.warn(
        f"tracer dropped {tracer.dropped} span(s) past its "
        f"{tracer.max_spans}-span bound; the exported trace is truncated "
        f"(raise Tracer(max_spans=...) to capture everything)",
        RuntimeWarning, stacklevel=3)


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome trace-event JSON object."""
    if tracer.dropped:
        _note_dropped(tracer)
    spans = tracer.spans()
    tids: dict[int, int] = {}
    names: dict[int, str] = {t.ident: t.name for t in threading.enumerate()}
    events = []
    for sp in spans:
        tid = tids.setdefault(sp.thread, len(tids) + 1)
        event = {
            "name": sp.name,
            "cat": "repro",
            "ph": "X",
            "ts": round((sp.t0 - tracer.epoch) * 1e6, 3),
            "dur": round((sp.t1 - sp.t0) * 1e6, 3),
            "pid": 1,
            "tid": tid,
        }
        if sp.attrs:
            event["args"] = {k: _arg(v) for k, v in sp.attrs.items()}
        events.append(event)
    meta = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": names.get(ident, f"thread-{tid}")}}
            for ident, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"format": TRACE_FORMAT, "spans": len(events),
                      "dropped": tracer.dropped},
    }


def write_trace_object(path, obj: dict) -> str:
    """Write an already-built Chrome trace object to ``path`` (dirs
    created); the written path is returned for reporting. Shared by the
    tracer exporter below and the deep profiler's cycle-domain trace
    (:func:`repro.perf.report.profile_chrome_trace`)."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return path


def write_chrome_trace(path, tracer: Tracer) -> str:
    """Write the Chrome trace JSON to ``path`` (dirs created); the
    written path is returned for reporting."""
    return write_trace_object(path, chrome_trace(tracer))


def validate_chrome_trace(obj: dict) -> int:
    """Schema-check a Chrome trace object; the number of complete
    (``ph: "X"``) events is returned. Counter events (``ph: "C"``, used
    by the deep profiler's occupancy timeline) and metadata (``ph: "M"``)
    are accepted too. Raises ``ValueError`` on any violation — the test
    suite runs every exported trace through this.
    """
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    n_complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i}: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "C"):
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"event {i}: name must be a string")
        if not isinstance(ev.get("pid"), int) \
                or not isinstance(ev.get("tid"), int):
            raise ValueError(f"event {i}: pid/tid must be integers")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"event {i}: args must be an object")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    raise ValueError(f"event {i}: {key} must be numeric")
            if ev["dur"] < 0:
                raise ValueError(f"event {i}: negative duration")
            n_complete += 1
        elif ph == "C":
            if not isinstance(ev.get("ts"), (int, float)):
                raise ValueError(f"event {i}: ts must be numeric")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"event {i}: counter needs non-empty args")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"event {i}: counter series {key!r} must be numeric")
    return n_complete


# -- attribution --------------------------------------------------------------


def attribution(tracer: Tracer) -> list[dict]:
    """Per-phase rows: count, total seconds, self seconds (total minus
    time inside child spans), sorted by self-time descending."""
    spans = tracer.spans()
    child_time: dict[int, float] = defaultdict(float)
    for sp in spans:
        if sp.parent is not None:
            child_time[id(sp.parent)] += sp.duration
    rows: dict[str, dict] = {}
    for sp in spans:
        row = rows.setdefault(sp.name, {"phase": sp.name, "count": 0,
                                        "total_s": 0.0, "self_s": 0.0})
        row["count"] += 1
        row["total_s"] += sp.duration
        row["self_s"] += max(0.0, sp.duration - child_time.get(id(sp), 0.0))
    return sorted(rows.values(), key=lambda r: (-r["self_s"], r["phase"]))


def coverage(tracer: Tracer, wall_s: float) -> float:
    """Fraction of ``wall_s`` covered by top-level spans (the
    acceptance number: a trace that misses wall-clock is lying)."""
    top = sum(sp.duration for sp in tracer.spans() if sp.parent is None)
    return min(1.0, top / wall_s) if wall_s > 0 else 0.0


def attribution_table(tracer: Tracer, wall_s: Optional[float] = None) -> str:
    """The ``repro trace`` attribution table. Self-time percentages are
    against measured wall-clock, so the column sums to the coverage."""
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    if wall_s is None:
        wall_s = max(sp.t1 for sp in spans) - min(sp.t0 for sp in spans)
    rows = attribution(tracer)
    width = max(24, max(len(r["phase"]) for r in rows) + 2)
    lines = [f"{'phase':<{width}} {'count':>7} {'total':>10} "
             f"{'self':>10} {'% wall':>7}"]
    for r in rows:
        pct = 100.0 * r["self_s"] / wall_s if wall_s > 0 else 0.0
        lines.append(f"{r['phase']:<{width}} {r['count']:>7} "
                     f"{r['total_s']:>9.4f}s {r['self_s']:>9.4f}s "
                     f"{pct:>6.1f}%")
    cov = coverage(tracer, wall_s)
    lines.append(f"[{len(spans)} spans cover {100.0 * cov:.1f}% of "
                 f"{wall_s:.4f}s wall-clock; {tracer.dropped} dropped]")
    return "\n".join(lines)


def span_tree(tracer: Tracer, max_children: int = 8) -> str:
    """Indented span tree (children beyond ``max_children`` per parent
    are elided with a count, keeping deep sim traces printable)."""
    spans = tracer.spans()
    children: dict[Optional[int], list] = defaultdict(list)
    for sp in spans:
        children[id(sp.parent) if sp.parent is not None else None].append(sp)
    lines: list[str] = []

    def emit(sp, depth):
        attrs = "".join(f" {k}={_arg(v)}" for k, v in sp.attrs.items())
        lines.append(f"{'  ' * depth}{sp.name:<{max(1, 32 - 2 * depth)}} "
                     f"{sp.duration * 1e3:>9.3f}ms{attrs}")
        kids = children.get(id(sp), [])
        for kid in kids[:max_children]:
            emit(kid, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}... "
                         f"{len(kids) - max_children} more")

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"

"""Context-var tracing: nested spans into a bounded in-memory collector.

The design point is the *disabled* path: instrumented call sites run in
every hot loop (per-request in the daemon, per-round in the sim), so
``span("name")`` with no active tracer must cost one global read plus
one ContextVar read and allocate nothing — it returns the shared
:data:`NULL_SPAN` singleton, whose ``__enter__``/``__exit__``/``set``
are empty methods on an empty-``__slots__`` class.

Activation comes in two scopes:

* :func:`tracing` — a context manager binding a :class:`Tracer` into a
  ContextVar. The binding follows asyncio task creation (contextvars
  copy into tasks) and stays out of unrelated threads. This is what
  ``repro trace`` and ``RunConfig(trace=...)`` use.
* :func:`install` / :func:`uninstall` — a process-global tracer for the
  service daemon, whose work hops from the event loop into
  ``run_in_executor`` worker threads where ContextVars do *not* follow.

Parent linkage is per-context: entering a span rebinds the ContextVar
to ``(tracer, span)``, so concurrent asyncio tasks each see their own
span stack while sharing one collector. Spans record wall-clock from
``time.perf_counter()`` relative to the tracer's epoch and are appended
to the collector on exit (children therefore precede their parents in
append order; exporters re-sort by start time).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

#: collector bound: spans past this are counted in ``Tracer.dropped``
#: instead of retained (a runaway trace must not exhaust memory)
DEFAULT_MAX_SPANS = 200_000


class NullSpan:
    """The do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()

#: (tracer, parent span | None) for the current context; None = off
_STATE: ContextVar[Optional[tuple]] = ContextVar(
    "repro_telemetry_state", default=None)

#: process-global fallback tracer (service daemon); checked after the
#: ContextVar so a scoped ``tracing()`` block always wins
_GLOBAL: Optional["Tracer"] = None


class Span:
    """One timed phase. Created by :func:`span`, recorded on exit."""

    __slots__ = ("tracer", "name", "attrs", "parent", "thread",
                 "t0", "t1", "seq", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent: Optional["Span"],
                 attrs: dict):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self.thread = threading.get_ident()
        self.t0 = 0.0
        self.t1 = 0.0
        self.seq = -1
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to a live span (exported as trace args)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "Span":
        self._token = _STATE.set((self.tracer, self))
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.t1 = time.perf_counter()
        _STATE.reset(self._token)
        self.tracer._record(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class Tracer:
    """A bounded, thread-safe collector of finished spans."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self.max_spans = max_spans
        self.epoch = time.perf_counter()
        self.dropped = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def _record(self, sp: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            sp.seq = len(self._spans)
            self._spans.append(sp)

    def spans(self) -> list[Span]:
        """Finished spans ordered by start time (stable on ties)."""
        with self._lock:
            snapshot = list(self._spans)
        return sorted(snapshot, key=lambda s: (s.t0, s.seq))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


def _current() -> Optional[tuple]:
    state = _STATE.get()
    if state is not None:
        return state
    if _GLOBAL is not None:
        return (_GLOBAL, None)
    return None


def enabled() -> bool:
    """True when a tracer is active in this context (or globally)."""
    return _current() is not None


def span(name: str, /, **attrs):
    """Open a span under the active tracer; a no-op when tracing is off.

    Usage at every instrumentation point::

        with span("runner.execute", app=spec.app):
            ...

    The off path allocates nothing: ``attrs`` is only materialized by
    the caller (keyword dict), and the returned object is the shared
    :data:`NULL_SPAN`.
    """
    state = _STATE.get()
    if state is None:
        if _GLOBAL is None:
            return NULL_SPAN
        state = (_GLOBAL, None)
    tracer, parent = state
    return Span(tracer, name, parent, attrs)


@contextmanager
def tracing(tracer: Tracer):
    """Bind ``tracer`` as the active tracer for the current context."""
    token = _STATE.set((tracer, None))
    try:
        yield tracer
    finally:
        _STATE.reset(token)


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the process-global tracer (all threads see it)."""
    global _GLOBAL
    _GLOBAL = tracer


def uninstall(tracer: Optional[Tracer] = None) -> None:
    """Clear the process-global tracer (if ``tracer`` given, only when
    it is still the installed one — safe under re-entrancy)."""
    global _GLOBAL
    if tracer is None or _GLOBAL is tracer:
        _GLOBAL = None

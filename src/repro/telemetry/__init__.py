"""repro.telemetry — tracing, metrics and profiling for the whole stack.

Three layers, zero dependencies:

* :mod:`trace` — ``with span("phase", **attrs):`` contexts feeding a
  bounded :class:`Tracer`; free when no tracer is active.
* :mod:`metrics` — a typed :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) with Prometheus text rendering; the service
  daemon's per-endpoint counters are its first client.
* :mod:`export` — deterministic Chrome-trace-event JSON (Perfetto /
  chrome://tracing), per-phase attribution tables and span trees.

Invariants (regression-tested): telemetry off allocates no span
objects; telemetry on never perturbs results — cache keys and
``RunMetrics`` stay byte-identical, and the service wire protocol only
gains an optional, feature-advertised ``metrics`` op.
"""

from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, default_registry)
from .trace import (NULL_SPAN, Span, Tracer, enabled, install, span,
                    tracing, uninstall)
from .export import (attribution, attribution_table, chrome_trace, coverage,
                     span_tree, validate_chrome_trace, write_chrome_trace,
                     write_trace_object)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "default_registry",
    "Span", "Tracer", "NULL_SPAN", "span", "enabled", "tracing",
    "install", "uninstall",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "write_trace_object",
    "attribution", "attribution_table", "coverage", "span_tree",
]

"""Typed metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named, get-or-create collection — the
service daemon owns one, :class:`repro.service.metrics.ServiceMetrics`
backs its per-endpoint counters onto it, and the wire ``metrics`` op
ships both a structured snapshot and the Prometheus text rendering of
:meth:`MetricsRegistry.render`.

Zero dependencies by design (no prometheus_client): the exposition
format is a dozen lines of text, and keeping telemetry import-clean
means the sim and runner can be instrumented without dragging anything
into their import graphs.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Optional, Union

#: latency-flavoured default edges, in seconds
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

Number = Union[int, float]


class Counter:
    """A monotonically incremented value (``set`` exists so descriptor
    views over legacy mutable fields can assign directly)."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        self.value = value


class Gauge:
    """A value that goes up and down (queue depths, active requests)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative rendering à la Prometheus)."""

    kind = "histogram"
    __slots__ = ("name", "help", "edges", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 edges: tuple = DEFAULT_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be sorted/unique: {edges}")
        self.name = name
        self.help = help
        self.edges = edges
        #: per-bucket (non-cumulative) counts; [-1] is the +Inf bucket
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named get-or-create metric collection with deterministic export."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kw) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kw)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  edges: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, edges=edges)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-able view: scalars for counters/gauges, a dict with
        bucket edges / counts / sum / count for histograms."""
        out = {}
        with self._lock:
            items = sorted(self._metrics.items())
        for name, m in items:
            if isinstance(m, Histogram):
                out[name] = {"kind": m.kind, "edges": list(m.edges),
                             "counts": list(m.counts),
                             "sum": m.sum, "count": m.count}
            else:
                out[name] = {"kind": m.kind, "value": m.value}
        return out

    def render(self) -> str:
        """Prometheus text exposition (sorted by metric name)."""
        lines = []
        with self._lock:
            items = sorted(self._metrics.items())
        for name, m in items:
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                cumulative = 0
                for edge, n in zip(m.edges, m.counts):
                    cumulative += n
                    lines.append(
                        f'{name}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {m.count}')
                lines.append(f"{name}_sum {_fmt(m.sum)}")
                lines.append(f"{name}_count {m.count}")
            else:
                lines.append(f"{name} {_fmt(m.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: lazily created process-wide registry (see :func:`default_registry`)
_DEFAULT: Optional[MetricsRegistry] = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for instrumentation that has no owner
    to hand it one (e.g. the trace exporter's dropped-span counter).
    Components with a natural owner — the service daemon — should keep
    constructing their own."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry()
        return _DEFAULT


def _fmt(value: Number) -> str:
    """Prometheus-friendly number formatting (no trailing .0 on ints)."""
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))

"""Client library for the experiment service.

Two clients over the same wire protocol:

* :class:`ServiceClient` — synchronous, for CLI commands
  (``repro submit`` / ``repro status``), worker threads (the service
  bench drives 32 of them), and the tuning oracle. One request/response
  at a time, except :meth:`ServiceClient.submit_many`, which *pipelines*
  a whole batch on the connection — all requests go out before any
  response is read, so the server's batching window sees the batch as
  concurrent work and coalesces/batches it accordingly.
* :class:`AsyncServiceClient` — asyncio-native; any number of
  outstanding :meth:`AsyncServiceClient.submit_spec` awaits share one
  connection (a reader task dispatches responses by request id).

Both connect over the server's unix socket by default, or TCP when
constructed with ``host``/``port``.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from dataclasses import dataclass
from typing import Iterable, Optional

from .protocol import (PROTOCOL_VERSION, ProtocolError, decode,
                       default_socket_path, encode, metrics_from_wire,
                       spec_to_wire, stats_from_wire)


class ServiceError(RuntimeError):
    """An application-level failure reported by the service (bad spec,
    missing tuned config, failed execution, draining server)."""


@dataclass
class SubmitResult:
    """One submit's outcome: run identity, full profiler metrics, and
    provenance — ``source`` says how *this* request was satisfied
    ('executed' | 'cached' | 'coalesced'), ``stats`` is the executed /
    memory-hit / disk-hit delta of the micro-batch that carried it."""

    app: str
    variant: str
    strategy: Optional[str]
    dataset: str
    checked: bool
    source: str
    metrics: object
    stats: object

    @classmethod
    def from_wire(cls, resp: dict) -> "SubmitResult":
        run = resp.get("run") or {}
        return cls(
            app=run.get("app", ""), variant=run.get("variant", ""),
            strategy=run.get("strategy"), dataset=run.get("dataset", ""),
            checked=bool(run.get("checked")),
            source=resp.get("source", ""),
            metrics=metrics_from_wire(run.get("metrics") or {}),
            stats=stats_from_wire(resp.get("stats")),
        )

    def label(self) -> str:
        return (self.variant if self.strategy is None
                else f"{self.variant}:{self.strategy}")


def _check(resp: dict) -> dict:
    if not isinstance(resp, dict):
        raise ProtocolError("response must be a JSON object")
    if not resp.get("ok"):
        raise ServiceError(resp.get("error", "unspecified service error"))
    return resp


def _hello_msg() -> dict:
    return {"op": "hello", "protocol": PROTOCOL_VERSION}


def _submit_msg(rid, spec, scale) -> dict:
    msg = {"op": "submit", "id": rid, "spec": spec_to_wire(spec)}
    if scale is not None:
        msg["scale"] = scale
    return msg


class ServiceClient:
    """Synchronous service client (auto-connects on first use)."""

    def __init__(self, socket_path=None, host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: Optional[float] = None):
        """``timeout`` bounds each blocking read/write (None — the
        default — waits as long as the work takes: a full-scale batch
        legitimately runs for minutes). Connecting is always bounded."""
        if host is not None and socket_path is not None:
            raise ValueError("pass a unix socket_path or a TCP host/port, "
                             "not both")
        self.socket_path = (None if host is not None
                            else socket_path or default_socket_path())
        self.host = host
        self.port = port
        self.timeout = timeout
        self.server_info: dict = {}
        self._ids = itertools.count(1)
        self._sock = None
        self._fh = None

    # -- connection ------------------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.host is not None:
            return f"tcp:{self.host}:{self.port}"
        return f"unix:{self.socket_path}"

    def connect(self) -> "ServiceClient":
        if self._fh is not None:
            return self
        connect_timeout = 10.0 if self.timeout is None else \
            min(10.0, self.timeout)
        try:
            if self.host is not None:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=connect_timeout)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(connect_timeout)
                sock.connect(str(self.socket_path))
        except OSError as exc:
            raise ServiceError(
                f"cannot reach the experiment service at {self.endpoint} "
                f"({exc}); is `repro serve` running?") from None
        sock.settimeout(self.timeout)
        self._sock = sock
        self._fh = sock.makefile("rwb")
        self.server_info = self._request(_hello_msg())
        return self

    def close(self) -> None:
        for closer in (self._fh, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._fh = self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ------------------------------------------------------------------

    def _send(self, msg: dict) -> None:
        try:
            self._fh.write(encode(msg))
            self._fh.flush()
        except OSError as exc:  # incl. socket.timeout
            raise ServiceError(f"write to {self.endpoint} failed: "
                               f"{exc}") from None

    def _recv(self) -> dict:
        try:
            line = self._fh.readline()
        except OSError as exc:  # incl. socket.timeout
            raise ServiceError(f"read from {self.endpoint} failed: "
                               f"{exc}") from None
        if not line:
            raise ServiceError(f"service at {self.endpoint} closed the "
                               "connection")
        return decode(line)

    def _request(self, msg: dict) -> dict:
        self.connect()
        self._send(msg)
        return _check(self._recv())

    # -- operations ------------------------------------------------------------

    def submit_spec(self, spec, scale: Optional[float] = None) -> SubmitResult:
        """Submit one RunSpec and wait for its result."""
        resp = self._request(_submit_msg(next(self._ids), spec, scale))
        return SubmitResult.from_wire(resp)

    def submit(self, app: str, variant: str, *,
               scale: Optional[float] = None, **axes) -> SubmitResult:
        """Convenience: build the RunSpec from keyword axes
        (allocator/strategy/threshold/workload/...)."""
        from ..experiments.plan import RunSpec

        return self.submit_spec(RunSpec(app=app, variant=variant, **axes),
                                scale=scale)

    def submit_config(self, app: str, config,
                      scale: Optional[float] = None) -> SubmitResult:
        """Submit one app under a unified
        :class:`repro.run_config.RunConfig` (the preferred spelling)."""
        from ..experiments.plan import RunSpec

        return self.submit_spec(RunSpec.from_config(app, config),
                                scale=scale)

    def submit_many(self, specs: Iterable,
                    scale: Optional[float] = None) -> list[SubmitResult]:
        """Pipeline a batch of specs; results come back in spec order.

        All requests are written before any response is read, so the
        server sees them concurrently — duplicates coalesce and the rest
        share one micro-batch, exactly like N independent clients."""
        self.connect()
        specs = list(specs)
        ids = [next(self._ids) for _ in specs]
        try:
            for rid, spec in zip(ids, specs):
                self._fh.write(encode(_submit_msg(rid, spec, scale)))
            self._fh.flush()
        except OSError as exc:
            raise ServiceError(f"write to {self.endpoint} failed: "
                               f"{exc}") from None
        by_id: dict = {}
        want = set(ids)
        while want:
            resp = self._recv()
            rid = resp.get("id")
            if rid not in want:
                raise ProtocolError(f"unexpected response id {rid!r}")
            want.discard(rid)
            by_id[rid] = resp
        return [SubmitResult.from_wire(_check(by_id[rid])) for rid in ids]

    def status(self) -> dict:
        return self._request({"op": "status", "id": next(self._ids)})

    def supports(self, feature: str) -> bool:
        """Whether the connected server advertised an optional op in
        its hello response (pre-PR-8 daemons advertise nothing)."""
        self.connect()
        return feature in (self.server_info.get("features") or ())

    def metrics(self) -> dict:
        """The daemon's full telemetry registry: ``metrics`` (the
        ServiceMetrics snapshot), ``registry`` (every counter/gauge/
        histogram, structured), ``text`` (Prometheus rendering).
        Requires a server advertising the ``metrics`` feature."""
        if not self.supports("metrics"):
            raise ServiceError(
                f"service at {self.endpoint} predates the metrics op "
                "(no 'metrics' in hello features); use status() instead")
        return self._request({"op": "metrics", "id": next(self._ids)})

    def shutdown(self) -> dict:
        """Ask the server to drain and exit; returns the final report."""
        return self._request({"op": "shutdown", "id": next(self._ids)})


class AsyncServiceClient:
    """Asyncio client: concurrent submits multiplex one connection."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._waiting: dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self.server_info: dict = {}

    @classmethod
    async def connect(cls, socket_path=None, host: Optional[str] = None,
                      port: Optional[int] = None) -> "AsyncServiceClient":
        self = cls()
        if host is not None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            path = str(socket_path or default_socket_path())
            reader, writer = await asyncio.open_unix_connection(path)
        self._reader, self._writer = reader, writer
        # the handshake happens before the dispatcher starts, so it can
        # read its reply directly
        writer.write(encode(_hello_msg()))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ServiceError("service closed the connection during "
                               "handshake")
        self.server_info = _check(decode(line))
        self._reader_task = asyncio.ensure_future(self._dispatch())
        return self

    async def _dispatch(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                resp = decode(line)
                fut = self._waiting.pop(resp.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(resp)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for fut in self._waiting.values():
                if not fut.done():
                    fut.set_exception(
                        ServiceError("service connection closed"))
            self._waiting.clear()

    async def _request(self, msg: dict) -> dict:
        fut = asyncio.get_running_loop().create_future()
        self._waiting[msg["id"]] = fut
        self._writer.write(encode(msg))
        await self._writer.drain()
        return _check(await fut)

    async def submit_spec(self, spec,
                          scale: Optional[float] = None) -> SubmitResult:
        resp = await self._request(_submit_msg(next(self._ids), spec, scale))
        return SubmitResult.from_wire(resp)

    async def status(self) -> dict:
        return await self._request({"op": "status", "id": next(self._ids)})

    def supports(self, feature: str) -> bool:
        return feature in (self.server_info.get("features") or ())

    async def metrics(self) -> dict:
        if not self.supports("metrics"):
            raise ServiceError("connected service predates the metrics op")
        return await self._request({"op": "metrics", "id": next(self._ids)})

    async def shutdown(self) -> dict:
        return await self._request({"op": "shutdown", "id": next(self._ids)})

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass

"""The experiment service daemon.

A long-lived asyncio server multiplexing many clients onto one
cache-backed execution stack (``repro serve``; unix socket by default,
TCP opt-in). Three mechanisms turn concurrent request streams into
throughput (DESIGN.md §13):

1. **Request coalescing** — submits are keyed by their *resolved*
   :class:`~repro.experiments.plan.RunSpec` (every runner/app default
   filled in, so value-equal requests collide by construction). A submit
   whose key is already in flight attaches to the existing execution's
   future; when it resolves, every attached client receives the result.
   Each unique spec therefore executes **at most once**, no matter how
   many clients race on it.
2. **Micro-batching** — new flights are not executed one by one: a
   batching window (default 50 ms) lets concurrent submits accumulate,
   then the whole batch goes to
   :meth:`~repro.experiments.runner.ExperimentRunner.prefetch` as one
   parallel prefetch, amortizing process-pool spin-up and sharing one
   cache pass. Batches group by dataset scale (the one axis that needs
   its own runner); the default scale is the server's, and a submit may
   carry its own — which is how reduced-fidelity tuning rungs ride the
   same daemon.
3. **The sharded result store** — every runner shares the server's
   :class:`~repro.experiments.store.ResultStore`, whose shard layout
   keeps concurrent batch writers out of each other's directories.

Execution runs on a single worker thread (batches serialize; parallelism
comes from ``prefetch``'s process pool), so the runner needs no internal
locking and the event loop stays responsive while simulations run.

Graceful shutdown (the ``shutdown`` op, SIGTERM, or SIGINT) stops
admission, drains the queue — every accepted submit still gets its
result — then answers the shutdown request and exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field
from typing import Optional

from .. import __version__
from ..experiments.runner import ExperimentRunner, RunStats
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C
from ..telemetry import MetricsRegistry, Tracer, install, span, uninstall
from .metrics import ServiceMetrics
from .protocol import (FEATURES, MAX_LINE, PROTOCOL_VERSION, ProtocolError,
                       decode, encode, error, ok, run_to_wire,
                       spec_from_wire, stats_to_wire)

#: default micro-batching window in seconds: long enough for a burst of
#: concurrent clients to land in one batch, short enough to be invisible
#: next to a single simulation
DEFAULT_BATCH_WINDOW = 0.05


#: bound on runners (one per distinct submitted dataset scale) the
#: daemon keeps alive; least-recently-used beyond this are dropped,
#: together with their materialized datasets
MAX_RUNNERS = 8


def _socket_is_live(path: str) -> bool:
    """Whether something is accepting connections on a unix socket."""
    import socket as _socket

    probe = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(path)
    except OSError:
        return False
    finally:
        probe.close()
    return True


@dataclass
class _Flight:
    """One in-flight unique execution and everyone waiting on it."""

    future: asyncio.Future
    #: how the leader's run was satisfied ("executed" | "cached"),
    #: filled when the batch resolves
    source: str = ""


@dataclass
class _Job:
    key: tuple
    scale: float
    resolved: object
    flight: _Flight = field(repr=False)
    #: the runner resolved at enqueue time — carried on the job so the
    #: worker thread never reads the (LRU-mutated) runner map
    runner: object = field(default=None, repr=False)


class ExperimentService:
    """The daemon: one instance per ``repro serve`` process.

    Constructor arguments mirror :class:`ExperimentRunner` — the service
    is the runner, made long-lived and shared.
    """

    def __init__(self, *, scale: float = 1.0, spec: DeviceSpec = K20C,
                 cost: Optional[CostModel] = None, verify: bool = True,
                 store=None, dataset_cache=None, tuned=None,
                 tuned_objective: str = "cycles", jobs: int = 1,
                 batch_window: float = DEFAULT_BATCH_WINDOW,
                 name: str = "repro-service", trace=None):
        self.scale = scale
        self.spec = spec
        self.cost = cost if cost is not None else DEFAULT_COST_MODEL
        self.verify = verify
        self.store = store
        self.dataset_cache = dataset_cache
        self.tuned = tuned
        self.tuned_objective = tuned_objective
        self.jobs = jobs
        self.batch_window = batch_window
        self.name = name
        #: the daemon's telemetry registry: ServiceMetrics counters plus
        #: the request-latency and batch-size histograms, served whole
        #: by the ``metrics`` op
        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(registry=self.registry)
        self._request_seconds = self.registry.histogram(
            "service_request_seconds",
            help="submit latency, accept to reply (seconds)")
        self._batch_size = self.registry.histogram(
            "service_batch_size",
            help="runs per flushed micro-batch",
            edges=(1, 2, 4, 8, 16, 32, 64, 128))
        #: optional trace output: a path makes serve() install a
        #: process-global tracer (spans flow from the event loop *and*
        #: the worker thread) and write a Chrome trace at shutdown
        self.trace_path = trace
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.endpoint: str = "(not listening)"
        self._runners: dict[float, ExperimentRunner] = {}
        self._inflight: dict[tuple, _Flight] = {}
        self._pending: list[_Job] = []
        self._stopping = False
        self._started = 0.0
        self._conn_writers: set = set()
        # loop-bound primitives, created inside serve()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._done: Optional[asyncio.Future] = None
        self._active_submits = 0
        self._submits_settled: Optional[asyncio.Event] = None

    # -- runners ---------------------------------------------------------------

    def _runner_for(self, scale: float) -> ExperimentRunner:
        """One runner per requested dataset scale, all sharing the
        server's store/dataset-cache/tuned registry (exactly the
        tuning oracle's multi-fidelity arrangement).

        The map is LRU-bounded at :data:`MAX_RUNNERS`: each runner pins
        the datasets it materialized, so a client sweeping arbitrary
        scales must not grow the daemon by a dataset set per distinct
        float. Eviction only costs re-materialization (served by the
        on-disk dataset cache when one is attached) — runs themselves
        live in the result store."""
        runner = self._runners.pop(scale, None)
        if runner is None:
            runner = ExperimentRunner(
                scale=scale, spec=self.spec, cost=self.cost,
                verify=self.verify, store=self.store,
                dataset_cache=self.dataset_cache, tuned=self.tuned,
                tuned_objective=self.tuned_objective, jobs=self.jobs)
        # reinsert to mark most-recently-used (dicts keep insert order)
        self._runners[scale] = runner
        while len(self._runners) > MAX_RUNNERS:
            oldest = next(iter(self._runners))
            del self._runners[oldest]
        return runner

    # -- batch execution (worker thread) ---------------------------------------

    def _run_batch(self, runner: ExperimentRunner, resolved: list):
        """Execute one scale-group on the worker thread: a single
        prefetch for the whole group, then per-spec result collection.
        Returns ``(results, stats)`` aligned with ``resolved``; each
        result is ``(run_wire, source)`` or the exception that spec
        raised — one failing run must not fail its batchmates, so a
        prefetch abort falls back to per-spec execution and only the
        genuinely broken specs report errors."""
        from dataclasses import replace

        executed: set = set()
        before = replace(runner.stats)
        prefetched = True
        try:
            # spans here run on the worker thread; they reach the
            # collector through the process-global tracer (ContextVars
            # do not cross run_in_executor)
            with span("service.prefetch", runs=len(resolved),
                      scale=runner.scale):
                runner.prefetch(resolved, jobs=self.jobs, executed=executed)
        except Exception:  # noqa: BLE001 — isolated per spec below
            prefetched = False
        # snapshot here so the collection pass's own cache reads below
        # don't double-count: one request must report one lookup
        mark = replace(runner.stats)
        out = []
        for spec in resolved:
            try:
                run = runner.run_spec(spec)
            except Exception as exc:  # noqa: BLE001 — per-spec verdict
                out.append(exc)
                continue
            source = "executed" if spec in executed else "cached"
            out.append((run_to_wire(run), source))
        # on the fallback path the collection loop did the real work,
        # so its span is the honest delta
        after = runner.stats if not prefetched else mark
        stats = RunStats(executed=after.executed - before.executed,
                         memory_hits=after.memory_hits - before.memory_hits,
                         disk_hits=after.disk_hits - before.disk_hits)
        if self.store is not None:
            # a daemon must not accumulate result arrays across batches;
            # the store keeps every run, so warm hits come from disk
            runner.trim_memory()
        return out, stats

    async def _batch_loop(self) -> None:
        """Accumulate submits for one batching window, then flush each
        scale-group through the worker thread and resolve every flight."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._pending:
                if self.batch_window > 0 and not self._stopping:
                    with span("service.batch-wait",
                              window=self.batch_window):
                        await asyncio.sleep(self.batch_window)
                batch, self._pending = self._pending, []
                self.metrics.batches += 1
                self.metrics.max_batch = max(self.metrics.max_batch,
                                             len(batch))
                self._batch_size.observe(len(batch))
                groups: dict[float, list[_Job]] = {}
                for job in batch:
                    groups.setdefault(job.scale, []).append(job)
                for scale, jobs in groups.items():
                    await self._flush_group(scale, jobs)
            if self._stopping and not self._pending:
                self._drained.set()
                return

    async def _flush_group(self, scale: float, jobs: list[_Job]) -> None:
        specs = [job.resolved for job in jobs]
        try:
            # any runner at this scale serves the whole group (they all
            # share the store); the one carried on the job survives LRU
            # eviction from the runner map
            results, stats = await self._loop.run_in_executor(
                None, self._run_batch, jobs[0].runner, specs)
        except BaseException as exc:  # noqa: BLE001 — every waiter must learn
            for job in jobs:
                self._inflight.pop(job.key, None)
                if not job.flight.future.done():
                    job.flight.future.set_exception(
                        RuntimeError(f"batch execution failed: {exc}"))
            return
        self.metrics.executed += stats.executed
        self.metrics.cache_hits += sum(
            1 for res in results
            if not isinstance(res, BaseException) and res[1] == "cached")
        stats_wire = stats_to_wire(stats)
        for job, res in zip(jobs, results):
            self._inflight.pop(job.key, None)
            if job.flight.future.done():
                continue
            if isinstance(res, BaseException):
                job.flight.future.set_exception(
                    RuntimeError(f"execution failed: {res}"))
            else:
                run_wire, source = res
                job.flight.source = source
                job.flight.future.set_result((run_wire, stats_wire))

    # -- request handling (event loop) -----------------------------------------

    async def _submit(self, msg: dict, send) -> None:
        self._active_submits += 1
        t0 = time.monotonic()
        try:
            with span("service.request", id=msg.get("id")):
                await self._submit_inner(msg, send)
        finally:
            self._request_seconds.observe(time.monotonic() - t0)
            self._active_submits -= 1
            if self._active_submits == 0:
                self._submits_settled.set()

    async def _submit_inner(self, msg: dict, send) -> None:
        rid = msg.get("id")
        self.metrics.requests += 1
        try:
            import math

            spec = spec_from_wire(msg.get("spec"))
            scale = msg.get("scale")
            scale = self.scale if scale is None else float(scale)
            if not (math.isfinite(scale) and scale > 0):
                # NaN would poison the in-flight/runner maps (it never
                # equals itself), infinity the dataset generators
                raise ProtocolError(f"scale must be a positive finite "
                                    f"number, got {scale}")
            # resolution validates the spec (unknown app/workload, a
            # missing tuned config, variant/strategy contradictions)
            # before anything is queued; TypeError covers a non-numeric
            # scale — every malformed submit must get a reply, never a
            # silently dead handler task
            runner = self._runner_for(scale)
            resolved = runner.resolve(spec)
            key = (scale, resolved)
            # probe hashability *inside* the guarded block: a non-scalar
            # field that slipped past the protocol layer must error here,
            # not kill the handler at the in-flight lookup below
            hash(key)
        except (ProtocolError, KeyError, ValueError, RuntimeError,
                TypeError) as exc:
            self.metrics.failed += 1
            message = exc.args[0] if exc.args else exc
            await send(error(rid, message))
            return
        if self._stopping:
            self.metrics.failed += 1
            await send(error(rid, "service is draining; resubmit after "
                                  "restart"))
            return
        flight = self._inflight.get(key)
        if flight is None:
            flight = _Flight(future=self._loop.create_future())
            self._inflight[key] = flight
            self._pending.append(_Job(key=key, scale=scale,
                                      resolved=resolved, flight=flight,
                                      runner=runner))
            self._wake.set()
            coalesced = False
        else:
            self.metrics.coalesced += 1
            coalesced = True
        try:
            # shield: a disconnecting client must not cancel the shared
            # execution other clients are attached to
            run_wire, stats_wire = await asyncio.shield(flight.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — reported, not fatal
            self.metrics.failed += 1
            await send(error(rid, exc))
            return
        self.metrics.completed += 1
        with span("service.reply", id=rid):
            await send(ok(rid, run=run_wire, stats=stats_wire,
                          source="coalesced" if coalesced else flight.source))

    def status_payload(self) -> dict:
        payload = {
            "server": self.name,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "endpoint": self.endpoint,
            "device": self.spec.name,
            "scale": self.scale,
            "jobs": self.jobs,
            "verify": self.verify,
            "batch_window": self.batch_window,
            "uptime_s": time.monotonic() - self._started,
            "queue_depth": len(self._pending),
            "inflight": len(self._inflight),
            "draining": self._stopping,
            "metrics": self.metrics.snapshot(),
            "store": None,
        }
        if self.store is not None:
            # one directory scan, not the two len()+shard_info() would do
            info = self.store.shard_info()
            payload["store"] = {"root": str(self.store.root),
                                "entries": (info["sharded_entries"]
                                            + info["legacy_entries"]),
                                **info}
        return payload

    async def _await_settled(self) -> None:
        """Wait out the drain: queue empty *and* every drained submit
        handler done writing its response — the guarantee that every
        accepted request is answered before anything tears down."""
        await self._drained.wait()
        while self._active_submits:
            self._submits_settled.clear()
            await self._submits_settled.wait()

    async def _shutdown(self, msg: dict, send) -> None:
        rid = msg.get("id")
        # every queued job is also in the in-flight map, so the map
        # alone is the count of work the drain still owes answers for
        drained = len(self._inflight)
        self.initiate_shutdown()
        await self._await_settled()
        await send(ok(rid, drained=drained,
                      metrics=self.metrics.snapshot()))
        if not self._done.done():
            self._done.set_result(None)

    def initiate_shutdown(self) -> None:
        """Stop admitting work and start draining (signal-safe entry:
        the signal handlers call this on the loop thread)."""
        self._stopping = True
        if self._wake is not None:
            self._wake.set()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.metrics.connections += 1
        self._conn_writers.add(writer)
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def send(payload: dict) -> None:
            async with wlock:
                writer.write(encode(payload))
                await writer.drain()

        try:
            # handshake: exactly one hello, version-checked, first
            with span("service.accept"):
                try:
                    line = await reader.readline()
                except ValueError:  # line beyond the stream limit
                    await send(error(None,
                                     f"message exceeds {MAX_LINE} bytes"))
                    return
                if not line:
                    return
                try:
                    hello = decode(line)
                except ProtocolError as exc:
                    await send(error(None, exc))
                    return
                if hello.get("op") != "hello" \
                        or hello.get("protocol") != PROTOCOL_VERSION:
                    await send(error(hello.get("id"),
                                     f"protocol version mismatch: server "
                                     f"speaks v{PROTOCOL_VERSION}, client "
                                     f"sent {hello.get('protocol')!r}"))
                    return
                await send(ok(hello.get("id"), op="hello",
                              protocol=PROTOCOL_VERSION, server=self.name,
                              version=__version__, device=self.spec.name,
                              scale=self.scale, verify=self.verify,
                              features=list(FEATURES)))
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # an oversized line cannot be resynchronized past;
                    # report and hang up rather than misparse the tail
                    await send(error(None,
                                     f"message exceeds {MAX_LINE} bytes"))
                    break
                if not line:
                    break
                try:
                    msg = decode(line)
                except ProtocolError as exc:
                    await send(error(None, exc))
                    break
                op = msg.get("op")
                if op == "submit":
                    # a task per submit, so one connection can pipeline
                    # many and they coalesce/batch like separate clients
                    task = asyncio.ensure_future(self._submit(msg, send))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif op == "status":
                    await send(ok(msg.get("id"), **self.status_payload()))
                elif op == "metrics":
                    # optional op (advertised via hello features): the
                    # whole telemetry registry, structured + Prometheus
                    await send(ok(msg.get("id"),
                                  metrics=self.metrics.snapshot(),
                                  registry=self.registry.snapshot(),
                                  text=self.registry.render()))
                elif op == "shutdown":
                    task = asyncio.ensure_future(self._shutdown(msg, send))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    await send(error(msg.get("id"), f"unknown op {op!r}"))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # let this connection's pipelined submits finish writing
            # before the writer closes under them
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            self._conn_writers.discard(writer)

    # -- lifecycle -------------------------------------------------------------

    async def serve(self, socket_path=None, host: Optional[str] = None,
                    port: Optional[int] = None, ready=None) -> None:
        """Listen and serve until shut down (op, SIGTERM, or SIGINT).

        ``socket_path`` selects the default unix-socket transport;
        ``host``/``port`` opt into TCP instead. ``ready`` is an optional
        zero-argument callable invoked once the endpoint is listening
        (the CLI prints its banner there; tests and the bench unblock
        their client threads)."""
        if (host is None) == (socket_path is None):
            raise ValueError("serve() takes a unix socket_path or a TCP "
                             "host/port, not both")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._submits_settled = asyncio.Event()
        self._done = self._loop.create_future()
        self._started = time.monotonic()
        self._stopping = False

        import signal

        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError,
                                     RuntimeError):
                self._loop.add_signal_handler(sig, self._signal_shutdown)

        bound_inode = None
        if socket_path is not None:
            path = str(socket_path)
            from pathlib import Path

            Path(path).parent.mkdir(parents=True, exist_ok=True)
            # a leftover socket file may be a *live* daemon, not litter:
            # probe before unlinking, so a second `repro serve` refuses
            # to hijack instead of silently orphaning the first
            if Path(path).exists():
                if _socket_is_live(path):
                    raise RuntimeError(
                        f"another experiment service is already listening "
                        f"on {path}; stop it (`repro shutdown`) or pick a "
                        f"different --socket")
                with contextlib.suppress(OSError):
                    Path(path).unlink()
            server = await asyncio.start_unix_server(self._handle, path=path,
                                                     limit=MAX_LINE)
            import os

            with contextlib.suppress(OSError):
                bound_inode = os.stat(path).st_ino
            self.endpoint = f"unix:{path}"
        else:
            server = await asyncio.start_server(self._handle, host=host,
                                                port=port, limit=MAX_LINE)
            addr = server.sockets[0].getsockname()
            self.endpoint = f"tcp:{addr[0]}:{addr[1]}"
        batcher = asyncio.ensure_future(self._batch_loop())
        if ready is not None:
            ready()
        if self.tracer is not None:
            # process-global, not context-scoped: connection handlers
            # are spawned from the loop's own context and batches run on
            # the executor thread — both must reach the same collector
            install(self.tracer)
        try:
            await self._done
            # a signal-initiated shutdown never awaited the drain
            self.initiate_shutdown()
            await self._drained.wait()
        finally:
            server.close()
            await server.wait_closed()
            # hang up on lingering clients and let their handler tasks
            # finish normally, so loop teardown never hard-cancels one
            # mid-read (which asyncio logs as an unhandled error)
            for lingering in list(self._conn_writers):
                lingering.close()
            deadline = self._loop.time() + 2.0
            while self._conn_writers and self._loop.time() < deadline:
                await asyncio.sleep(0.01)
            batcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await batcher
            if self.tracer is not None:
                uninstall(self.tracer)
                if self.trace_path:
                    from ..telemetry import write_chrome_trace

                    with contextlib.suppress(OSError):
                        write_chrome_trace(self.trace_path, self.tracer)
            if socket_path is not None:
                # remove the socket file only if it is still *ours* — a
                # replacement daemon may have bound a fresh one there
                import os

                with contextlib.suppress(OSError):
                    if os.stat(str(socket_path)).st_ino == bound_inode:
                        os.unlink(str(socket_path))

    def _signal_shutdown(self) -> None:
        """SIGTERM/SIGINT path: same drain discipline as the protocol
        op — connections must not be torn down while drained submits
        are still writing their responses."""
        self.initiate_shutdown()
        asyncio.ensure_future(self._finish_after_drain())

    async def _finish_after_drain(self) -> None:
        await self._await_settled()
        if self._done is not None and not self._done.done():
            self._done.set_result(None)

    def run(self, socket_path=None, host: Optional[str] = None,
            port: Optional[int] = None, ready=None) -> None:
        """Blocking entry point: own event loop, serve until shutdown.
        Usable from any thread (the test fixture and the service bench
        run the daemon on a background thread)."""
        asyncio.run(self.serve(socket_path=socket_path, host=host,
                               port=port, ready=ready))

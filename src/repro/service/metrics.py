"""Per-endpoint service metrics.

The counters quantify exactly the three throughput mechanisms the
service exists for (DESIGN.md §13): ``coalesced`` measures request
coalescing (requests that attached to an identical in-flight run),
``batches``/``max_batch`` measure micro-batching (how many runs each
process-pool spin-up was amortized over), and ``executed`` vs.
``cache_hits`` measure how much of the request stream the sharded
store absorbed. A snapshot travels over the ``status`` endpoint;
:func:`describe_status` renders one for ``repro status``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServiceMetrics:
    """Monotonic counters over the life of one service process."""

    #: submit requests accepted (after the hello handshake)
    requests: int = 0
    #: submit requests answered with a result
    completed: int = 0
    #: submit requests answered with an error (bad spec, failed run)
    failed: int = 0
    #: requests that attached to an identical in-flight execution
    coalesced: int = 0
    #: unique runs actually simulated
    executed: int = 0
    #: unique submitted runs served from the result store instead
    cache_hits: int = 0
    #: micro-batches flushed to the runner
    batches: int = 0
    #: largest micro-batch so far
    max_batch: int = 0
    #: connections accepted over the service lifetime
    connections: int = 0

    @property
    def dedup_rate(self) -> float:
        """Fraction of submits that rode an in-flight duplicate."""
        return self.coalesced / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submits served from the store (no simulation,
        no in-flight duplicate — a pure warm-start hit)."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "connections": self.connections,
            "dedup_rate": round(self.dedup_rate, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }


def describe_status(payload: dict) -> str:
    """Render a ``status`` response for humans (``repro status``)."""
    m = payload.get("metrics", {})
    store = payload.get("store")
    lines = [
        f"service   : {payload.get('server')} v{payload.get('version')} "
        f"(protocol {payload.get('protocol')})",
        f"endpoint  : {payload.get('endpoint')}"
        + (" [draining]" if payload.get("draining") else ""),
        f"device    : {payload.get('device')}  "
        f"scale {payload.get('scale')}  jobs {payload.get('jobs')}  "
        f"verify {payload.get('verify')}",
        f"uptime    : {payload.get('uptime_s', 0.0):.1f}s  "
        f"connections {m.get('connections', 0)}",
        f"queue     : depth {payload.get('queue_depth', 0)}  "
        f"in-flight {payload.get('inflight', 0)}",
        f"requests  : {m.get('requests', 0)} "
        f"({m.get('completed', 0)} completed, {m.get('failed', 0)} failed)",
        f"executed  : {m.get('executed', 0)}",
        f"cache hits: {m.get('cache_hits', 0)} "
        f"(rate {100 * m.get('cache_hit_rate', 0.0):.1f}%)",
        f"coalesced : {m.get('coalesced', 0)} "
        f"(dedup rate {100 * m.get('dedup_rate', 0.0):.1f}%)",
        f"batches   : {m.get('batches', 0)} "
        f"(largest {m.get('max_batch', 0)}, "
        f"window {payload.get('batch_window', 0.0)}s)",
    ]
    if store:
        lines.append(
            f"store     : {store.get('root')} "
            f"({store.get('entries', 0)} entries, "
            f"{store.get('shards', 0)} shards)")
    return "\n".join(lines)

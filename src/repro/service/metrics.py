"""Per-endpoint service metrics, backed by the telemetry registry.

The counters quantify exactly the three throughput mechanisms the
service exists for (DESIGN.md §13): ``coalesced`` measures request
coalescing (requests that attached to an identical in-flight run),
``batches``/``max_batch`` measure micro-batching (how many runs each
process-pool spin-up was amortized over), and ``executed`` vs.
``cache_hits`` measure how much of the request stream the sharded
store absorbed. A snapshot travels over the ``status`` endpoint;
:func:`describe_status` renders one for ``repro status``.

Since PR 8 the counters live in a
:class:`repro.telemetry.MetricsRegistry` (as ``service_<name>``
counters), making the registry the single source of truth: the same
values ship through the ``metrics`` op's Prometheus rendering and
through ``status``. :class:`ServiceMetrics` keeps its original mutable
attribute surface (``m.requests += 1``) via descriptor views, and
``snapshot()``/:func:`describe_status` stay byte-identical to the
dataclass era — regression-tested in ``tests/test_telemetry.py``.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry import MetricsRegistry

#: counter name -> help text (order defines snapshot key order)
_COUNTERS = {
    "requests": "submit requests accepted (after the hello handshake)",
    "completed": "submit requests answered with a result",
    "failed": "submit requests answered with an error (bad spec, failed run)",
    "coalesced": "requests that attached to an identical in-flight execution",
    "executed": "unique runs actually simulated",
    "cache_hits": "unique submitted runs served from the result store",
    "batches": "micro-batches flushed to the runner",
    "max_batch": "largest micro-batch so far",
    "connections": "connections accepted over the service lifetime",
}


class _CounterView:
    """Attribute view onto a registry counter: reads return its value,
    writes (``m.requests += 1`` and plain assignment) set it."""

    def __set_name__(self, owner, name: str) -> None:
        self._name = name

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        return obj._counters[self._name].value

    def __set__(self, obj, value) -> None:
        obj._counters[self._name].set(value)


class ServiceMetrics:
    """Monotonic counters over the life of one service process."""

    requests = _CounterView()
    completed = _CounterView()
    failed = _CounterView()
    coalesced = _CounterView()
    executed = _CounterView()
    cache_hits = _CounterView()
    batches = _CounterView()
    max_batch = _CounterView()
    connections = _CounterView()

    def __init__(self, registry: Optional[MetricsRegistry] = None, **values):
        #: the backing registry — the daemon shares it with the
        #: ``metrics`` op, so every counter also renders as
        #: ``service_<name>`` Prometheus text
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"service_{name}", help=text)
            for name, text in _COUNTERS.items()}
        for name, value in values.items():
            if name not in _COUNTERS:
                raise TypeError(f"unknown metric {name!r}")
            setattr(self, name, value)

    @property
    def dedup_rate(self) -> float:
        """Fraction of submits that rode an in-flight duplicate."""
        return self.coalesced / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submits served from the store (no simulation,
        no in-flight duplicate — a pure warm-start hit)."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "connections": self.connections,
            "dedup_rate": round(self.dedup_rate, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)}"
                          for name in _COUNTERS)
        return f"ServiceMetrics({inner})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ServiceMetrics):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n) for n in _COUNTERS)


def describe_status(payload: dict) -> str:
    """Render a ``status`` response for humans (``repro status``)."""
    m = payload.get("metrics", {})
    store = payload.get("store")
    lines = [
        f"service   : {payload.get('server')} v{payload.get('version')} "
        f"(protocol {payload.get('protocol')})",
        f"endpoint  : {payload.get('endpoint')}"
        + (" [draining]" if payload.get("draining") else ""),
        f"device    : {payload.get('device')}  "
        f"scale {payload.get('scale')}  jobs {payload.get('jobs')}  "
        f"verify {payload.get('verify')}",
        f"uptime    : {payload.get('uptime_s', 0.0):.1f}s  "
        f"connections {m.get('connections', 0)}",
        f"queue     : depth {payload.get('queue_depth', 0)}  "
        f"in-flight {payload.get('inflight', 0)}",
        f"requests  : {m.get('requests', 0)} "
        f"({m.get('completed', 0)} completed, {m.get('failed', 0)} failed)",
        f"executed  : {m.get('executed', 0)}",
        f"cache hits: {m.get('cache_hits', 0)} "
        f"(rate {100 * m.get('cache_hit_rate', 0.0):.1f}%)",
        f"coalesced : {m.get('coalesced', 0)} "
        f"(dedup rate {100 * m.get('dedup_rate', 0.0):.1f}%)",
        f"batches   : {m.get('batches', 0)} "
        f"(largest {m.get('max_batch', 0)}, "
        f"window {payload.get('batch_window', 0.0)}s)",
    ]
    if store:
        lines.append(
            f"store     : {store.get('root')} "
            f"({store.get('entries', 0)} entries, "
            f"{store.get('shards', 0)} shards)")
    return "\n".join(lines)

"""The service wire protocol: versioned, newline-delimited JSON.

Every message is one JSON object on one line (UTF-8, ``\\n``-terminated).
A connection opens with a ``hello`` handshake carrying
:data:`PROTOCOL_VERSION`; the server rejects any other version up front
(and closes), so a client compiled against a future protocol can never
misinterpret a response. After the handshake, requests carry a
client-chosen ``id`` that the matching response echoes — responses to
pipelined requests may arrive in any order, so the ``id`` is the only
correlation.

Operations::

    {"op": "hello",    "protocol": 1}
    {"op": "submit",   "id": 7, "spec": {...}, "scale": 0.5}
    {"op": "status",   "id": 8}
    {"op": "metrics",  "id": 9}
    {"op": "shutdown", "id": 10}

Responses are ``{"ok": true, "id": ..., ...}`` or
``{"ok": false, "id": ..., "error": "..."}``.

Optional operations stay inside protocol v1 via *feature
advertisement*: the hello response lists the server's optional ops in
``features`` (:data:`FEATURES`), and a client only issues one after
seeing it advertised — an old client against a new daemon ignores the
extra hello field, a new client against an old daemon sees no
advertisement and degrades gracefully. ``metrics`` (PR 8) returns the
daemon's full telemetry registry: a structured snapshot plus a
Prometheus text rendering (``repro status --metrics``).

This module owns the (de)serialization of the experiment types that
cross the wire: :class:`~repro.experiments.plan.RunSpec` (requests),
:class:`~repro.sim.profiler.RunMetrics` and run summaries (responses —
the dataset/result arrays never leave the server, only metrics and
provenance do), and :class:`~repro.experiments.runner.RunStats`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional

#: bump on any incompatible change to message shapes; the handshake
#: rejects mismatched clients before any request is interpreted
PROTOCOL_VERSION = 1

#: optional ops this server supports beyond the v1 core, advertised in
#: the hello response — additions here must never change the meaning of
#: an existing message (that is what a version bump is for)
FEATURES = ("metrics",)

#: environment variable overriding the default unix-socket path
SOCKET_ENV = "REPRO_SOCKET"

#: socket file name, beside the result store's shard directories
SOCKET_FILE = "service.sock"

#: hard cap on one wire line; a submit is ~1 KiB, so anything near this
#: is a framing bug, not a real request
MAX_LINE = 1 << 20


def default_socket_path(cache_dir=None) -> Path:
    """``$REPRO_SOCKET``, else ``<cache-dir>/service.sock`` (the cache
    directory defaulting like the result store's)."""
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    from ..experiments.store import default_cache_dir

    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / SOCKET_FILE


class ProtocolError(Exception):
    """A message that violates the wire protocol (bad JSON, unknown
    fields, wrong types). Distinct from :class:`~repro.service.client.ServiceError`,
    which carries an *application* failure reported by a well-formed
    response."""


def jsonable(value):
    """Recursively coerce a value to plain JSON types (NumPy scalars in
    profiler counters become Python ints/floats)."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def encode(msg: dict) -> bytes:
    """One wire line for a message."""
    return (json.dumps(jsonable(msg), separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict:
    """Parse one wire line; anything but a JSON object is a protocol error."""
    if len(line) > MAX_LINE:
        raise ProtocolError(f"message exceeds {MAX_LINE} bytes")
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("message must be a JSON object")
    return msg


def ok(rid, **fields) -> dict:
    return {"ok": True, "id": rid, **fields}


def error(rid, message: str) -> dict:
    return {"ok": False, "id": rid, "error": str(message)}


# -- experiment types on the wire ---------------------------------------------

#: RunSpec fields a submit may carry (everything else is rejected, so a
#: typo'd axis fails loudly instead of silently running the default)
_SPEC_FIELDS = ("app", "variant", "allocator", "config", "dataset",
                "cost", "threshold", "strategy", "workload", "oracle")


def spec_to_wire(spec) -> dict:
    """A :class:`~repro.experiments.plan.RunSpec` as a wire dict
    (defaults omitted, so the common case is a three-key object)."""
    out = {"app": spec.app, "variant": spec.variant}
    if spec.allocator != "custom":
        out["allocator"] = spec.allocator
    if spec.config is not None:
        out["config"] = list(spec.config)
    if spec.dataset is not None:
        out["dataset"] = spec.dataset
    if spec.cost is not None:
        out["cost"] = dataclasses.asdict(spec.cost)
    if spec.threshold is not None:
        out["threshold"] = spec.threshold
    if spec.strategy is not None:
        out["strategy"] = spec.strategy
    if spec.workload is not None:
        out["workload"] = spec.workload
    if spec.oracle is not None:
        out["oracle"] = spec.oracle
    return out


def spec_from_wire(d: dict):
    """Rebuild a RunSpec, validating field names and shapes."""
    from ..experiments.plan import RunSpec
    from ..sim.specs import CostModel

    if not isinstance(d, dict):
        raise ProtocolError("submit needs a 'spec' object")
    unknown = set(d) - set(_SPEC_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown RunSpec field(s): {', '.join(sorted(unknown))}")
    for field in ("app", "variant"):
        if not isinstance(d.get(field), str):
            raise ProtocolError(f"spec.{field} must be a string")
    config = d.get("config")
    if config is not None:
        if not (isinstance(config, (list, tuple)) and len(config) == 3
                and all(isinstance(x, (str, int, float)) or x is None
                        for x in config)):
            raise ProtocolError(
                "spec.config must be a [mode, blocks, threads] triple "
                "of scalars")
        config = tuple(config)
    threshold = d.get("threshold")
    if threshold is not None and not isinstance(threshold, int):
        raise ProtocolError("spec.threshold must be an integer")
    for field in ("allocator", "dataset", "strategy", "workload", "oracle"):
        value = d.get(field)
        if value is not None and not isinstance(value, str):
            raise ProtocolError(f"spec.{field} must be a string")
    cost = d.get("cost")
    if cost is not None:
        if not (isinstance(cost, dict)
                and all(isinstance(v, (int, float)) for v in cost.values())):
            raise ProtocolError("spec.cost must be an object of numeric "
                                "cost-model fields")
        try:
            cost = CostModel(**cost)
        except TypeError as exc:
            raise ProtocolError(f"bad cost model: {exc}") from None
    return RunSpec(
        app=d["app"], variant=d["variant"],
        allocator=d.get("allocator", "custom"), config=config,
        dataset=d.get("dataset"), cost=cost,
        threshold=threshold, strategy=d.get("strategy"),
        workload=d.get("workload"), oracle=d.get("oracle"),
    )


def run_to_wire(run) -> dict:
    """The client-facing summary of an executed
    :class:`~repro.apps.common.AppRun`: identity, provenance and the full
    profiler metrics — never the result array (it can be hundreds of MB
    and no service client consumes it)."""
    return {
        "app": run.app,
        "variant": run.variant,
        "strategy": run.strategy,
        "dataset": run.dataset,
        "checked": bool(run.checked),
        "metrics": dataclasses.asdict(run.metrics),
    }


def metrics_from_wire(d: dict):
    """Rebuild :class:`~repro.sim.profiler.RunMetrics` from a response."""
    from ..sim.profiler import RunMetrics

    try:
        return RunMetrics(**d)
    except TypeError as exc:
        raise ProtocolError(f"bad metrics payload: {exc}") from None


def stats_to_wire(stats) -> dict:
    return {"executed": stats.executed, "memory_hits": stats.memory_hits,
            "disk_hits": stats.disk_hits}


def stats_from_wire(d: Optional[dict]):
    from ..experiments.runner import RunStats

    d = d or {}
    return RunStats(executed=int(d.get("executed", 0)),
                    memory_hits=int(d.get("memory_hits", 0)),
                    disk_hits=int(d.get("disk_hits", 0)))

"""``repro.service`` — the async, batching, deduplicating experiment
service (DESIGN.md §13).

The rest of the repo executes one CLI process at a time; this package
makes the execution stack *serve*: a long-lived asyncio daemon
(:class:`~repro.service.server.ExperimentService`, ``repro serve``)
multiplexes any number of clients onto one cache-backed
:class:`~repro.experiments.runner.ExperimentRunner`, with

* **request coalescing** — value-identical in-flight submits share one
  execution (each unique run happens at most once, ever, per store);
* **micro-batching** — a short window groups concurrent submits into a
  single parallel :meth:`~repro.experiments.runner.ExperimentRunner.prefetch`;
* **a sharded result store** — concurrent batch writers spread across
  shard directories (:class:`~repro.experiments.store.ResultStore`).

Clients: :class:`~repro.service.client.ServiceClient` (sync; the CLI's
``repro submit`` / ``repro status`` / ``repro shutdown``, and
``repro tune --socket``) and
:class:`~repro.service.client.AsyncServiceClient` (asyncio). The wire
format is a versioned JSON-line protocol
(:mod:`~repro.service.protocol`).
"""

from .client import (AsyncServiceClient, ServiceClient,  # noqa: F401
                     ServiceError, SubmitResult)
from .metrics import ServiceMetrics, describe_status  # noqa: F401
from .protocol import (FEATURES, PROTOCOL_VERSION,  # noqa: F401
                       ProtocolError, default_socket_path)
from .server import DEFAULT_BATCH_WINDOW, ExperimentService  # noqa: F401

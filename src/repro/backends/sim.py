"""Simulator backend: the default execution target.

A thin adapter that gives :class:`repro.sim.device.Device` a seat in the
backend registry, so ``--backend sim`` (or omitting the flag entirely)
means exactly what every run before the registry existed meant.
"""

from __future__ import annotations

from typing import Optional

from ..sim.device import Device
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C

from .base import Backend


class SimBackend(Backend):
    """The SIMT functional simulator with the timing/occupancy models."""

    name = "sim"
    summary = "SIMT functional simulator with timing model (default)"
    executes = True
    emits = False

    def make_device(self, spec: DeviceSpec = K20C,
                    cost: CostModel = DEFAULT_COST_MODEL,
                    allocator: str = "custom",
                    heap_bytes: Optional[int] = None,
                    engine: Optional[str] = None) -> Device:
        kwargs = {}
        if heap_bytes is not None:
            kwargs["heap_bytes"] = heap_bytes
        if engine is not None:
            kwargs["engine"] = engine
        return Device(spec=spec, cost=cost, allocator=allocator, **kwargs)

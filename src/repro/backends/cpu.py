"""Executing CPU backend: a NumPy-backed MiniCUDA interpreter.

This is an *independent implementation* of MiniCUDA execution — it walks
the typed AST directly instead of going through
:mod:`repro.backend.codegen`'s Python-source lowering, and it carries its
own global memory, consolidation-buffer runtime and grid barrier. The
differential harness (``tests/test_backends.py``) runs every benchmark
variant and a fuzzed program corpus on both implementations and requires
element-for-element equal results, which turns the simulator's semantic-
preservation story into a cross-implementation property.

Scheduling
----------
Functional results of racy-but-benign idioms (float ``atomicAdd``
accumulation order, CAS claim order) depend on the execution schedule, so
"same output" is only well-defined against a *canonical schedule*. This
backend deliberately implements the same canonical schedule as the
simulator's :class:`~repro.sim.engine.FunctionalEngine`:

* blocks of a grid run sequentially;
* within a block, warps run to their next blocking point in index order;
* within a warp, live lanes advance in lockstep rounds — one *event*
  (global-memory access, sync, launch, intrinsic) per lane per round,
  lanes in ascending order;
* ``cudaDeviceSynchronize`` drains the block's pending children (FIFO,
  transitively); children never joined run FIFO after all parent blocks.

The two implementations share only this schedule contract and the event
opcode vocabulary (:mod:`repro.sim.events`); lowering, memory, and the
``__dp_*`` runtime are disjoint code.

Multiprocessing
---------------
Interpreted execution is a pure function of (source, arrays, launches),
so batches fan out across processes: :func:`run_jobs` executes
:class:`CpuJob` descriptions in a ``ProcessPoolExecutor`` (used by
``benchmarks/bench_backends.py``; the experiment runner's ``prefetch``
gets the same effect for full app runs via the ``--backend cpu`` axis).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..backend.intrinsics import (
    _expf, _fabs, _floorf, _ceilf, _idiv, _imod, _logf, _powf, _sqrtf,
)
from ..errors import LaunchError, SimulationError
from ..frontend import ast_nodes as A
from ..frontend.ast_nodes import Module
from ..frontend.parser import parse
from ..frontend.symbols import BUILTIN_CONSTANTS
from ..frontend.typecheck import ModuleInfo, check_module
from ..sim.events import (
    ATOM, DEVSYNC, INTR, LAUNCH, LD, ST, SYNC, WSYNC, ThreadCtx,
)
from ..sim.profiler import RunMetrics
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C

from .base import Backend, BackendError

# thread states (same lattice as the engine)
_RUNNING = 0
_AT_BARRIER = 1
_DONE = 2
_AT_WARP_BARRIER = 3

_MATH_FNS = {
    "sqrtf": _sqrtf, "sqrt": _sqrtf, "expf": _expf, "logf": _logf,
    "powf": _powf, "floorf": _floorf, "ceilf": _ceilf,
    "fabsf": _fabs, "fabs": _fabs, "abs": abs, "min": min, "max": max,
}

_ATOMIC_OPS = {
    "atomicAdd": "add", "atomicSub": "sub", "atomicMin": "min",
    "atomicMax": "max", "atomicExch": "exch", "atomicCAS": "cas",
    "atomicOr": "or", "atomicAnd": "and",
}

#: name-binding kinds inside a function body (mirrors the codegen lattice)
_SCALAR = "scalar"
_PTR = "ptr"
_LOCAL_ARRAY = "local_array"
_SHARED_ARRAY = "shared_array"
_SHARED_SCALAR = "shared_scalar"


class CpuArray:
    """A device allocation of the CPU backend: NumPy storage + offset.

    Same pointer semantics as the simulator's DeviceArray (``view`` is
    pointer arithmetic, ``load`` returns a Python scalar, ``store`` wraps
    out-of-range integers mod 2^bits like C), without the simulated
    address space — the CPU target has no coalescing model to feed.
    """

    __slots__ = ("name", "data", "offset")

    def __init__(self, name: str, data: np.ndarray, offset: int = 0):
        self.name = name
        self.data = data
        self.offset = offset

    def view(self, k: int) -> "CpuArray":
        if k == 0:
            return self
        return CpuArray(self.name, self.data, self.offset + int(k))

    def load(self, index: int):
        i = self.offset + index
        if not 0 <= i < self.data.shape[0]:
            raise SimulationError(
                f"out-of-bounds load from {self.name!r}: index {index} "
                f"(offset {self.offset}, length {self.data.shape[0]})")
        return self.data[i].item()

    def store(self, index: int, value) -> None:
        i = self.offset + index
        if not 0 <= i < self.data.shape[0]:
            raise SimulationError(
                f"out-of-bounds store to {self.name!r}: index {index} "
                f"(offset {self.offset}, length {self.data.shape[0]})")
        try:
            self.data[i] = value
        except OverflowError:
            dt = self.data.dtype
            bits = dt.itemsize * 8
            wrapped = int(value) & ((1 << bits) - 1)
            if dt.kind == "i" and wrapped >= 1 << (bits - 1):
                wrapped -= 1 << bits
            self.data[i] = wrapped

    @property
    def size(self) -> int:
        return self.data.shape[0] - self.offset

    def to_numpy(self) -> np.ndarray:
        return np.array(self.data[self.offset:], copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuArray({self.name!r}, n={self.size})"


def _wrap64(v) -> int:
    """Buffer fields are 64-bit like the sim's i8 slot storage."""
    w = int(v) & 0xFFFFFFFFFFFFFFFF
    return w - (1 << 64) if w >= 1 << 63 else w


@dataclass
class _CpuBuffer:
    nvars: int
    items: list = field(default_factory=list)  # flat field storage

    @property
    def count(self) -> int:
        return len(self.items) // self.nvars


class _CpuDpRuntime:
    """Consolidation buffers + grid barrier, re-implemented for the CPU
    target (list storage instead of heap-bound slot arrays; no pricing)."""

    def __init__(self):
        self.buffers: dict[int, _CpuBuffer] = {}
        self._scope_handles: dict[tuple, int] = {}
        self._barrier_remaining: dict[int, int] = {}
        self._next_handle = 1
        self.buffers_acquired = 0
        self.pushes = 0

    def handle_intrinsic(self, name: str, args: tuple, inst, ctx):
        if name in ("buf_push1", "buf_push2", "buf_push3", "buf_push4"):
            return self.push(args[0], args[1:])
        if name == "buf_get":
            return self.get(args[0], args[1], args[2])
        if name == "buf_size":
            return self._buffer(args[0]).count
        if name == "buf_acquire":
            return self.acquire(inst, ctx, args[0], args[1], args[2])
        if name == "buf_reset":
            self._buffer(args[0]).items.clear()
            return None
        if name == "grid_arrive_last":
            return self.grid_arrive_last(inst)
        raise SimulationError(f"unknown __dp intrinsic {name!r}")

    def acquire(self, inst, ctx, gran: int, slots: int, nvars: int) -> int:
        if gran == 0:
            key = (inst.uid, ctx.bx, ctx.warp_id)
        elif gran == 1:
            key = (inst.uid, ctx.bx)
        elif gran == 2:
            key = (inst.uid,)
        else:
            raise SimulationError(f"bad consolidation granularity code {gran}")
        handle = self._scope_handles.get(key)
        if handle is None:
            handle = self._next_handle
            self._next_handle += 1
            self.buffers[handle] = _CpuBuffer(nvars=max(1, int(nvars)))
            self._scope_handles[key] = handle
            self.buffers_acquired += 1
        return handle

    def _buffer(self, handle) -> _CpuBuffer:
        buf = self.buffers.get(int(handle))
        if buf is None:
            raise SimulationError(
                f"use of invalid consolidation buffer handle {handle!r}")
        return buf

    def push(self, handle, values: tuple) -> int:
        buf = self._buffer(handle)
        if len(values) != buf.nvars:
            raise SimulationError(
                f"buffer {handle}: push of {len(values)} fields into a "
                f"{buf.nvars}-field buffer")
        slot = buf.count
        buf.items.extend(_wrap64(v) for v in values)
        self.pushes += 1
        return slot

    def get(self, handle, slot: int, fld: int) -> int:
        buf = self._buffer(handle)
        if not 0 <= slot < buf.count:
            raise SimulationError(
                f"buffer {handle}: read of slot {slot} (count {buf.count})")
        return buf.items[slot * buf.nvars + fld]

    def grid_arrive_last(self, inst) -> int:
        remaining = self._barrier_remaining.get(inst.uid, inst.grid) - 1
        self._barrier_remaining[inst.uid] = remaining
        if remaining < 0:
            raise SimulationError(
                f"grid barrier of kernel {inst.name}: more arrivals than "
                "blocks")
        return 1 if remaining == 0 else 0


# --------------------------------------------------------------- interpreter

class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Env:
    """Lexically scoped bindings: name -> (kind, value). Shared scalars
    and arrays bind their backing list; scalars/pointers rebind."""

    __slots__ = ("scopes",)

    def __init__(self):
        self.scopes = [{}]

    def push(self):
        self.scopes.append({})

    def pop(self):
        self.scopes.pop()

    def declare(self, name, kind, value):
        self.scopes[-1][name] = (kind, value)

    def lookup(self, name):
        for scope in reversed(self.scopes):
            entry = scope.get(name)
            if entry is not None:
                return entry
        return None

    def rebind(self, name, value):
        for scope in reversed(self.scopes):
            entry = scope.get(name)
            if entry is not None:
                scope[name] = (entry[0], value)
                return
        raise SimulationError(f"assignment to undeclared name {name!r}")


class _Interp:
    """Tree-walking interpreter for one checked module.

    Execution methods are generators yielding the engine-compatible
    event tuples; the scheduler in :class:`CpuDevice` consumes them.
    Yield points match :mod:`repro.backend.codegen` exactly (that is the
    schedule contract — see the module docstring), including evaluation
    order quirks the Python lowering inherits from Python itself, e.g.
    plain assignment to a local array evaluates the value before the
    index while a device store evaluates the index first.
    """

    def __init__(self, info: ModuleInfo):
        self.info = info
        self.functions = {fn.name: fn for fn in info.module.functions()}
        self._simple_memo: dict[int, bool] = {}

    # ------------------------------------------------------------- entry

    def thread(self, fn: A.FunctionDef, ctx: ThreadCtx, args: tuple):
        yield from self._call(fn, ctx, args)

    def _call(self, fn: A.FunctionDef, ctx: ThreadCtx, args):
        env = _Env()
        for p, v in zip(fn.params, args):
            env.declare(p.name, _PTR if p.type.is_pointer else _SCALAR, v)
        try:
            yield from self._exec_block(fn.body, ctx, env, new_scope=False)
        except _Return as r:
            return r.value
        return None

    # ------------------------------------------------- simple-expression path

    def _simple(self, e) -> bool:
        """True when evaluating ``e`` can never produce an event, so the
        non-generator fast path applies. Syntactic: calls, launches,
        indexing and pointer dereference are conservatively event-ful
        (indexing a local array is re-checked dynamically at eval time)."""
        memo = self._simple_memo
        key = id(e)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(e, (A.IntLit, A.FloatLit, A.BoolLit, A.StringLit,
                          A.Ident, A.BuiltinVar)):
            result = True
        elif isinstance(e, A.UnOp):
            result = e.op in ("!", "~", "-", "+") and self._simple(e.operand)
        elif isinstance(e, A.BinOp):
            result = self._simple(e.left) and self._simple(e.right)
        elif isinstance(e, A.Ternary):
            result = (self._simple(e.cond) and self._simple(e.then)
                      and self._simple(e.els))
        elif isinstance(e, A.Cast):
            result = self._simple(e.expr)
        else:
            result = False
        memo[key] = result
        return result

    def _eval_simple(self, e, ctx, env):
        """Direct (non-generator) evaluation of event-free expressions."""
        if isinstance(e, A.IntLit):
            return e.value
        if isinstance(e, A.Ident):
            return self._ident(e, env)
        if isinstance(e, A.BinOp):
            return self._binop_simple(e, ctx, env)
        if isinstance(e, A.BuiltinVar):
            return self._builtin_var(e, ctx)
        if isinstance(e, A.FloatLit):
            return e.value
        if isinstance(e, A.BoolLit):
            return e.value
        if isinstance(e, A.StringLit):
            return e.value
        if isinstance(e, A.UnOp):
            v = self._eval_simple(e.operand, ctx, env)
            if e.op == "!":
                return not v
            if e.op == "~":
                return ~v
            if e.op == "-":
                return -v
            return +v
        if isinstance(e, A.Ternary):
            if self._eval_simple(e.cond, ctx, env):
                return self._eval_simple(e.then, ctx, env)
            return self._eval_simple(e.els, ctx, env)
        if isinstance(e, A.Cast):
            return self._apply_cast(e, self._eval_simple(e.expr, ctx, env))
        raise SimulationError(
            f"cannot evaluate expression {type(e).__name__}")

    def _binop_simple(self, e: A.BinOp, ctx, env):
        op = e.op
        left = self._eval_simple(e.left, ctx, env)
        if op == "&&":
            return left and self._eval_simple(e.right, ctx, env)
        if op == "||":
            return left or self._eval_simple(e.right, ctx, env)
        right = self._eval_simple(e.right, ctx, env)
        return self._binop_value(e, op, left, right)

    # ------------------------------------------------------------ expressions

    def _eval(self, e, ctx, env):
        """Generator evaluation; may yield events."""
        if self._simple(e):
            return self._eval_simple(e, ctx, env)
        if isinstance(e, A.Index):
            return (yield from self._index_load(e, ctx, env))
        if isinstance(e, A.Call):
            return (yield from self._eval_call(e, ctx, env, as_stmt=False))
        if isinstance(e, A.BinOp):
            return (yield from self._binop(e, ctx, env))
        if isinstance(e, A.UnOp):
            return (yield from self._unop(e, ctx, env))
        if isinstance(e, A.Ternary):
            cond = yield from self._eval(e.cond, ctx, env)
            if cond:
                return (yield from self._eval(e.then, ctx, env))
            return (yield from self._eval(e.els, ctx, env))
        if isinstance(e, A.Cast):
            return self._apply_cast(e, (yield from self._eval(e.expr, ctx, env)))
        if isinstance(e, A.LaunchExpr):
            yield from self._launch(e, ctx, env)
            return None
        if isinstance(e, (A.Assign, A.IncDec)):
            raise SimulationError(
                f"{type(e).__name__} may only be used as a statement")
        raise SimulationError(f"cannot evaluate expression {type(e).__name__}")

    def _ident(self, e: A.Ident, env):
        entry = env.lookup(e.name)
        if entry is None:
            if e.name in BUILTIN_CONSTANTS:
                return BUILTIN_CONSTANTS[e.name][1]
            decl = self.info.globals.get(e.name)
            if decl is not None and decl.init is not None:
                # module-scope constants (rare; evaluated as literals)
                return self._eval_simple(decl.init, None, _Env())
            raise SimulationError(f"unknown identifier {e.name!r}")
        kind, value = entry
        if kind == _SHARED_SCALAR:
            return value[0]
        return value

    def _builtin_var(self, e: A.BuiltinVar, ctx):
        if e.dim != "x":
            return 0 if e.name in ("threadIdx", "blockIdx") else 1
        return {"threadIdx": ctx.tx, "blockIdx": ctx.bx,
                "blockDim": ctx.bdim, "gridDim": ctx.gdim}[e.name]

    def _apply_cast(self, e: A.Cast, value):
        if e.type.is_pointer:
            return value
        if e.type.is_float:
            return float(value)
        if e.type.base == "bool":
            return bool(value)
        return int(value)

    def _binop_value(self, e, op, left, right):
        lt = getattr(e.left, "ty", None)
        rt = getattr(e.right, "ty", None)
        # pointer arithmetic
        if lt is not None and lt.is_pointer and op in ("+", "-") \
                and rt is not None and rt.is_integer:
            return left.view(right if op == "+" else -right)
        if lt is not None and rt is not None and lt.is_integer \
                and rt.is_pointer and op == "+":
            return right.view(left)
        if op == "/":
            both_int = (lt is not None and rt is not None
                        and lt.is_integer and rt.is_integer)
            if both_int or (lt is not None and rt is None and lt.is_integer) \
                    or (lt is None and rt is None):
                return _idiv(left, right)
            return left / right
        if op == "%":
            return _imod(left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        raise SimulationError(f"cannot evaluate operator {op!r}")

    def _binop(self, e: A.BinOp, ctx, env):
        op = e.op
        if op == "&&":
            left = yield from self._eval(e.left, ctx, env)
            if not left:
                return left
            return (yield from self._eval(e.right, ctx, env))
        if op == "||":
            left = yield from self._eval(e.left, ctx, env)
            if left:
                return left
            return (yield from self._eval(e.right, ctx, env))
        left = yield from self._eval(e.left, ctx, env)
        right = yield from self._eval(e.right, ctx, env)
        return self._binop_value(e, op, left, right)

    def _unop(self, e: A.UnOp, ctx, env):
        if e.op == "*":
            ptr = yield from self._eval(e.operand, ctx, env)
            return (yield (LD, ptr, 0))
        if e.op == "&":
            target = e.operand
            base, index = yield from self._pointer_base_index(target, ctx, env)
            return base.view(index)
        value = yield from self._eval(e.operand, ctx, env)
        if e.op == "!":
            return not value
        if e.op == "~":
            return ~value
        if e.op == "-":
            return -value
        return +value

    def _index_load(self, e: A.Index, ctx, env):
        base = e.base
        if isinstance(base, A.Ident):
            entry = env.lookup(base.name)
            kind = entry[0] if entry is not None else None
            if kind in (_LOCAL_ARRAY, _SHARED_ARRAY, _SHARED_SCALAR):
                index = yield from self._eval(e.index, ctx, env)
                return entry[1][index]
            arr = self._ident(base, env)
            index = yield from self._eval(e.index, ctx, env)
            return (yield (LD, arr, index))
        arr = yield from self._eval(base, ctx, env)
        index = yield from self._eval(e.index, ctx, env)
        return (yield (LD, arr, index))

    # ---------------------------------------------------------------- calls

    def _eval_call(self, e: A.Call, ctx, env, as_stmt: bool):
        name = e.callee
        if name == "__syncthreads":
            yield (SYNC,)
            return 0
        if name == "__syncwarp":
            yield (WSYNC,)
            return 0
        if name == "__threadfence":
            return 0
        if name == "cudaDeviceSynchronize":
            yield (DEVSYNC,)
            return 0
        if name in _ATOMIC_OPS:
            base, index = yield from self._pointer_base_index(
                e.args[0], ctx, env)
            operands = []
            for a in e.args[1:]:
                operands.append((yield from self._eval(a, ctx, env)))
            return (yield (ATOM, _ATOMIC_OPS[name], base, index, *operands))
        if name in _MATH_FNS:
            if as_stmt:
                # mirrors codegen, which drops bare math-fn statements
                # without evaluating their arguments
                return None
            args = []
            for a in e.args:
                args.append((yield from self._eval(a, ctx, env)))
            return _MATH_FNS[name](*args)
        if name == "printf":
            return None
        if name == "assert":
            value = yield from self._eval(e.args[0], ctx, env)
            assert value
            return None
        if name.startswith("__dp_"):
            intr = name[len("__dp_"):]
            if intr == "lane":
                return ctx.lane
            if intr == "warp_id":
                return ctx.warp_id
            args = []
            for a in e.args:
                args.append((yield from self._eval(a, ctx, env)))
            return (yield (INTR, intr, tuple(args)))
        fn = self.functions.get(name)
        if fn is None:
            raise SimulationError(f"call to unknown function {name!r}")
        args = []
        for a in e.args:
            args.append((yield from self._eval(a, ctx, env)))
        return (yield from self._call(fn, ctx, args))

    def _pointer_base_index(self, ptr, ctx, env):
        """Decompose a pointer-valued argument into (array, index)."""
        if isinstance(ptr, A.UnOp) and ptr.op == "&":
            target = ptr.operand
            assert isinstance(target, A.Index)
            base = target.base
            if isinstance(base, A.Ident):
                entry = env.lookup(base.name)
                kind = entry[0] if entry is not None else None
                if kind in (_LOCAL_ARRAY, _SHARED_ARRAY):
                    raise SimulationError(
                        "atomics/address-of on local or shared arrays are "
                        "unsupported")
                arr = self._ident(base, env)
            else:
                arr = yield from self._eval(base, ctx, env)
            index = yield from self._eval(target.index, ctx, env)
            return arr, index
        arr = yield from self._eval(ptr, ctx, env)
        return arr, 0

    def _launch(self, e: A.LaunchExpr, ctx, env):
        grid = yield from self._eval(e.grid, ctx, env)
        block = yield from self._eval(e.block, ctx, env)
        args = []
        for a in e.args:
            args.append((yield from self._eval(a, ctx, env)))
        yield (LAUNCH, e.callee, int(grid), int(block), tuple(args))

    # ------------------------------------------------------------ statements

    def _exec_block(self, block: A.Block, ctx, env, new_scope: bool = True):
        if new_scope:
            env.push()
        try:
            for stmt in block.stmts:
                yield from self._exec_stmt(stmt, ctx, env)
        finally:
            if new_scope:
                env.pop()

    def _exec_stmt(self, s, ctx, env):
        if isinstance(s, A.ExprStmt):
            yield from self._exec_expr_stmt(s.expr, ctx, env)
            return
        if isinstance(s, A.If):
            cond = (self._eval_simple(s.cond, ctx, env)
                    if self._simple(s.cond)
                    else (yield from self._eval(s.cond, ctx, env)))
            if cond:
                yield from self._exec_stmt(s.then, ctx, env)
            elif s.els is not None:
                yield from self._exec_stmt(s.els, ctx, env)
            return
        if isinstance(s, A.Block):
            yield from self._exec_block(s, ctx, env)
            return
        if isinstance(s, A.DeclStmt):
            for d in s.declarators:
                yield from self._exec_decl(d, s, ctx, env)
            return
        if isinstance(s, A.For):
            env.push()
            try:
                if s.init is not None:
                    yield from self._exec_stmt(s.init, ctx, env)
                simple_cond = s.cond is not None and self._simple(s.cond)
                while True:
                    if s.cond is not None:
                        cond = (self._eval_simple(s.cond, ctx, env)
                                if simple_cond
                                else (yield from self._eval(s.cond, ctx, env)))
                        if not cond:
                            break
                    try:
                        yield from self._exec_stmt(s.body, ctx, env)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if s.step is not None:
                        yield from self._exec_expr_stmt(s.step, ctx, env)
            finally:
                env.pop()
            return
        if isinstance(s, A.While):
            simple_cond = self._simple(s.cond)
            while True:
                cond = (self._eval_simple(s.cond, ctx, env) if simple_cond
                        else (yield from self._eval(s.cond, ctx, env)))
                if not cond:
                    break
                try:
                    yield from self._exec_stmt(s.body, ctx, env)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(s, A.DoWhile):
            while True:
                try:
                    yield from self._exec_stmt(s.body, ctx, env)
                except _Break:
                    break
                except _Continue:
                    pass
                cond = yield from self._eval(s.cond, ctx, env)
                if not cond:
                    break
            return
        if isinstance(s, A.Return):
            if s.value is None:
                raise _Return(None)
            raise _Return((yield from self._eval(s.value, ctx, env)))
        if isinstance(s, A.Break):
            raise _Break()
        if isinstance(s, A.Continue):
            raise _Continue()
        if isinstance(s, A.EmptyStmt):
            return
        if isinstance(s, A.PragmaStmt):
            # unconsumed directive: execute the annotated statement as-is
            yield from self._exec_stmt(s.stmt, ctx, env)
            return
        raise SimulationError(f"cannot execute statement {type(s).__name__}")

    def _exec_decl(self, d: A.VarDeclarator, s: A.DeclStmt, ctx, env):
        if d.array_size is not None:
            size = yield from self._eval(d.array_size, ctx, env)
            if d.init is not None:
                raise SimulationError("array initializers are not supported")
            if s.shared:
                env.declare(d.name, _SHARED_ARRAY,
                            ctx.shared_array(d.name, size))
            else:
                init = 0.0 if d.type.is_float else 0
                env.declare(d.name, _LOCAL_ARRAY, [init] * size)
            return
        if s.shared:
            cell = ctx.shared_array(d.name, 1)
            env.declare(d.name, _SHARED_SCALAR, cell)
            if d.init is not None:
                cell[0] = yield from self._eval(d.init, ctx, env)
            return
        kind = _PTR if d.type.is_pointer else _SCALAR
        if d.init is not None:
            value = yield from self._eval(d.init, ctx, env)
        else:
            value = 0.0 if d.type.is_float else (None if kind == _PTR else 0)
        env.declare(d.name, kind, value)

    def _exec_expr_stmt(self, e, ctx, env):
        if isinstance(e, A.Assign):
            yield from self._exec_assign(e, ctx, env)
            return
        if isinstance(e, A.IncDec):
            yield from self._exec_incdec(e, ctx, env)
            return
        if isinstance(e, A.BinOp) and e.op == ",":
            yield from self._exec_expr_stmt(e.left, ctx, env)
            yield from self._exec_expr_stmt(e.right, ctx, env)
            return
        if isinstance(e, A.Call):
            yield from self._eval_call(e, ctx, env, as_stmt=True)
            return
        if isinstance(e, A.LaunchExpr):
            yield from self._launch(e, ctx, env)
            return
        yield from self._eval(e, ctx, env)

    def _python_compound(self, op: str, old, value):
        """Compound scalar assignment uses host-Python operator semantics,
        exactly like the codegen lowering emits (`x += v`, `x /= v`, ...)."""
        if op == "+":
            return old + value
        if op == "-":
            return old - value
        if op == "*":
            return old * value
        if op == "/":
            return old / value
        if op == "%":
            return old % value
        if op == "&":
            return old & value
        if op == "|":
            return old | value
        if op == "^":
            return old ^ value
        if op == "<<":
            return old << value
        if op == ">>":
            return old >> value
        raise SimulationError(f"cannot apply compound operator {op!r}=")

    def _exec_assign(self, e: A.Assign, ctx, env):
        target = e.target
        if isinstance(target, A.Ident):
            entry = env.lookup(target.name)
            kind = entry[0] if entry is not None else (
                _PTR if target.name in self.info.globals
                and self.info.globals[target.name].type.is_pointer
                else _SCALAR)
            if kind == _SHARED_SCALAR:
                cell = entry[1]
                if e.op == "=":
                    cell[0] = yield from self._eval(e.value, ctx, env)
                else:
                    # Python `s[0] op= v` reads the old value before
                    # evaluating v; other lanes may interleave at v's yields
                    old = cell[0]
                    value = yield from self._eval(e.value, ctx, env)
                    cell[0] = self._python_compound(e.op[:-1], old, value)
                return
            value = yield from self._eval(e.value, ctx, env)
            if e.op == "=":
                new = value
            else:
                old = entry[1] if entry is not None else 0
                new = self._python_compound(e.op[:-1], old, value)
            # C truncates float -> int on assignment to an int scalar
            tt = getattr(e.target, "ty", None)
            vt = getattr(e.value, "ty", None)
            if tt is not None and vt is not None and tt.is_integer \
                    and vt.is_float:
                new = int(new)
            if entry is not None:
                env.rebind(target.name, new)
            else:
                env.declare(target.name, kind, new)
            return
        if isinstance(target, A.Index) or (isinstance(target, A.UnOp)
                                           and target.op == "*"):
            deref = isinstance(target, A.UnOp)
            base_node = target.operand if deref else target.base
            local = None
            if not deref and isinstance(base_node, A.Ident):
                entry = env.lookup(base_node.name)
                if entry is not None and entry[0] in (_LOCAL_ARRAY,
                                                      _SHARED_ARRAY):
                    local = entry[1]
            if local is not None:
                # Python list-assignment order: plain `=` evaluates the
                # value first; compound `op=` reads before the value
                if e.op == "=":
                    value = yield from self._eval(e.value, ctx, env)
                    index = yield from self._eval(target.index, ctx, env)
                    local[index] = value
                else:
                    index = yield from self._eval(target.index, ctx, env)
                    old = local[index]
                    value = yield from self._eval(e.value, ctx, env)
                    local[index] = self._python_compound(e.op[:-1], old, value)
                return
            if deref:
                arr = yield from self._eval(base_node, ctx, env)
                index = 0
            elif isinstance(base_node, A.Ident):
                arr = self._ident(base_node, env)
                index = yield from self._eval(target.index, ctx, env)
            else:
                arr = yield from self._eval(base_node, ctx, env)
                index = yield from self._eval(target.index, ctx, env)
            if e.op == "=":
                value = yield from self._eval(e.value, ctx, env)
                yield (ST, arr, index, value)
            else:
                old = yield (LD, arr, index)
                value = yield from self._eval(e.value, ctx, env)
                new = self._device_compound(e.op[:-1], old, value, target)
                yield (ST, arr, index, new)
            return
        raise SimulationError("unsupported assignment target")

    def _device_compound(self, op: str, old, value, target):
        """Compound assignment into device memory goes through the C
        division helpers (mirrors codegen's binop_code on the ST path)."""
        tt = getattr(target, "ty", None)
        if op == "/":
            if tt is None or tt.is_integer:
                return _idiv(old, value)
            return old / value
        if op == "%":
            return _imod(old, value)
        return self._python_compound(op, old, value)

    def _exec_incdec(self, e: A.IncDec, ctx, env):
        delta = 1 if e.op == "++" else -1
        target = e.operand
        if isinstance(target, A.Ident):
            entry = env.lookup(target.name)
            if entry is None:
                raise SimulationError(
                    f"++/-- of undeclared name {target.name!r}")
            if entry[0] == _SHARED_SCALAR:
                entry[1][0] = entry[1][0] + delta
            else:
                env.rebind(target.name, entry[1] + delta)
            return
        if isinstance(target, A.Index) or (isinstance(target, A.UnOp)
                                           and target.op == "*"):
            deref = isinstance(target, A.UnOp)
            base_node = target.operand if deref else target.base
            if not deref and isinstance(base_node, A.Ident):
                entry = env.lookup(base_node.name)
                if entry is not None and entry[0] in (_LOCAL_ARRAY,
                                                      _SHARED_ARRAY):
                    # `a[i] = a[i] + 1`: the index expression runs twice
                    arr = entry[1]
                    i1 = yield from self._eval(target.index, ctx, env)
                    old = arr[i1]
                    i2 = yield from self._eval(target.index, ctx, env)
                    arr[i2] = old + delta
                    return
                arr = self._ident(base_node, env)
                index = yield from self._eval(target.index, ctx, env)
            elif deref:
                arr = yield from self._eval(base_node, ctx, env)
                index = 0
            else:
                arr = yield from self._eval(base_node, ctx, env)
                index = yield from self._eval(target.index, ctx, env)
            old = yield (LD, arr, index)
            yield (ST, arr, index, old + delta)
            return
        raise SimulationError("unsupported ++/-- target")


# ----------------------------------------------------------------- scheduler

@dataclass
class _Instance:
    """One kernel grid on the CPU backend."""

    uid: int
    name: str
    grid: int
    block_dim: int
    args: tuple
    depth: int


class _Warp:
    __slots__ = ("threads", "ctxs", "states", "pending")

    def __init__(self, threads, ctxs):
        self.threads = threads
        self.ctxs = ctxs
        self.states = [_RUNNING] * len(threads)
        self.pending = [None] * len(threads)


class CpuProgram:
    """A loaded module bound to a CpuDevice (Device.Program facade)."""

    def __init__(self, device: "CpuDevice", info: ModuleInfo):
        self.device = device
        self.info = info

    def kernel_names(self) -> list[str]:
        return sorted(self.info.kernel_names())

    def launch(self, name: str, grid: int, block: int, *args) -> None:
        self.device.launch(name, grid, block, *args)


class CpuDevice:
    """Device facade over the CPU interpreter.

    Drop-in for :class:`repro.sim.device.Device` as far as app host
    drivers are concerned; ``cost`` and ``allocator`` are accepted for
    signature parity and ignored (there is nothing to price).
    ``synchronize`` returns a :class:`RunMetrics` with the functional
    counters filled in and every timing quantity zero.
    """

    def __init__(self, spec: DeviceSpec = K20C,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 allocator: str = "custom",
                 heap_bytes: Optional[int] = None):
        self.spec = spec
        self.cost = cost
        self.dp = _CpuDpRuntime()
        self.functions: dict[str, A.FunctionDef] = {}
        self._interps: dict[str, _Interp] = {}
        self._uid = 0
        self.host_launches = 0
        self.device_launches = 0
        self._instances_since_sync = 0
        self.last_metrics: Optional[RunMetrics] = None

    # ------------------------------------------------------------- loading

    def load(self, module: Union[str, Module, ModuleInfo]) -> CpuProgram:
        if isinstance(module, str):
            module = parse(module)
        if isinstance(module, Module):
            info = check_module(module, allow_reserved=True)
        else:
            info = module
        interp = _Interp(info)
        for name in interp.functions:
            if name in self.functions:
                raise SimulationError(
                    f"kernel/function {name!r} already loaded on this device")
        for name, fn in interp.functions.items():
            self.functions[name] = fn
            self._interps[name] = interp
        return CpuProgram(self, info)

    # ------------------------------------------------------------- memory

    _DTYPES = {"i4": np.int32, "u4": np.uint32, "i8": np.int64,
               "f4": np.float32, "f8": np.float64, "i1": np.int8}

    def alloc(self, name: str, dtype: str, n: int) -> CpuArray:
        return CpuArray(name, np.zeros(max(1, n), dtype=self._DTYPES[dtype]))

    def from_numpy(self, name: str, host: np.ndarray) -> CpuArray:
        host = np.ascontiguousarray(host)
        if host.ndim != 1:
            raise SimulationError("only 1-D arrays can be copied to device")
        return CpuArray(name, host.copy())

    @staticmethod
    def to_numpy(arr: CpuArray) -> np.ndarray:
        return arr.to_numpy()

    # ------------------------------------------------------------ launches

    def launch(self, name: str, grid: int, block: int, *args) -> None:
        if name not in self.functions:
            raise LaunchError(f"launch of unknown kernel {name!r}")
        self._validate_config(name, grid, block)
        inst = self._new_instance(name, int(grid), int(block), args, depth=0)
        self.host_launches += 1
        self._run_tree([inst])

    def _validate_config(self, name: str, grid: int, block: int) -> None:
        if grid <= 0 or block <= 0:
            raise LaunchError(
                f"kernel {name}: invalid configuration <<<{grid}, {block}>>>")
        if block > self.spec.max_threads_per_block:
            raise LaunchError(
                f"kernel {name}: {block} threads/block exceeds the device "
                f"limit of {self.spec.max_threads_per_block}")

    def _new_instance(self, name, grid, block, args, depth) -> _Instance:
        self._uid += 1
        self._instances_since_sync += 1
        return _Instance(uid=self._uid, name=name, grid=grid,
                         block_dim=block, args=tuple(args), depth=depth)

    def _on_device_launch(self, parent: _Instance, name: str, grid: int,
                          block: int, args: tuple) -> _Instance:
        if name not in self.functions:
            raise LaunchError(f"device launch of unknown kernel {name!r}")
        depth = parent.depth + 1
        if depth > self.spec.max_nesting_depth:
            raise LaunchError(
                f"dynamic-parallelism nesting depth {depth} exceeds the "
                f"device limit of {self.spec.max_nesting_depth}")
        self._validate_config(name, grid, block)
        self.device_launches += 1
        return self._new_instance(name, int(grid), int(block), args,
                                  depth=depth)

    # --------------------------------------------------------------- sync

    def synchronize(self) -> RunMetrics:
        metrics = RunMetrics(
            cycles=0.0,
            host_launches=self.host_launches,
            device_launches=self.device_launches,
            kernel_instances=self._instances_since_sync,
            buffers_acquired=self.dp.buffers_acquired,
            buffer_pushes=self.dp.pushes,
            allocator_kind="cpu",
        )
        self._instances_since_sync = 0
        self.last_metrics = metrics
        return metrics

    def reset_profile(self) -> None:
        self.host_launches = 0
        self.device_launches = 0
        self._instances_since_sync = 0

    # ----------------------------------------------------------- execution

    def _run_tree(self, roots: list[_Instance]) -> None:
        from collections import deque

        queue = deque(roots)
        while queue:
            inst = queue.popleft()
            self._run_blocks(inst, queue)

    def _run_blocks(self, inst: _Instance, queue) -> None:
        interp = self._interps.get(inst.name)
        if interp is None:
            raise SimulationError(f"launch of unknown kernel {inst.name!r}")
        fn = self.functions[inst.name]
        if inst.grid <= 0 or inst.block_dim <= 0:
            raise SimulationError(
                f"kernel {inst.name}: empty launch configuration "
                f"<<<{inst.grid}, {inst.block_dim}>>>")
        for bx in range(inst.grid):
            queue.extend(self._run_block(inst, interp, fn, bx))

    def _make_warps(self, inst, interp, fn, bx, shared):
        wsz = self.spec.warp_size
        bdim = inst.block_dim
        warps = []
        for wbase in range(0, bdim, wsz):
            lanes = range(wbase, min(wbase + wsz, bdim))
            ctxs = [ThreadCtx(tx, bx, bdim, inst.grid, shared, wsz)
                    for tx in lanes]
            gens = [interp.thread(fn, ctx, inst.args) for ctx in ctxs]
            warps.append(_Warp(gens, ctxs))
        return warps

    def _run_block(self, inst, interp, fn, bx) -> list:
        shared: dict = {}
        warps = self._make_warps(inst, interp, fn, bx, shared)
        block_pending: list[_Instance] = []
        while True:
            progressed = False
            barrier_waiters = 0
            done_warps = 0
            for warp in warps:
                status = self._run_warp(warp, inst, block_pending)
                if status == "barrier":
                    barrier_waiters += 1
                elif status == "done":
                    done_warps += 1
                elif status == "devsync":
                    children = list(block_pending)
                    block_pending.clear()
                    self._run_tree(children)
                    progressed = True
                if status == "progress":
                    progressed = True
            if done_warps == len(warps):
                break
            if barrier_waiters + done_warps == len(warps) and barrier_waiters:
                for warp in warps:
                    for i, st in enumerate(warp.states):
                        if st == _AT_BARRIER:
                            warp.states[i] = _RUNNING
                progressed = True
            if not progressed:
                raise SimulationError(
                    f"deadlock in kernel {inst.name} block {bx}: "
                    f"{barrier_waiters} warps at barrier, {done_warps} done")
        return block_pending

    def _run_warp(self, warp: _Warp, inst, block_pending) -> str:
        states = warp.states
        threads = warp.threads
        pending = warp.pending
        ctxs = warp.ctxs
        made_progress = False
        while True:
            live = [i for i, st in enumerate(states) if st == _RUNNING]
            if not live:
                released = False
                for i, st in enumerate(states):
                    if st == _AT_WARP_BARRIER:
                        states[i] = _RUNNING
                        released = True
                if released:
                    made_progress = True
                    continue
                if any(st == _AT_BARRIER for st in states):
                    return "barrier" if not made_progress else "progress"
                return "done"
            active = 0
            devsync_requested = False
            for i in live:
                gen = threads[i]
                try:
                    ev = gen.send(pending[i])
                except StopIteration:
                    states[i] = _DONE
                    continue
                pending[i] = None
                active += 1
                op = ev[0]
                if op == LD:
                    pending[i] = ev[1].load(ev[2])
                elif op == ST:
                    ev[1].store(ev[2], ev[3])
                elif op == ATOM:
                    pending[i] = self._do_atomic(ev)
                elif op == SYNC:
                    states[i] = _AT_BARRIER
                elif op == WSYNC:
                    states[i] = _AT_WARP_BARRIER
                elif op == LAUNCH:
                    block_pending.append(self._on_device_launch(
                        inst, ev[1], ev[2], ev[3], ev[4]))
                elif op == DEVSYNC:
                    devsync_requested = True
                elif op == INTR:
                    pending[i] = self.dp.handle_intrinsic(
                        ev[1], ev[2], inst, ctxs[i])
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event opcode {op}")
            if active == 0:
                continue
            made_progress = True
            if devsync_requested:
                return "devsync"

    @staticmethod
    def _do_atomic(ev):
        op = ev[1]
        arr = ev[2]
        idx = ev[3]
        old = arr.load(idx)
        if op == "add":
            arr.store(idx, old + ev[4])
        elif op == "sub":
            arr.store(idx, old - ev[4])
        elif op == "min":
            if ev[4] < old:
                arr.store(idx, ev[4])
        elif op == "max":
            if ev[4] > old:
                arr.store(idx, ev[4])
        elif op == "exch":
            arr.store(idx, ev[4])
        elif op == "cas":
            if old == ev[4]:
                arr.store(idx, ev[5])
        elif op == "or":
            arr.store(idx, old | ev[4])
        elif op == "and":
            arr.store(idx, old & ev[4])
        else:  # pragma: no cover - typechecker prevents
            raise SimulationError(f"unknown atomic op {op!r}")
        return old


# ------------------------------------------------------------ batch execution

@dataclass
class CpuJob:
    """A picklable unit of CPU-backend work for :func:`run_jobs`.

    ``launches`` is a list of ``(kernel, grid, block, args)`` where each
    arg is either a plain scalar or the *name* of an entry in ``arrays``
    (names resolve to the uploaded CpuArray handles).
    """

    source: str
    arrays: dict
    launches: list

    def run(self) -> dict:
        """Execute on a fresh CpuDevice; returns name -> result array."""
        device = CpuDevice()
        program = device.load(self.source)
        handles = {name: device.from_numpy(name, arr)
                   for name, arr in self.arrays.items()}
        for kernel, grid, block, args in self.launches:
            resolved = [handles[a] if isinstance(a, str) else a for a in args]
            program.launch(kernel, grid, block, *resolved)
        device.synchronize()
        return {name: h.to_numpy() for name, h in handles.items()}


def run_job(job: CpuJob) -> dict:
    return job.run()


def run_jobs(jobs: list, processes: Optional[int] = None) -> list:
    """Fan independent :class:`CpuJob` executions across a process pool.

    With ``processes=1`` (or a single job) execution stays in-process;
    results are returned in job order either way.
    """
    jobs = list(jobs)
    if processes == 1 or len(jobs) <= 1:
        return [job.run() for job in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_job, jobs))


class CpuBackend(Backend):
    """NumPy/multiprocessing interpreter backend (executes, no emit)."""

    name = "cpu"
    summary = ("executing NumPy interpreter (independent semantics "
               "cross-check; no timing model)")
    executes = True
    emits = False

    def make_device(self, spec: DeviceSpec = K20C,
                    cost: CostModel = DEFAULT_COST_MODEL,
                    allocator: str = "custom",
                    heap_bytes: Optional[int] = None,
                    engine: Optional[str] = None) -> CpuDevice:
        if engine is not None:
            raise BackendError(
                "the cpu backend has a single execution strategy; "
                f"engine {engine!r} (oracle selection) only applies to "
                "the simulator backend")
        return CpuDevice(spec=spec, cost=cost, allocator=allocator,
                         heap_bytes=heap_bytes)

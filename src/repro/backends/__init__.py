"""Pluggable execution backends.

The simulator used to be the only target of the toolchain; this package
turns "where does a program run (or lower to)" into a registry axis,
mirroring :mod:`repro.compiler.strategies`. Built-ins:

``sim``
    the SIMT functional simulator with the timing model (the default —
    omitting ``--backend`` everywhere means exactly this);
``cpu``
    an independent NumPy-backed interpreter that executes programs for
    differential testing against the sim (``tests/test_backends.py``);
``cuda``
    a CUDA-C emitter producing compilable ``.cu`` files (golden-file
    tested; ``repro compile <app> <variant> --backend cuda``).

Registering a backend makes it reachable end-to-end — ``App.run``, the
experiment runner's cache key, and the CLI — without touching any of
them::

    from repro.backends import Backend, register_backend

    class MyBackend(Backend):
        name = "mine"
        executes = True
        def make_device(self, **kw): ...

    register_backend(MyBackend())
"""

from __future__ import annotations

from typing import Union

from .base import Backend, BackendError
from .cpu import CpuBackend, CpuDevice, CpuJob, run_job, run_jobs
from .cuda import (
    CudaBackend, check_cu_syntax, clear_emit_cache, emit_cuda,
    normalize_cuda,
)
from .sim import SimBackend

__all__ = [
    "Backend",
    "BackendError",
    "SimBackend",
    "CpuBackend",
    "CudaBackend",
    "CpuDevice",
    "CpuJob",
    "run_job",
    "run_jobs",
    "emit_cuda",
    "normalize_cuda",
    "check_cu_syntax",
    "clear_emit_cache",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "BUILTIN_BACKENDS",
    "DEFAULT_BACKEND",
]

#: the backend every run uses when none is named; omitting ``--backend``
#: and naming this one produce identical cache keys (see store.run_key)
DEFAULT_BACKEND = "sim"

#: name -> singleton; insertion order is the presentation order of
#: ``repro list``
_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend to the registry (validated); returns it."""
    if not isinstance(backend, Backend):
        raise TypeError(f"expected a Backend instance, got {backend!r}")
    if not backend.name:
        raise ValueError(f"{type(backend).__name__} must define a name")
    if not (backend.executes or backend.emits):
        raise ValueError(
            f"backend {backend.name!r} must execute programs or emit "
            "source (or both)")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test/plugin cleanup). Built-ins may be removed
    too; re-register them from the exported classes if needed."""
    if name not in _REGISTRY:
        raise KeyError(f"backend {name!r} is not registered")
    del _REGISTRY[name]


def get_backend(name: Union[str, Backend]) -> Backend:
    """Look up a backend by name; instances pass through unchanged."""
    if isinstance(name, Backend):
        return name
    backend = _REGISTRY.get(name)
    if backend is None:
        raise BackendError(
            f"unknown backend {name!r}; "
            f"available: {', '.join(available_backends())}")
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


register_backend(SimBackend())
register_backend(CpuBackend())
register_backend(CudaBackend())

#: the built-in targets, as registered singletons
BUILTIN_BACKENDS = tuple(_REGISTRY.values())

"""Execution-backend interface.

A :class:`Backend` is one *target* of the toolchain: something a checked
MiniCUDA program can be run on (the simulator, the CPU interpreter) or
lowered to (the CUDA-C emitter). The registry in
:mod:`repro.backends` mirrors the consolidation-strategy registry
(:mod:`repro.compiler.strategies`): built-ins register at import, plugins
call :func:`repro.backends.register_backend`.

A backend declares two capabilities:

``executes``
    It can build a *device* — an object with the :class:`repro.sim.device.Device`
    facade (``load`` / ``from_numpy`` / ``alloc`` / ``launch`` /
    ``synchronize`` / ``to_numpy``) — so every app host driver runs on it
    unchanged. Executing backends plug into ``App.run(backend=...)`` and
    the experiment runner's ``--backend`` axis.

``emits``
    It can lower a program to target source text (``emit``), e.g. a
    ``.cu`` translation unit. Emit-only backends serve ``repro compile
    --backend`` and the golden-file tests; asking them to execute raises.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C


class BackendError(RuntimeError):
    """A backend was asked for a capability it does not have."""


class Backend(abc.ABC):
    """One named execution/lowering target."""

    #: registry key ('sim', 'cpu', 'cuda', ...)
    name: str = ""
    #: one-line description for `repro list`
    summary: str = ""
    #: can build a Device-facade object that executes programs
    executes: bool = False
    #: can lower a program to target source text
    emits: bool = False

    def make_device(self, spec: DeviceSpec = K20C,
                    cost: CostModel = DEFAULT_COST_MODEL,
                    allocator: str = "custom",
                    heap_bytes: Optional[int] = None,
                    engine: Optional[str] = None):
        """Build a fresh device with the Device facade.

        ``cost`` and ``allocator`` configure the timing/allocation models
        where the backend has them (the simulator); purely functional
        backends accept and ignore them so RunSpecs stay portable.
        ``engine`` selects a functional-engine implementation where the
        backend offers several (:data:`repro.sim.device.ENGINES`, chosen
        by the run's exact oracle); backends with a single execution
        strategy must reject a non-None engine rather than silently run
        something else.
        """
        raise BackendError(
            f"backend {self.name!r} does not execute programs"
            + (f"; use `repro compile --backend {self.name}`" if self.emits
               else ""))

    def emit(self, source: str, *, name: str = "minicuda") -> str:
        """Lower MiniCUDA source to this backend's target language."""
        raise BackendError(f"backend {self.name!r} does not emit source")

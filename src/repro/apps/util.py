"""Host-side upload helpers shared by the benchmark drivers."""

from __future__ import annotations

import numpy as np

from ..data.structures import Graph, Tree
from ..sim.device import Device


def upload_graph(device: Device, g: Graph, weights_as_float: bool = False):
    """Upload a CSR graph; returns (row_ptr, col_idx, weights) arrays."""
    row_ptr = device.from_numpy("row_ptr", g.row_ptr.astype(np.int32))
    col_idx = device.from_numpy("col_idx", g.col_idx.astype(np.int32))
    if weights_as_float:
        weights = device.from_numpy("values", g.weights.astype(np.float32))
    else:
        weights = device.from_numpy("weights", g.weights.astype(np.int32))
    return row_ptr, col_idx, weights


def upload_tree(device: Device, t: Tree):
    """Upload a tree; returns (child_ptr, child_idx, values) arrays."""
    child_ptr = device.from_numpy("child_ptr", t.child_ptr.astype(np.int32))
    child_idx = device.from_numpy("child_idx", t.child_idx.astype(np.int32))
    values = device.from_numpy("values", t.values.astype(np.int32))
    return child_ptr, child_idx, values


def reverse_csr(g: Graph) -> Graph:
    """Build the reverse (incoming-edge) CSR of a graph."""
    n = g.num_nodes
    counts = np.bincount(g.col_idx, minlength=n)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    row_ptr[1:] = np.cumsum(counts)
    col_idx = np.zeros(g.num_edges, dtype=np.int32)
    weights = np.zeros(g.num_edges, dtype=g.weights.dtype)
    cursor = row_ptr[:-1].copy()
    src = np.repeat(np.arange(n, dtype=np.int32), np.diff(g.row_ptr))
    for e in range(g.num_edges):
        v = g.col_idx[e]
        k = cursor[v]
        col_idx[k] = src[e]
        weights[k] = g.weights[e]
        cursor[v] += 1
    rg = Graph(g.name + "^T", row_ptr, col_idx, weights)
    rg.validate()
    return rg


def blocks_for(n: int, threads: int = 128) -> int:
    return max(1, (n + threads - 1) // threads)

"""Recursive Breadth-First Search (BFS-Rec) — parallel recursion on a graph.

The natural recursive port the paper describes (§II.B): a kernel runs one
thread per neighbor of a claimed node; a thread that claims an unvisited
neighbor (atomicCAS on its level) recursively launches a kernel over that
neighbor's own adjacency list. Parent and child are the *same* kernel, so
both transformation phases apply to it sequentially (§IV.C); with
grid-level consolidation the generated code is exactly a level-synchronous
frontier BFS — the equivalence the paper points out versus [3].

**Solo-block** recursive child (``<<<1, deg>>>``). Dataset: Kronecker-like
(symmetric). Result: level array.

Verification: the claim order is racy on real hardware exactly as it is
under our deterministic schedule, so basic-dp may assign non-minimal
levels. The check accepts any *valid parent levelling* (every visited
non-root has a neighbor one level shallower, visited set equals the
reachable set); the flat and grid-consolidated variants additionally
produce true BFS distances.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_graph

ANNOTATED = r"""
__global__ void bfs_rec(int* row_ptr, int* col_idx, int* levels, int u,
                        int depth) {
    int beg = row_ptr[u];
    int deg = row_ptr[u + 1] - beg;
    int t = threadIdx.x;
    if (t < deg) {
        int v = col_idx[beg + t];
        int old = atomicCAS(&levels[v], -1, depth);
        if (old == -1) {
            int cdeg = row_ptr[v + 1] - row_ptr[v];
            #pragma dp consldt(grid) work(v)
            if (cdeg > 0) {
                bfs_rec<<<1, cdeg>>>(row_ptr, col_idx, levels, v, depth + 1);
            }
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void bfs_flat(int* row_ptr, int* col_idx, int* levels, int* changed,
                         int level, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (levels[u] == level) {
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            for (int i = 0; i < deg; i++) {
                int v = col_idx[beg + i];
                int old = atomicCAS(&levels[v], -1, level + 1);
                if (old == -1) {
                    changed[0] = 1;
                }
            }
        }
    }
}
"""


@register
class BFSRecApp(App):
    key = "bfs_rec"
    label = "BFS-Rec"
    has_delegation_guard = False
    requires_symmetric = True
    requires_shallow = True
    default_workload = "kron(seed=51)"

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def _root(self, g) -> int:
        return int(np.argmax(g.degrees))

    def host_run(self, device, program, dataset, variant):
        g = dataset
        n = g.num_nodes
        row_ptr, col_idx, _ = upload_graph(device, g)
        root = self._root(g)
        lv0 = np.full(n, -1, dtype=np.int32)
        lv0[root] = 0
        levels = device.from_numpy("levels", lv0)
        if variant == FLAT:
            changed = device.from_numpy("changed", np.zeros(1, dtype=np.int32))
            grid = blocks_for(n)
            level = 0
            while True:
                changed.data[0] = 0
                program.launch("bfs_flat", grid, 128, row_ptr, col_idx,
                               levels, changed, level, n)
                level += 1
                if changed.data[0] == 0 or level > n:
                    break
        else:
            deg = g.out_degree(root)
            program.launch("bfs_rec", 1, max(1, deg), row_ptr, col_idx,
                           levels, root, 1)
        return levels.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        """True BFS distances (used by the validity check)."""
        g = dataset
        n = g.num_nodes
        root = self._root(g)
        levels = np.full(n, -1, dtype=np.int32)
        levels[root] = 0
        frontier = [root]
        d = 0
        while frontier:
            nxt = []
            for u in frontier:
                for v in g.neighbors(u):
                    if levels[v] < 0:
                        levels[v] = d + 1
                        nxt.append(int(v))
            frontier = nxt
            d += 1
        return levels

    def check(self, result, dataset) -> bool:
        g = dataset
        ref = self.reference(dataset)
        # same visited set as the reachable set
        if not np.array_equal(result >= 0, ref >= 0):
            return False
        root = self._root(g)
        if result[root] != 0:
            return False
        # parent-level property: every visited non-root node has a neighbor
        # exactly one level shallower (graph is symmetric)
        for v in np.nonzero(result > 0)[0]:
            nbrs = g.neighbors(v)
            if not np.any(result[nbrs] == result[v] - 1):
                return False
        # levels can never beat true BFS distances
        mask = ref >= 0
        return bool(np.all(result[mask] >= ref[mask]))

"""PageRank (PR) with the standard power-iteration formulation.

``rank'[u] = (1-d)/n + d * sum(rank[v] / outdeg[v] for v -> u)`` computed
over the *incoming-edge* CSR; nodes with many in-neighbors delegate the
gather to a child kernel that accumulates with float atomics (the
Duong et al. GPU PageRank the paper cites parallelizes the same gather).

Irregular-loop application; **solo-block** child. Dataset: CiteSeer-like.
Result: float32 rank vector after a fixed number of iterations.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, reverse_csr

DAMPING = 0.85
ITERATIONS = 4

ANNOTATED = r"""
__global__ void pr_child(int* in_ptr, int* in_idx, float* contrib,
                         float* newrank, int u) {
    int beg = in_ptr[u];
    int len = in_ptr[u + 1] - beg;
    int t = threadIdx.x;
    if (t < len) {
        atomicAdd(&newrank[u], contrib[in_idx[beg + t]]);
    }
}

__global__ void pr_parent(int* in_ptr, int* in_idx, float* contrib,
                          float* newrank, int n, int threshold) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int beg = in_ptr[u];
        int len = in_ptr[u + 1] - beg;
        #pragma dp consldt(grid) buffer(type: custom) work(u)
        if (len > threshold) {
            pr_child<<<1, len>>>(in_ptr, in_idx, contrib, newrank, u);
        } else {
            float acc = 0.0f;
            for (int i = 0; i < len; i++) {
                acc = acc + contrib[in_idx[beg + i]];
            }
            newrank[u] = newrank[u] + acc;
        }
    }
}

__global__ void pr_contrib(float* rank, int* outdeg, float* contrib,
                           float damping, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (outdeg[u] > 0) {
            contrib[u] = damping * rank[u] / (float)outdeg[u];
        } else {
            contrib[u] = 0.0f;
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void pr_flat(int* in_ptr, int* in_idx, float* contrib,
                        float* newrank, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int beg = in_ptr[u];
        int len = in_ptr[u + 1] - beg;
        float acc = 0.0f;
        for (int i = 0; i < len; i++) {
            acc = acc + contrib[in_idx[beg + i]];
        }
        newrank[u] = newrank[u] + acc;
    }
}

__global__ void pr_contrib(float* rank, int* outdeg, float* contrib,
                           float damping, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (outdeg[u] > 0) {
            contrib[u] = damping * rank[u] / (float)outdeg[u];
        } else {
            contrib[u] = 0.0f;
        }
    }
}
"""


@register
class PageRankApp(App):
    key = "pagerank"
    label = "PR"
    threshold = 8
    default_workload = "citeseer(seed=31)"

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def host_run(self, device, program, dataset, variant):
        g = dataset
        rg = reverse_csr(g)
        n = g.num_nodes
        in_ptr = device.from_numpy("in_ptr", rg.row_ptr.astype(np.int32))
        in_idx = device.from_numpy("in_idx", rg.col_idx.astype(np.int32))
        outdeg = device.from_numpy("outdeg", g.degrees.astype(np.int32))
        rank = device.from_numpy(
            "rank", np.full(n, 1.0 / n, dtype=np.float32))
        contrib = device.from_numpy("contrib", np.zeros(n, dtype=np.float32))
        newrank = device.from_numpy("newrank", np.zeros(n, dtype=np.float32))
        grid = blocks_for(n)
        base = (1.0 - DAMPING) / n
        for _ in range(ITERATIONS):
            program.launch("pr_contrib", grid, 128, rank, outdeg, contrib,
                           DAMPING, n)
            newrank.data[:] = base  # host-side memset, as CUDA codes memset
            if variant == FLAT:
                program.launch("pr_flat", grid, 128, in_ptr, in_idx, contrib,
                               newrank, n)
            else:
                program.launch("pr_parent", grid, 128, in_ptr, in_idx, contrib,
                               newrank, n, self.threshold)
            rank.data[:] = newrank.data  # pointer-swap equivalent
        return rank.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        g = dataset
        rg = reverse_csr(g)
        n = g.num_nodes
        outdeg = g.degrees.astype(np.float32)
        rank = np.full(n, 1.0 / n, dtype=np.float32)
        for _ in range(ITERATIONS):
            contrib = np.where(outdeg > 0, DAMPING * rank / np.maximum(outdeg, 1),
                               0.0).astype(np.float32)
            newrank = np.full(n, (1.0 - DAMPING) / n, dtype=np.float32)
            for u in range(n):
                lo, hi = rg.row_ptr[u], rg.row_ptr[u + 1]
                newrank[u] += contrib[rg.col_idx[lo:hi]].sum(dtype=np.float32)
            rank = newrank
        return rank

    def check(self, result, dataset) -> bool:
        return np.allclose(result, self.reference(dataset), rtol=1e-3, atol=1e-6)

"""Sparse Matrix-Vector multiplication (SpMV), CSR storage.

``y = A @ x`` with one thread per row; rows longer than the threshold
delegate the dot product to a child kernel that accumulates into ``y[r]``
with floating-point atomics (the Greathouse-Daga CSR formulation the paper
cites uses the same long-row splitting idea).

Irregular-loop application; **solo-block** child. Dataset: CiteSeer-like
used as a sparse matrix. Result: float32 vector.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_graph

ANNOTATED = r"""
__global__ void spmv_child(int* row_ptr, int* col_idx, float* values, float* x,
                           float* y, int r) {
    int beg = row_ptr[r];
    int len = row_ptr[r + 1] - beg;
    int t = threadIdx.x;
    if (t < len) {
        float prod = values[beg + t] * x[col_idx[beg + t]];
        atomicAdd(&y[r], prod);
    }
}

__global__ void spmv_parent(int* row_ptr, int* col_idx, float* values, float* x,
                            float* y, int n, int threshold) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < n) {
        int beg = row_ptr[r];
        int len = row_ptr[r + 1] - beg;
        #pragma dp consldt(grid) buffer(type: custom) work(r)
        if (len > threshold) {
            spmv_child<<<1, len>>>(row_ptr, col_idx, values, x, y, r);
        } else {
            float acc = 0.0f;
            for (int i = 0; i < len; i++) {
                acc = acc + values[beg + i] * x[col_idx[beg + i]];
            }
            y[r] = y[r] + acc;
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void spmv_flat(int* row_ptr, int* col_idx, float* values, float* x,
                          float* y, int n) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < n) {
        int beg = row_ptr[r];
        int len = row_ptr[r + 1] - beg;
        float acc = 0.0f;
        for (int i = 0; i < len; i++) {
            acc = acc + values[beg + i] * x[col_idx[beg + i]];
        }
        y[r] = acc;
    }
}
"""


@register
class SpMVApp(App):
    key = "spmv"
    label = "SpMV"
    threshold = 8
    default_workload = "citeseer(seed=21)"

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def _x(self, n: int) -> np.ndarray:
        rng = np.random.default_rng(5)
        return (rng.random(n, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)

    def host_run(self, device, program, dataset, variant):
        g = dataset
        n = g.num_nodes
        row_ptr, col_idx, values = upload_graph(device, g, weights_as_float=True)
        x = device.from_numpy("x", self._x(n))
        y = device.from_numpy("y", np.zeros(n, dtype=np.float32))
        grid = blocks_for(n)
        if variant == FLAT:
            program.launch("spmv_flat", grid, 128, row_ptr, col_idx, values,
                           x, y, n)
        else:
            program.launch("spmv_parent", grid, 128, row_ptr, col_idx, values,
                           x, y, n, self.threshold)
        return y.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        import scipy.sparse as sp

        g = dataset
        n = g.num_nodes
        A = sp.csr_matrix(
            (g.weights.astype(np.float32), g.col_idx, g.row_ptr), shape=(n, n)
        )
        return (A @ self._x(n)).astype(np.float32)

    def check(self, result, dataset) -> bool:
        ref = self.reference(dataset)
        # atomic accumulation order differs between variants; float32
        # addition is not associative, so compare with a tolerance
        return np.allclose(result, ref, rtol=1e-4, atol=1e-4)

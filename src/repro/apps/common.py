"""Benchmark-application framework.

Every paper benchmark is an :class:`App` with:

* an **annotated basic-dp source** — the naive dynamic-parallelism CUDA of
  Fig. 1, carrying the ``#pragma dp`` directive. Run as-is, this *is* the
  paper's ``basic-dp`` baseline (directives are inert at runtime);
* a **flat source** — the ``no-dp`` baseline (inline serial inner loops);
* a **host driver** that uploads the dataset, launches kernels (looping
  until convergence where the algorithm iterates) and reads results back;
* a NumPy/SciPy **reference** and a **check** predicate.

Consolidated variants are *not hand-written*: they are produced by the
compiler from the annotated source (``variant_source``), and reuse the same
host driver because the transforms keep the parent kernel's name and
signature.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..compiler import consolidate_source
from ..compiler.consolidator import ConsolidationReport
from ..sim.device import Device
from ..sim.occupancy import LaunchConfig
from ..sim.profiler import RunMetrics
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C
from ..telemetry import span

#: variant identifiers, matching the paper's figure legends
BASIC = "basic-dp"
FLAT = "no-dp"
WARP = "warp-level"
BLOCK = "block-level"
GRID = "grid-level"

#: the generic consolidated variant: which granularity is applied comes
#: from the ``strategy`` axis (a registered consolidation strategy name;
#: None means the pragma's ``consldt`` clause decides)
CONS = "consolidated"

#: the autotuned variant: resolved through the tuned-config registry
#: (``repro tune`` / :mod:`repro.tuning`) onto a concrete consolidated
#: configuration before anything executes — apps never see it
TUNED = "tuned"

VARIANTS = (BASIC, FLAT, WARP, BLOCK, GRID)
CONSOLIDATED = {WARP: "warp", BLOCK: "block", GRID: "grid"}
#: built-in strategy name -> its legacy per-granularity variant label
VARIANT_FOR_STRATEGY = {gran: variant for variant, gran in CONSOLIDATED.items()}


def canonicalize_variant(variant: str,
                         strategy: Optional[str]) -> tuple[str, Optional[str]]:
    """Collapse redundant (variant, strategy) pairs to one spelling.

    ``("consolidated", "warp")`` and ``("warp-level", None)`` request the
    same run; canonicalizing to the legacy variant keeps one cache entry
    (and one figure label) per distinct execution, while strategies
    outside the built-in three stay on the generic variant. Contradictory
    pairs (a per-granularity variant with a *different* strategy, or a
    strategy on basic-dp/no-dp) are rejected.
    """
    if variant == CONS:
        legacy = VARIANT_FOR_STRATEGY.get(strategy)
        if legacy is not None:
            return legacy, None
        return variant, strategy
    if strategy is not None:
        expected = CONSOLIDATED.get(variant)
        if expected is None:
            raise ValueError(
                f"variant {variant!r} does not take a consolidation "
                f"strategy (got {strategy!r})")
        if strategy != expected:
            raise ValueError(
                f"variant {variant!r} contradicts strategy {strategy!r}; "
                f"use variant 'consolidated' to select a strategy")
        return variant, None
    return variant, None


@dataclass
class AppRun:
    """Result of one measured application run."""

    app: str
    variant: str
    dataset: str
    metrics: RunMetrics
    result: np.ndarray
    report: Optional[ConsolidationReport] = None
    checked: bool = False
    #: consolidation strategy, when the variant alone doesn't imply one
    #: (i.e. a non-builtin strategy ran under the 'consolidated' variant)
    strategy: Optional[str] = None
    #: execution backend the run used; None = the default simulator
    backend: Optional[str] = None
    #: exact oracle (engine selection) the run used; None = the default
    oracle: Optional[str] = None


class App(abc.ABC):
    """One paper benchmark. Subclasses provide sources and the host driver."""

    #: short key ('sssp') and figure label ('SSSP')
    key: str = ""
    label: str = ""
    #: default work-delegation threshold for irregular-loop apps
    threshold: int = 8
    #: whether the template guards delegation with ``deg > threshold``
    #: (Fig. 1(b)); False for the parallel-recursion apps, whose runs are
    #: threshold-independent (the tuner drops the axis — DESIGN.md §11)
    has_delegation_guard: bool = True
    #: dataset kind the host driver consumes ('graph' | 'tree'); the
    #: runner refuses workloads of the other kind up front
    kind: str = "graph"
    #: whether the algorithm relies on an undirected (symmetrized) graph
    #: (GC's independent-set argument, BFS-Rec's level check); asymmetric
    #: workloads are rejected before anything executes
    requires_symmetric: bool = False
    #: whether the algorithm recurses once per dataset level (BFS-Rec):
    #: workloads declared ``deep`` would exceed the device's DP nesting
    #: limit and are rejected before anything executes
    requires_shallow: bool = False
    #: canonical workload reference this app runs when none is requested
    #: (the paper's dataset for the benchmark); ``--workload`` spellings
    #: equal to this canonicalize onto ``None``, so the workload axis
    #: leaves every pre-existing cache key unchanged (DESIGN.md §12)
    default_workload: str = ""

    # -- sources -------------------------------------------------------------

    @abc.abstractmethod
    def annotated_source(self) -> str:
        """Basic-dp CUDA annotated with #pragma dp (Fig. 1 template)."""

    @abc.abstractmethod
    def flat_source(self) -> str:
        """Flat (no-dp) CUDA."""

    def variant_source(self, variant: str,
                       config: Optional[LaunchConfig] = None,
                       spec: DeviceSpec = K20C,
                       strategy: Optional[str] = None
                       ) -> tuple[str, Optional[ConsolidationReport]]:
        """Source text + consolidation report for a variant.

        ``strategy`` names a registered consolidation strategy; it is
        only meaningful with the ``consolidated`` variant (or, redundantly,
        with the matching per-granularity variant).
        """
        variant, strategy = canonicalize_variant(variant, strategy)
        if variant == TUNED:
            raise ValueError(
                "variant 'tuned' is resolved through the tuned-config "
                "registry, not compiled directly; use `repro run <app> "
                "tuned` or an ExperimentRunner with a tuned registry "
                "(see repro.tuning)")
        if variant == BASIC:
            return self.annotated_source(), None
        if variant == FLAT:
            return self.flat_source(), None
        if variant == CONS:
            # non-builtin (or pragma-default) strategy
            res = consolidate_source(self.annotated_source(),
                                     granularity=strategy,
                                     config=config, spec=spec)
            return res.source, res.report
        gran = CONSOLIDATED.get(variant)
        if gran is None:
            raise ValueError(f"unknown variant {variant!r}")
        res = consolidate_source(self.annotated_source(), granularity=gran,
                                 config=config, spec=spec)
        return res.source, res.report

    # -- dataset + driver ------------------------------------------------------

    def default_dataset(self, scale: float = 1.0):
        """The dataset the paper uses for this benchmark (scaled):
        :attr:`default_workload` materialized through the registry."""
        from ..workloads import materialize

        return materialize(self.default_workload, scale)

    @abc.abstractmethod
    def host_run(self, device: Device, program, dataset, variant: str) -> np.ndarray:
        """Upload, launch (loop as needed) and return the result array.

        Must work unchanged for BASIC and all consolidated variants (the
        transforms preserve the parent kernel interface); FLAT drivers may
        branch on ``variant``.
        """

    # -- verification -----------------------------------------------------------

    @abc.abstractmethod
    def reference(self, dataset) -> np.ndarray:
        """Ground-truth result computed with NumPy/SciPy."""

    def check(self, result: np.ndarray, dataset) -> bool:
        """Default check: exact match against the reference."""
        return np.array_equal(result, self.reference(dataset))

    # -- measured execution ------------------------------------------------------

    def run(self, variant, dataset=None, *, scale: float = 1.0,
            allocator: str = "custom", config: Optional[LaunchConfig] = None,
            spec: DeviceSpec = K20C, cost: CostModel = DEFAULT_COST_MODEL,
            heap_bytes: Optional[int] = None, verify: bool = True,
            threshold: Optional[int] = None,
            strategy: Optional[str] = None,
            backend: Optional[str] = None,
            oracle: Optional[str] = None) -> AppRun:
        """Execute one configuration on a fresh device and profile it.

        The first argument is either a variant name with the per-axis
        keywords below (the compatibility shim), or a unified
        :class:`repro.run_config.RunConfig` carrying every axis at once
        (the preferred spelling; per-axis keywords may not be combined
        with it).

        ``threshold`` overrides the app's work-delegation threshold for
        this run only (the ablation harness sweeps it); ``strategy``
        selects the consolidation strategy for the ``consolidated``
        variant; ``backend`` names a registered execution backend
        (:mod:`repro.backends`; ``None`` = the simulator); ``oracle``
        names a registered *exact* oracle (:mod:`repro.oracle`) deciding
        which functional engine runs (``None`` = the default). The
        returned :class:`AppRun` is plain picklable data, so the
        experiment runner can execute runs in worker processes and
        persist them in its on-disk result store.
        """
        from ..run_config import RunConfig

        trace_path = None
        profile_path = None
        if isinstance(variant, RunConfig):
            cfg = variant
            trace_path = cfg.trace
            profile_path = cfg.profile
            clashing = [name for name, value in (
                ("threshold", threshold), ("strategy", strategy),
                ("backend", backend), ("oracle", oracle),
            ) if value is not None]
            if clashing or allocator != "custom" or config is not None:
                clashing += ([] if allocator == "custom" else ["allocator"])
                clashing += ([] if config is None else ["config"])
                raise ValueError(
                    "a RunConfig already carries every axis; drop the "
                    f"per-axis keyword(s) {', '.join(clashing)}")
            variant, strategy = cfg.variant, cfg.strategy
            threshold, backend = cfg.threshold, cfg.backend
            oracle, allocator = cfg.oracle, cfg.allocator
            if cfg.config is not None:
                mode, blocks, threads = cfg.config
                config = LaunchConfig(mode=mode, blocks=blocks,
                                      threads=threads, spec=spec)
            if dataset is None and cfg.workload is not None:
                from ..workloads import materialize_for_app

                dataset = materialize_for_app(self, cfg.workload, scale)
        variant, strategy = canonicalize_variant(variant, strategy)
        engine = None
        if oracle is not None:
            from ..oracle import DEFAULT_ORACLE, get_oracle

            resolved = get_oracle(oracle)
            if not resolved.exact:
                raise ValueError(
                    f"oracle {resolved.name!r} is a learned approximation "
                    "and cannot execute runs; use it as a tuning "
                    "prefilter (`repro tune --oracle surrogate`)")
            engine = resolved.engine
            # record the canonical spelling (the default folds onto None)
            oracle = (None if resolved.name == DEFAULT_ORACLE
                      else resolved.name)
        if dataset is None:
            dataset = self.default_dataset(scale)
        from contextlib import ExitStack

        tracer = None
        collector = None
        with ExitStack() as stack:
            if trace_path is not None:
                # RunConfig(trace=...): a run-scoped tracer, written out
                # after the run. Purely observational — nothing below
                # reads it, so results and cache keys cannot shift.
                from ..telemetry import Tracer, tracing

                tracer = Tracer()
                stack.enter_context(tracing(tracer))
                stack.enter_context(span("app.run", app=self.key,
                                         variant=variant))
            if profile_path is not None:
                # RunConfig(profile=...): same never-perturb contract as
                # trace — the collector only observes the engines, and
                # the profile is written after the run completes.
                from ..perf import profiling

                collector = stack.enter_context(profiling())
            original_threshold = self.threshold
            if threshold is not None:
                self.threshold = threshold
            try:
                source, report = self.variant_source(
                    variant, config=config, spec=spec, strategy=strategy)
                if backend is None:
                    kwargs = ({} if heap_bytes is None
                              else {"heap_bytes": heap_bytes})
                    if engine is not None:
                        kwargs["engine"] = engine
                    device = Device(spec=spec, cost=cost, allocator=allocator,
                                    **kwargs)
                else:
                    from ..backends import get_backend

                    device = get_backend(backend).make_device(
                        spec=spec, cost=cost, allocator=allocator,
                        heap_bytes=heap_bytes, engine=engine)
                program = device.load(source)
                result = self.host_run(device, program, dataset, variant)
                metrics = device.synchronize()
            finally:
                self.threshold = original_threshold
            checked = False
            if verify:
                with span("app.verify", app=self.key):
                    good = self.check(result, dataset)
                if not good:
                    raise AssertionError(
                        f"{self.label} [{variant}] produced a wrong result "
                        f"on {getattr(dataset, 'name', dataset)}"
                    )
                checked = True
        if tracer is not None:
            from ..telemetry import write_chrome_trace

            write_chrome_trace(trace_path, tracer)
        if collector is not None:
            from ..perf.report import build_profile, write_profile

            write_profile(profile_path, build_profile(
                collector, label=f"{self.key} {variant}"))
        return AppRun(
            app=self.key, variant=variant,
            dataset=getattr(dataset, "name", str(dataset)),
            metrics=metrics, result=result, report=report, checked=checked,
            strategy=strategy, backend=backend, oracle=oracle,
        )


#: populated by repro.apps.__init__
REGISTRY: dict[str, App] = {}


def register(app_cls):
    """Class decorator: instantiate and register an App."""
    app = app_cls()
    if not app.key or not app.label:
        raise ValueError(f"{app_cls.__name__} must define key and label")
    if not app.default_workload:
        raise ValueError(
            f"{app_cls.__name__} must name a default_workload (a "
            "repro.workloads registry reference)")
    REGISTRY[app.key] = app
    return app_cls


def get_app(key: str) -> App:
    return REGISTRY[key]


def all_apps() -> list[App]:
    return [REGISTRY[k] for k in sorted(REGISTRY)]

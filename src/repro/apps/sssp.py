"""Single-Source Shortest Path (SSSP) — Fig. 1(b)'s running example.

Bellman-Ford-style relaxation over CSR (the Harish-Narayanan formulation
the paper cites): each thread owns a node and relaxes its outgoing edges;
nodes whose degree exceeds a threshold delegate the edge scan to a child
kernel (basic-dp) or, after consolidation, to a buffered work item.

Irregular-loop application; **solo-block** child (``<<<1, deg>>>``).
Dataset: CiteSeer-like. Result: integer distance array.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_graph

INF = 2**31 - 1

ANNOTATED = r"""
__global__ void sssp_child(int* row_ptr, int* col_idx, int* weights, int* dist,
                           int* changed, int u) {
    int du = dist[u];
    int beg = row_ptr[u];
    int deg = row_ptr[u + 1] - beg;
    int t = threadIdx.x;
    if (t < deg) {
        int v = col_idx[beg + t];
        int alt = du + weights[beg + t];
        int old = atomicMin(&dist[v], alt);
        if (alt < old) {
            changed[0] = 1;
        }
    }
}

__global__ void sssp_parent(int* row_ptr, int* col_idx, int* weights, int* dist,
                            int* changed, int n, int threshold) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int du = dist[u];
        if (du < INT_MAX) {
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            #pragma dp consldt(grid) buffer(type: custom) work(u)
            if (deg > threshold) {
                sssp_child<<<1, deg>>>(row_ptr, col_idx, weights, dist, changed, u);
            } else {
                for (int i = 0; i < deg; i++) {
                    int v = col_idx[beg + i];
                    int alt = du + weights[beg + i];
                    int old = atomicMin(&dist[v], alt);
                    if (alt < old) {
                        changed[0] = 1;
                    }
                }
            }
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void sssp_flat(int* row_ptr, int* col_idx, int* weights, int* dist,
                          int* changed, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int du = dist[u];
        if (du < INT_MAX) {
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            for (int i = 0; i < deg; i++) {
                int v = col_idx[beg + i];
                int alt = du + weights[beg + i];
                int old = atomicMin(&dist[v], alt);
                if (alt < old) {
                    changed[0] = 1;
                }
            }
        }
    }
}
"""


@register
class SSSPApp(App):
    key = "sssp"
    label = "SSSP"
    threshold = 8
    default_workload = "citeseer"
    source_node = 0
    max_iterations = 80

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def host_run(self, device, program, dataset, variant):
        g = dataset
        n = g.num_nodes
        row_ptr, col_idx, weights = upload_graph(device, g)
        dist0 = np.full(n, INF, dtype=np.int32)
        dist0[self.source_node] = 0
        dist = device.from_numpy("dist", dist0)
        changed = device.from_numpy("changed", np.zeros(1, dtype=np.int32))
        grid = blocks_for(n)
        for _ in range(self.max_iterations):
            changed.data[0] = 0
            if variant == FLAT:
                program.launch("sssp_flat", grid, 128, row_ptr, col_idx,
                               weights, dist, changed, n)
            else:
                program.launch("sssp_parent", grid, 128, row_ptr, col_idx,
                               weights, dist, changed, n, self.threshold)
            if changed.data[0] == 0:
                break
        return dist.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csgraph

        g = dataset
        n = g.num_nodes
        A = sp.csr_matrix(
            (g.weights.astype(np.float64), g.col_idx, g.row_ptr), shape=(n, n)
        )
        d = csgraph.dijkstra(A, indices=self.source_node)
        out = np.full(n, INF, dtype=np.int64)
        finite = np.isfinite(d)
        out[finite] = d[finite].astype(np.int64)
        return out.astype(np.int32)

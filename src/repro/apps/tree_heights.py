"""Tree Heights (TH) — parallel recursion over a tree.

Each kernel instance owns a node; one thread per child either recurses
(internal child) or records the leaf's depth with ``atomicMax`` — the tree
height is the deepest leaf level. This is the recursive tree traversal of
Fig. 1(c) with a reduction at the leaves.

The flat baseline is the level-synchronous sweep of [3]: every level
re-scans all n nodes and frontier nodes expand their children serially —
O(n * depth) total scans plus fanout-length divergent inner loops.

**Solo-block** recursive child (``<<<1, num_children>>>``). Datasets: the
paper's tree dataset1/dataset2 (scaled). Result: single-element height.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_tree

ANNOTATED = r"""
__global__ void th_rec(int* child_ptr, int* child_idx, int* height, int u,
                       int depth) {
    int beg = child_ptr[u];
    int deg = child_ptr[u + 1] - beg;
    int t = threadIdx.x;
    if (t < deg) {
        int c = child_idx[beg + t];
        int cdeg = child_ptr[c + 1] - child_ptr[c];
        #pragma dp consldt(grid) work(c)
        if (cdeg > 0) {
            th_rec<<<1, cdeg>>>(child_ptr, child_idx, height, c, depth + 1);
        } else {
            atomicMax(&height[0], depth + 1);
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void th_flat(int* depths, int* child_ptr, int* child_idx,
                        int* changed, int level, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (depths[u] == level) {
            int beg = child_ptr[u];
            int deg = child_ptr[u + 1] - beg;
            for (int i = 0; i < deg; i++) {
                depths[child_idx[beg + i]] = level + 1;
                changed[0] = 1;
            }
        }
    }
}

__global__ void th_reduce(int* depths, int* height, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        atomicMax(&height[0], depths[u]);
    }
}
"""


@register
class TreeHeightsApp(App):
    key = "th"
    label = "TH"
    has_delegation_guard = False
    kind = "tree"
    default_workload = "tree1"

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def host_run(self, device, program, dataset, variant):
        t = dataset
        n = t.num_nodes
        child_ptr, child_idx, _ = upload_tree(device, t)
        height = device.from_numpy("height", np.array([1], dtype=np.int32))
        if variant == FLAT:
            d0 = np.zeros(n, dtype=np.int32)
            d0[0] = 1
            depths = device.from_numpy("depths", d0)
            changed = device.from_numpy("changed", np.zeros(1, dtype=np.int32))
            grid = blocks_for(n)
            level = 1
            while True:
                changed.data[0] = 0
                program.launch("th_flat", grid, 128, depths, child_ptr,
                               child_idx, changed, level, n)
                level += 1
                if changed.data[0] == 0 or level > n:
                    break
            program.launch("th_reduce", grid, 128, depths, height, n)
        else:
            deg = t.num_children(0)
            if deg > 0:
                program.launch("th_rec", 1, deg, child_ptr, child_idx,
                               height, 0, 1)
        return height.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        return np.array([dataset.height()], dtype=np.int32)

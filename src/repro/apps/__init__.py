"""The paper's seven benchmark applications (§V).

Importing this package registers every app in :data:`repro.apps.REGISTRY`:

=========  =====================  ==================  =================
key        benchmark              pattern             child kind
=========  =====================  ==================  =================
sssp       SSSP                   irregular loop      solo block
spmv       SpMV                   irregular loop      solo block
pagerank   PageRank               irregular loop      solo block
gc         Graph Coloring         irregular loop      solo block
bfs_rec    Recursive BFS          parallel recursion  solo block
th         Tree Heights           parallel recursion  solo block
td         Tree Descendants       parallel recursion  solo thread
=========  =====================  ==================  =================
"""

from .common import (  # noqa: F401
    App,
    AppRun,
    BASIC,
    BLOCK,
    CONS,
    CONSOLIDATED,
    FLAT,
    GRID,
    REGISTRY,
    TUNED,
    VARIANT_FOR_STRATEGY,
    VARIANTS,
    WARP,
    all_apps,
    canonicalize_variant,
    get_app,
)

from . import sssp  # noqa: F401
from . import spmv  # noqa: F401
from . import pagerank  # noqa: F401
from . import graph_coloring  # noqa: F401
from . import bfs_rec  # noqa: F401
from . import tree_heights  # noqa: F401
from . import tree_descendants  # noqa: F401

"""Graph Coloring (GC) — Jones-Plassmann priority coloring.

Round ``r``: every uncolored node whose random priority beats all of its
uncolored neighbors' wins and takes color ``r``. The neighbor scan is the
irregular loop; high-degree nodes delegate it to a **solo-block** child kernel.
(The §IV.C multi-block child case is exercised by the transform unit
tests and ``examples/multiblock_consolidation.py``; with many small work
items a grid-cooperative per-item kernel is the wrong tool — and a
pathological interpreter workload.)

This benchmark also exercises the paper's *postwork* machinery: the parent
synchronizes on its children (``cudaDeviceSynchronize``) and then counts
round winners — under grid-level consolidation that postwork moves into a
compiler-generated consolidated postwork kernel launched by the last block.

Dataset: Kronecker-like. Result: the color array (deterministic for a
given priority assignment, so all variants must agree exactly).
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_graph

ANNOTATED = r"""
__global__ void gc_child(int* row_ptr, int* col_idx, int* colors, int* prio,
                         int* winner, int u) {
    int beg = row_ptr[u];
    int deg = row_ptr[u + 1] - beg;
    int pu = prio[u];
    int i = threadIdx.x;
    if (i < deg) {
        int v = col_idx[beg + i];
        if (colors[v] < 0) {
            if (prio[v] > pu || (prio[v] == pu && v > u)) {
                winner[u] = 0;
            }
        }
    }
}

__global__ void gc_parent(int* row_ptr, int* col_idx, int* colors, int* prio,
                          int* winner, int* nwin, int n, int threshold) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (colors[u] < 0) {
            winner[u] = 1;
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            int pu = prio[u];
            #pragma dp consldt(grid) work(u)
            if (deg > threshold) {
                gc_child<<<1, deg>>>(row_ptr, col_idx, colors, prio, winner, u);
            } else {
                for (int i = 0; i < deg; i++) {
                    int v = col_idx[beg + i];
                    if (colors[v] < 0) {
                        if (prio[v] > pu || (prio[v] == pu && v > u)) {
                            winner[u] = 0;
                        }
                    }
                }
            }
        } else {
            winner[u] = 0;
        }
    }
    cudaDeviceSynchronize();
    if (u < n) {
        if (winner[u] == 1) {
            atomicAdd(&nwin[0], 1);
        }
    }
}

__global__ void gc_commit(int* colors, int* winner, int round, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (winner[u] == 1) {
            colors[u] = round;
        }
    }
}
"""

FLAT_SRC = r"""
__global__ void gc_flat(int* row_ptr, int* col_idx, int* colors, int* prio,
                        int* winner, int* nwin, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (colors[u] < 0) {
            winner[u] = 1;
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            int pu = prio[u];
            for (int i = 0; i < deg; i++) {
                int v = col_idx[beg + i];
                if (colors[v] < 0) {
                    if (prio[v] > pu || (prio[v] == pu && v > u)) {
                        winner[u] = 0;
                    }
                }
            }
        } else {
            winner[u] = 0;
        }
        if (winner[u] == 1) {
            atomicAdd(&nwin[0], 1);
        }
    }
}

__global__ void gc_commit(int* colors, int* winner, int round, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (winner[u] == 1) {
            colors[u] = round;
        }
    }
}
"""


@register
class GraphColoringApp(App):
    key = "gc"
    label = "GC"
    threshold = 16
    requires_symmetric = True
    default_workload = "kron(seed=41)"
    max_rounds = 100

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def _priorities(self, n: int) -> np.ndarray:
        rng = np.random.default_rng(9)
        return rng.permutation(n).astype(np.int32)

    def host_run(self, device, program, dataset, variant):
        g = dataset
        n = g.num_nodes
        row_ptr, col_idx, _ = upload_graph(device, g)
        colors = device.from_numpy("colors", np.full(n, -1, dtype=np.int32))
        prio = device.from_numpy("prio", self._priorities(n))
        winner = device.from_numpy("winner", np.zeros(n, dtype=np.int32))
        nwin = device.from_numpy("nwin", np.zeros(1, dtype=np.int32))
        grid = blocks_for(n)
        for r in range(self.max_rounds):
            nwin.data[0] = 0
            if variant == FLAT:
                program.launch("gc_flat", grid, 128, row_ptr, col_idx, colors,
                               prio, winner, nwin, n)
            else:
                program.launch("gc_parent", grid, 128, row_ptr, col_idx,
                               colors, prio, winner, nwin, n, self.threshold)
            program.launch("gc_commit", grid, 128, colors, winner, r, n)
            if int(np.sum(colors.data < 0)) == 0:
                break
        return colors.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        g = dataset
        n = g.num_nodes
        prio = self._priorities(n)
        colors = np.full(n, -1, dtype=np.int32)
        for r in range(self.max_rounds):
            uncolored = np.nonzero(colors < 0)[0]
            if len(uncolored) == 0:
                break
            winners = []
            for u in uncolored:
                nbrs = g.neighbors(u)
                nbrs = nbrs[colors[nbrs] < 0]
                pu = prio[u]
                blocked = np.any(
                    (prio[nbrs] > pu) | ((prio[nbrs] == pu) & (nbrs > u))
                )
                if not blocked:
                    winners.append(u)
            colors[winners] = r
        return colors

    def check(self, result, dataset) -> bool:
        g = dataset
        if np.any(result < 0):
            return False
        # proper coloring: no edge joins two same-colored endpoints
        src = np.repeat(np.arange(g.num_nodes), np.diff(g.row_ptr))
        neq = src != g.col_idx
        if np.any(result[src[neq]] == result[g.col_idx[neq]]):
            return False
        # and the exact Jones-Plassmann fixpoint (deterministic)
        return np.array_equal(result, self.reference(dataset))

"""Tree Descendants (TD) — depth-weighted subtree aggregation.

Computes ``total = sum over nodes u of values[u] * depth(u)`` (root depth
1) by descending the tree recursively. The basic-dp port is the *worst
possible* DP shape and deliberately so: every node is processed by a
**solo-thread** kernel (``<<<1,1>>>``) that loops over its children and
launches one nested kernel per child — the launch count equals the node
count, which is why the paper's TD shows the largest basic-dp slowdowns
(the 3300x end of the range).

Exercises the §IV.C *solo thread* child case and launches inside a loop.
Datasets: tree dataset1/dataset2. Result: single-element sum.
"""

from __future__ import annotations

import numpy as np

from .common import App, FLAT, register
from .util import blocks_for, upload_tree

ANNOTATED = r"""
__global__ void td_rec(int* child_ptr, int* child_idx, int* values, int* total,
                       int u, int depth) {
    int beg = child_ptr[u];
    int deg = child_ptr[u + 1] - beg;
    atomicAdd(&total[0], values[u] * depth);
    #pragma dp consldt(grid) work(c)
    for (int i = 0; i < deg; i++) {
        int c = child_idx[beg + i];
        td_rec<<<1, 1>>>(child_ptr, child_idx, values, total, c, depth + 1);
    }
}
"""

FLAT_SRC = r"""
__global__ void td_levels(int* depths, int* child_ptr, int* child_idx,
                          int* changed, int level, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        if (depths[u] == level) {
            int beg = child_ptr[u];
            int deg = child_ptr[u + 1] - beg;
            for (int i = 0; i < deg; i++) {
                depths[child_idx[beg + i]] = level + 1;
                changed[0] = 1;
            }
        }
    }
}

__global__ void td_reduce(int* depths, int* values, int* total, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        atomicAdd(&total[0], values[u] * depths[u]);
    }
}
"""


@register
class TreeDescendantsApp(App):
    key = "td"
    label = "TD"
    has_delegation_guard = False
    kind = "tree"
    default_workload = "tree2"

    def annotated_source(self) -> str:
        return ANNOTATED

    def flat_source(self) -> str:
        return FLAT_SRC

    def host_run(self, device, program, dataset, variant):
        t = dataset
        n = t.num_nodes
        child_ptr, child_idx, values = upload_tree(device, t)
        total = device.from_numpy("total", np.zeros(1, dtype=np.int32))
        if variant == FLAT:
            d0 = np.zeros(n, dtype=np.int32)
            d0[0] = 1
            depths = device.from_numpy("depths", d0)
            changed = device.from_numpy("changed", np.zeros(1, dtype=np.int32))
            grid = blocks_for(n)
            level = 1
            while True:
                changed.data[0] = 0
                program.launch("td_levels", grid, 128, depths, child_ptr,
                               child_idx, changed, level, n)
                level += 1
                if changed.data[0] == 0 or level > n:
                    break
            program.launch("td_reduce", grid, 128, depths, values, total, n)
        else:
            program.launch("td_rec", 1, 1, child_ptr, child_idx, values,
                           total, 0, 1)
        return total.to_numpy()

    def reference(self, dataset) -> np.ndarray:
        t = dataset
        depths = t.node_depths() + 1  # root = depth 1
        return np.array([int(np.sum(t.values.astype(np.int64) * depths))],
                        dtype=np.int32)

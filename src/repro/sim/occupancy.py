"""Occupancy calculator and the paper's KC_X configuration rule.

§IV.E "Kernel Configuration Handling": the CUDA Occupancy Calculator gives
a configuration ``(B, T)`` that maximizes single-kernel occupancy; to let
``X`` kernels run concurrently, the paper *downgrades* it to
``(ceil(B/X), T)`` — called ``KC_X``. Defaults: KC_1 for grid-level,
KC_16 for block-level, KC_32 for warp-level consolidation.

Also provides the *1-1 mapping* configuration used as a baseline in
Fig. 6 (as many blocks — or threads, for thread-mapped children — as
buffered work items).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import DeviceSpec

#: default thread-block size for moldable consolidated kernels
DEFAULT_BLOCK_THREADS = 256

#: paper §IV.E defaults: granularity -> kernel-concurrency target X
#: (the built-in strategies; registry-defined strategies carry their own
#: ``kc_concurrency`` and are resolved through :func:`kc_for`)
KC_FOR_GRANULARITY = {"grid": 1, "block": 16, "warp": 32}


def kc_for(granularity: str) -> int:
    """Kernel-concurrency target ``X`` for a consolidation strategy.

    The strategy registry is the source of truth (imported lazily — the
    compiler depends on the simulator, not vice versa), so a builtin
    replaced via ``register_strategy(..., replace=True)`` carries its own
    ``kc_concurrency``; :data:`KC_FOR_GRANULARITY` is the fallback for
    names not currently registered."""
    from ..errors import TransformError

    try:
        from ..compiler.strategies import get_strategy

        return get_strategy(granularity).kc_concurrency
    except (ImportError, TransformError):
        return KC_FOR_GRANULARITY[granularity]


def blocks_per_sm(spec: DeviceSpec, threads_per_block: int) -> int:
    """Maximum co-resident blocks on one SM for a block size."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        return 0
    warps = math.ceil(threads_per_block / spec.warp_size)
    return min(
        spec.max_blocks_per_sm,
        spec.max_threads_per_sm // threads_per_block,
        spec.max_warps_per_sm // warps,
    )


def occupancy_config(spec: DeviceSpec, threads_per_block: int = DEFAULT_BLOCK_THREADS
                     ) -> tuple[int, int]:
    """The Occupancy-Calculator configuration ``(B, T)``: enough blocks to
    fill every SM to its co-residency limit."""
    per_sm = blocks_per_sm(spec, threads_per_block)
    if per_sm == 0:
        raise ValueError(
            f"block of {threads_per_block} threads exceeds device limit"
        )
    return per_sm * spec.num_sms, threads_per_block


def theoretical_occupancy(spec: DeviceSpec, threads_per_block: int) -> float:
    """Fraction of resident-warp slots used when one kernel fills the SM."""
    per_sm = blocks_per_sm(spec, threads_per_block)
    warps = math.ceil(threads_per_block / spec.warp_size)
    return per_sm * warps / spec.max_warps_per_sm


def kc_config(spec: DeviceSpec, concurrency: int,
              threads_per_block: int = DEFAULT_BLOCK_THREADS) -> tuple[int, int]:
    """``KC_X``: downgrade the occupancy config for X concurrent kernels."""
    if concurrency < 1:
        raise ValueError("kernel concurrency must be >= 1")
    full_blocks, threads = occupancy_config(spec, threads_per_block)
    return max(1, full_blocks // concurrency), threads


@dataclass(frozen=True)
class LaunchConfig:
    """A consolidated-kernel configuration choice.

    ``mode`` is one of:

    * ``"kc"``      — the paper's rule: KC_1/KC_16/KC_32 by granularity;
    * ``"one2one"`` — Fig. 6's *1-1 mapping* baseline (grid = item count,
      computed at runtime from the buffer size);
    * ``"explicit"``— fixed ``(blocks, threads)`` from pragma clauses or an
      exhaustive-search harness.
    """

    mode: str = "kc"
    blocks: int | None = None
    threads: int | None = None
    #: device spec used to resolve static configs (None -> K20C default)
    spec: DeviceSpec | None = None

    def resolve(self, spec: DeviceSpec, granularity: str) -> tuple[int | None, int]:
        """Return (blocks, threads); blocks None means runtime 1-1 grid."""
        threads = self.threads or DEFAULT_BLOCK_THREADS
        if self.mode == "explicit":
            if self.blocks is None:
                raise ValueError("explicit config requires blocks")
            return self.blocks, threads
        if self.mode == "one2one":
            return None, threads
        if self.mode == "kc":
            blocks, threads = kc_config(spec, kc_for(granularity), threads)
            return blocks, threads
        raise ValueError(f"unknown launch-config mode {self.mode!r}")


def exhaustive_candidates(spec: DeviceSpec) -> list[tuple[int, int]]:
    """The (B, T) grid searched by the Fig. 6 'exhaustive search' baseline."""
    candidates = []
    for threads in (32, 64, 128, 256, 512):
        full, _ = occupancy_config(spec, threads)
        for blocks in {1, 2, 4, 8, max(1, full // 32), max(1, full // 16),
                       max(1, full // 4), full}:
            candidates.append((blocks, threads))
    return sorted(set(candidates))

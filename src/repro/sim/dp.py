"""Dynamic-parallelism device runtime: consolidation buffers, the custom
global barrier, and launch bookkeeping.

This module implements the *device-side runtime library* that the paper's
generated code links against (§IV.E "Consolidation Buffers", "Global
Barrier Synchronization on GPU"). Generated kernels reach it through
``__dp_*`` intrinsics (INTR events); each intrinsic has functional
semantics plus a cycle/traffic price.

Buffer model
------------
A consolidation buffer is a slot array in *device-heap* global memory
(allocated through the pluggable allocator — this is exactly what Fig. 5
measures) plus an insertion count. Work items are tuples of up to 4
integers (the paper buffers "indexes or pointers"). Scope:

* warp-level:  one buffer per (kernel instance, block, warp)
* block-level: one buffer per (kernel instance, block)
* grid-level:  one buffer per kernel instance

The first thread of the scope to call ``__dp_buf_acquire`` allocates; the
paper sizes buffers with the ``perBufferSize`` prediction and we do the
same, but a push beyond capacity *grows* the buffer (charging a realloc
penalty and counting an ``overflows`` stat) instead of corrupting memory —
a deliberate robustness deviation recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .memory import DeviceArray, GlobalMemory

GRAN_WARP = 0
GRAN_BLOCK = 1
GRAN_GRID = 2

GRAN_NAMES = {GRAN_WARP: "warp", GRAN_BLOCK: "block", GRAN_GRID: "grid"}
GRAN_CODES = {v: k for k, v in GRAN_NAMES.items()}

_ITEM_BYTES = 8  # work-item fields are 64-bit (indexes or pointers)


@dataclass
class ConsolidationBuffer:
    handle: int
    nvars: int
    capacity: int  # slots
    storage: DeviceArray
    #: buffer scope code (GRAN_WARP/GRAN_BLOCK/GRAN_GRID) — drives the
    #: per-scope push-contention price and the per-scope stats
    gran: int = GRAN_BLOCK
    count: int = 0
    overflows: int = 0


@dataclass
class DPStats:
    """Counters the profiler reads after a run."""

    device_launches: int = 0
    host_launches: int = 0
    buffers_acquired: int = 0
    pushes: int = 0
    buffer_grows: int = 0
    barrier_arrivals: int = 0
    max_depth: int = 0
    #: scope name ('warp'/'block'/'grid') -> push count; shows which
    #: granularity's buffers carried the run's delegated work
    pushes_by_scope: dict = field(default_factory=dict)
    #: scope name -> buffers acquired (warp-level acquires many small
    #: buffers, grid-level exactly one per kernel instance)
    buffers_by_scope: dict = field(default_factory=dict)


class DPRuntime:
    """Owns buffers, the grid barrier and launch bookkeeping for one device."""

    def __init__(self, spec, cost, memory: GlobalMemory, memsys, allocator):
        self.spec = spec
        self.cost = cost
        self.memory = memory
        self.memsys = memsys
        self.allocator = allocator
        self.buffers: dict[int, ConsolidationBuffer] = {}
        self._scope_handles: dict[tuple, int] = {}
        self._barrier_counters: dict[int, int] = {}
        self._next_handle = 1
        self.stats = DPStats()
        #: deep-profiling collector (:mod:`repro.perf.collect`); wired by
        #: the Device when profiling is active, else None. Observational
        #: only: it receives the cycle prices computed above, after the
        #: fact, and never alters them.
        self.profiler = None

    # ------------------------------------------------------------ buffers

    def _alloc_storage(self, slots: int, nvars: int, handle: int) -> DeviceArray:
        nbytes = max(1, slots) * nvars * _ITEM_BYTES
        addr = self.allocator.alloc(nbytes)
        return self.memory.bind_heap_array(f"__dp_buf{handle}", "i8",
                                           max(1, slots) * nvars, addr)

    def acquire(self, inst, ctx, gran: int, slots: int, nvars: int) -> tuple[int, int]:
        """Return (handle, cycles). Allocates on first call per scope."""
        if gran == GRAN_WARP:
            key = (inst.uid, ctx.bx, ctx.warp_id)
        elif gran == GRAN_BLOCK:
            key = (inst.uid, ctx.bx)
        elif gran == GRAN_GRID:
            key = (inst.uid,)
        else:
            raise SimulationError(f"bad consolidation granularity code {gran}")
        handle = self._scope_handles.get(key)
        if handle is not None:
            return handle, 2
        handle = self._next_handle
        self._next_handle += 1
        slots = max(1, int(slots))
        nvars = max(1, int(nvars))
        # price includes the heap-lock convoy behind earlier allocations
        cycles = self.allocator.charge_cycles()
        storage = self._alloc_storage(slots, nvars, handle)
        self.buffers[handle] = ConsolidationBuffer(handle, nvars, slots,
                                                   storage, gran=gran)
        self._scope_handles[key] = handle
        self.stats.buffers_acquired += 1
        scope = GRAN_NAMES[gran]
        self.stats.buffers_by_scope[scope] = \
            self.stats.buffers_by_scope.get(scope, 0) + 1
        if self.profiler is not None:
            self.profiler.record_acquire(scope, cycles)
        return handle, cycles

    def _push_conflict(self, gran: int) -> int:
        """Expected insertion-counter contention for one push: the wider
        the buffer scope, the more threads race on the shared counter
        (the buffering half of the granularity trade-off)."""
        if gran == GRAN_WARP:
            return self.cost.push_conflict_warp
        if gran == GRAN_BLOCK:
            return self.cost.push_conflict_block
        return self.cost.push_conflict_grid

    def _buffer(self, handle: int) -> ConsolidationBuffer:
        buf = self.buffers.get(int(handle))
        if buf is None:
            raise SimulationError(f"use of invalid consolidation buffer handle "
                                  f"{handle!r}")
        return buf

    def push(self, handle: int, values: tuple) -> tuple[int, int]:
        """Append one work item; returns (slot, cycles)."""
        buf = self._buffer(handle)
        if len(values) != buf.nvars:
            raise SimulationError(
                f"buffer {handle}: push of {len(values)} fields into a "
                f"{buf.nvars}-field buffer"
            )
        slot = buf.count
        cycles = (self.cost.atomic_cycles * self._push_conflict(buf.gran)
                  + self.cost.buffer_push_cycles)
        if slot >= buf.capacity:
            cycles += self._grow(buf)
        base = slot * buf.nvars
        data = buf.storage.data
        for f, v in enumerate(values):
            data[base + f] = int(v)
        buf.count = slot + 1
        self.stats.pushes += 1
        scope = GRAN_NAMES[buf.gran]
        self.stats.pushes_by_scope[scope] = \
            self.stats.pushes_by_scope.get(scope, 0) + 1
        # price the stores (and the count atomic) through the memory system
        seg_bytes = self.spec.dram_segment_bytes
        addr0 = buf.storage.addr_of(base)
        addr1 = buf.storage.addr_of(base + buf.nvars - 1) + _ITEM_BYTES - 1
        segments = set(range(addr0 // seg_bytes, addr1 // seg_bytes + 1))
        cycles += self.memsys.access_segments(segments)
        if self.profiler is not None:
            self.profiler.record_push(scope, 1, cycles)
        return slot, cycles

    # ------------------------------------------------- batched entry points
    #
    # Used by the vectorized engine for uniform warp rounds (every live
    # lane pushing into / reading from one buffer). Each returns
    # ``(values, total_cycles)`` with state, stats and per-operation L2
    # pricing identical to the equivalent sequence of scalar calls, or
    # ``None`` when an edge case (grow, bounds violation, field-count
    # mismatch, integer overflow) should take the scalar path instead —
    # keeping error semantics and the grow/realloc accounting in exactly
    # one place.

    def push_many(self, handle: int, rows: list):
        """Batched :meth:`push`: one store + one stats update for the
        whole round, per-push L2 pricing preserved in order."""
        buf = self.buffers.get(int(handle))
        if buf is None:
            return None
        nvars = buf.nvars
        for row in rows:
            if len(row) != nvars:
                return None
        k = len(rows)
        slot0 = buf.count
        if slot0 + k > buf.capacity:
            return None  # growing mid-batch: scalar push handles it
        try:
            values = np.asarray([int(v) for row in rows for v in row],
                                dtype=buf.storage.data.dtype)
        except (OverflowError, ValueError, TypeError):
            return None
        base0 = slot0 * nvars
        buf.storage.data[base0: base0 + k * nvars] = values
        buf.count = slot0 + k
        self.stats.pushes += k
        scope = GRAN_NAMES[buf.gran]
        self.stats.pushes_by_scope[scope] = \
            self.stats.pushes_by_scope.get(scope, 0) + k
        per_push = (self.cost.atomic_cycles * self._push_conflict(buf.gran)
                    + self.cost.buffer_push_cycles)
        seg_bytes = self.spec.dram_segment_bytes
        row_bytes = nvars * _ITEM_BYTES
        addr0 = buf.storage.addr_of(base0) + np.arange(k) * row_bytes
        seg_lo = addr0 // seg_bytes
        seg_hi = (addr0 + row_bytes - 1) // seg_bytes
        total = k * per_push
        probe = self.memsys.l2.probe
        counters = self.memsys.counters
        hit_cycles = self.cost.l2_hit_cycles
        miss_cycles = self.cost.dram_transaction_cycles
        # same per-segment probes, counters and L2 state as one
        # access_segments({seg}) call per push, minus the call overhead
        for lo, hi in zip(seg_lo.tolist(), seg_hi.tolist()):
            for seg in range(lo, hi + 1):
                if probe(seg):
                    counters.l2_hits += 1
                    total += hit_cycles
                else:
                    counters.l2_misses += 1
                    counters.dram_transactions += 1
                    total += miss_cycles
        if self.profiler is not None:
            self.profiler.record_push(scope, k, total)
        return list(range(slot0, slot0 + k)), total

    def get_many(self, handle: int, slots: list, flds: list):
        """Batched :meth:`get`: one gather, per-read L2 pricing in order."""
        buf = self.buffers.get(int(handle))
        if buf is None:
            return None
        try:
            pos = (np.asarray(slots, dtype=np.int64) * buf.nvars
                   + np.asarray(flds, dtype=np.int64))
            slot_arr = np.asarray(slots, dtype=np.int64)
        except (OverflowError, ValueError, TypeError):
            return None
        if len(slots) and (int(slot_arr.min()) < 0
                           or int(slot_arr.max()) >= buf.count):
            return None  # scalar get raises the bounds error
        values = buf.storage.data[pos].tolist()
        seg_bytes = self.spec.dram_segment_bytes
        segs = (buf.storage.base_addr + pos * _ITEM_BYTES) // seg_bytes
        total = 0
        probe = self.memsys.l2.probe
        counters = self.memsys.counters
        hit_cycles = self.cost.l2_hit_cycles
        miss_cycles = self.cost.dram_transaction_cycles
        for seg in segs.tolist():
            if probe(seg):
                counters.l2_hits += 1
                total += hit_cycles
            else:
                counters.l2_misses += 1
                counters.dram_transactions += 1
                total += miss_cycles
        if self.profiler is not None:
            self.profiler.record_pop(len(values), total)
        return values, total

    def size_many(self, handle: int, k: int):
        """Batched :meth:`size`: the count is unchanged across the round."""
        buf = self.buffers.get(int(handle))
        if buf is None:
            return None
        return [buf.count] * k, k * self.cost.l2_hit_cycles

    def _grow(self, buf: ConsolidationBuffer) -> int:
        """Double the buffer capacity; returns the cycle penalty."""
        new_capacity = max(4, buf.capacity * 2)
        new_storage = self._alloc_storage(new_capacity, buf.nvars, buf.handle)
        new_storage.data[: buf.count * buf.nvars] = \
            buf.storage.data[: buf.count * buf.nvars]
        try:
            self.allocator.free(buf.storage.base_addr)
        except Exception:
            pass  # pool allocator reclaims wholesale
        buf.storage = new_storage
        buf.capacity = new_capacity
        buf.overflows += 1
        self.stats.buffer_grows += 1
        # copy traffic: count * nvars * 8 bytes read+write
        nbytes = buf.count * buf.nvars * _ITEM_BYTES
        transactions = 2 * max(1, nbytes // self.spec.dram_segment_bytes)
        self.memsys.charge_overhead("buffer-grow", transactions)
        return self.allocator.op_cycles + transactions * 2

    def size(self, handle: int) -> tuple[int, int]:
        buf = self._buffer(handle)
        return buf.count, self.cost.l2_hit_cycles

    def get(self, handle: int, slot: int, fld: int) -> tuple[int, int]:
        buf = self._buffer(handle)
        if not 0 <= slot < buf.count:
            raise SimulationError(
                f"buffer {handle}: read of slot {slot} (count {buf.count})"
            )
        value = int(buf.storage.data[slot * buf.nvars + fld])
        seg = buf.storage.addr_of(slot * buf.nvars + fld) // self.spec.dram_segment_bytes
        cycles = self.memsys.access_segments({seg})
        if self.profiler is not None:
            self.profiler.record_pop(1, cycles)
        return value, cycles

    def reset(self, handle: int) -> tuple[None, int]:
        buf = self._buffer(handle)
        buf.count = 0
        return None, self.cost.l2_hit_cycles

    # ------------------------------------------------------- grid barrier

    def grid_arrive_last(self, inst, ctx) -> tuple[int, int]:
        """Exit-style global barrier (§IV.E): atomically count block
        arrivals; only the *last* block of the grid sees 1."""
        remaining = self._barrier_counters.get(inst.uid)
        if remaining is None:
            remaining = inst.grid
        remaining -= 1
        self._barrier_counters[inst.uid] = remaining
        self.stats.barrier_arrivals += 1
        if remaining < 0:
            raise SimulationError(
                f"grid barrier of kernel {inst.name}: more arrivals than blocks"
            )
        return (1 if remaining == 0 else 0), self.cost.global_barrier_cycles

    # --------------------------------------------------------- intrinsics

    def handle_intrinsic(self, name: str, args: tuple, inst, ctx):
        if name == "buf_push1" or name == "buf_push2" or name == "buf_push3" \
                or name == "buf_push4":
            return self.push(args[0], args[1:])
        if name == "buf_get":
            return self.get(args[0], args[1], args[2])
        if name == "buf_size":
            return self.size(args[0])
        if name == "buf_acquire":
            return self.acquire(inst, ctx, args[0], args[1], args[2])
        if name == "buf_reset":
            return self.reset(args[0])
        if name == "grid_arrive_last":
            return self.grid_arrive_last(inst, ctx)
        raise SimulationError(f"unknown __dp intrinsic {name!r}")

    # ------------------------------------------------------------- resets

    def reset_run(self) -> None:
        """Clear per-run state (buffers, barrier counters, stats)."""
        self.buffers.clear()
        self._scope_handles.clear()
        self._barrier_counters.clear()
        self.allocator.reset()
        self.stats = DPStats()

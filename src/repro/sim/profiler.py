"""Run metrics: the simulator's analogue of the NVIDIA Visual Profiler.

:class:`RunMetrics` carries exactly the quantities the paper's evaluation
plots: elapsed cycles (Figs. 5-7 speedups), child-kernel launch counts and
warp execution efficiency (Fig. 8), achieved SM occupancy (Fig. 9), and
DRAM transactions with an overhead breakdown (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import KernelInstance
from .timing import TimingResult


@dataclass
class RunMetrics:
    #: end-to-end device makespan in cycles (performance metric)
    cycles: float = 0.0
    host_launches: int = 0
    #: child kernels launched from the device (the Fig. 8 annotation)
    device_launches: int = 0
    kernel_instances: int = 0
    #: ratio of active lanes to warp width over all executed warp-steps
    warp_execution_efficiency: float = 0.0
    #: time-weighted resident warps / warp slots (Fig. 9)
    achieved_occupancy: float = 0.0
    avg_active_kernels: float = 0.0
    dram_transactions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    #: DRAM transactions by overhead source ('launch-params', 'swap', ...)
    overhead_transactions: dict = field(default_factory=dict)
    max_pending_kernels: int = 0
    virtual_pool_kernels: int = 0
    parent_swaps: int = 0
    #: consolidation-runtime counters
    buffers_acquired: int = 0
    buffer_pushes: int = 0
    buffer_grows: int = 0
    #: buffer scope name -> pushes / buffers (the strategy axis: warp-level
    #: runs show many buffers with few pushes each, grid-level one buffer)
    buffer_pushes_by_scope: dict = field(default_factory=dict)
    buffers_by_scope: dict = field(default_factory=dict)
    #: warp-cycles lost waiting at __syncthreads for the slowest warp of
    #: a block — the load-imbalance cost of block-wide aggregation
    #: barriers (summed over all executed blocks; measured, not charged)
    barrier_stall_cycles: int = 0
    #: allocator counters
    allocator_kind: str = ""
    allocator_allocs: int = 0
    allocator_cycles: int = 0
    allocator_peak_bytes: int = 0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """Baseline cycles / our cycles (how the paper reports Figs. 5-7)."""
        if self.cycles == 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        lines = [
            f"cycles                 : {self.cycles:,.0f}",
            f"kernel launches        : host={self.host_launches} "
            f"device={self.device_launches}",
            f"warp exec efficiency   : {self.warp_execution_efficiency:.1%}",
            f"achieved occupancy     : {self.achieved_occupancy:.1%}",
            f"DRAM transactions      : {self.dram_transactions:,}"
            f" (overhead: {sum(self.overhead_transactions.values()):,})",
            f"L2 hit rate            : {self.l2_hit_rate:.1%}",
            f"pending pool           : max={self.max_pending_kernels} "
            f"virtualized={self.virtual_pool_kernels}",
            f"parent swaps           : {self.parent_swaps}",
            f"barrier stall cycles   : {self.barrier_stall_cycles:,}",
            f"allocator[{self.allocator_kind}]  : allocs={self.allocator_allocs} "
            f"cycles={self.allocator_cycles:,}",
        ]
        return "\n".join(lines)


def instance_trace_stats(inst: KernelInstance) -> dict:
    """Summed :class:`~repro.sim.engine.BlockTrace` statistics for one
    kernel instance — the trace-derived half of the deep profiler's
    per-kernel attribution (:mod:`repro.perf.report`); the counter half
    comes from the run-time collector."""
    cycles = 0
    warp_steps = 0
    active_lane_steps = 0
    barrier_stall = 0
    launches = 0
    for trace in inst.blocks:
        cycles += trace.cycles
        warp_steps += trace.warp_steps
        active_lane_steps += trace.active_lane_steps
        barrier_stall += trace.barrier_stall_cycles
        launches += len(trace.launches)
    return {
        "busy_cycles": cycles,
        "warp_steps": warp_steps,
        "active_lane_steps": active_lane_steps,
        "barrier_stall_cycles": barrier_stall,
        "launches": launches,
    }


def collect_metrics(roots: list[KernelInstance], timing: TimingResult,
                    memsys, dp_stats, allocator) -> RunMetrics:
    """Fuse engine traces, timing results and runtime counters."""
    warp_steps = 0
    active_steps = 0
    instances = 0
    barrier_stall = 0
    for root in roots:
        for inst in root.subtree():
            instances += 1
            for trace in inst.blocks:
                warp_steps += trace.warp_steps
                active_steps += trace.active_lane_steps
                barrier_stall += trace.barrier_stall_cycles
    wee = active_steps / (warp_steps * 32) if warp_steps else 0.0
    counters = memsys.counters
    return RunMetrics(
        cycles=timing.makespan,
        host_launches=dp_stats.host_launches,
        device_launches=dp_stats.device_launches,
        kernel_instances=instances,
        warp_execution_efficiency=wee,
        achieved_occupancy=timing.achieved_occupancy,
        avg_active_kernels=timing.avg_active_kernels,
        dram_transactions=counters.dram_transactions,
        l2_hits=counters.l2_hits,
        l2_misses=counters.l2_misses,
        overhead_transactions=dict(counters.overhead),
        max_pending_kernels=timing.max_pending,
        virtual_pool_kernels=timing.virtual_pool_kernels,
        parent_swaps=timing.swaps,
        buffers_acquired=dp_stats.buffers_acquired,
        buffer_pushes=dp_stats.pushes,
        buffer_grows=dp_stats.buffer_grows,
        buffer_pushes_by_scope=dict(dp_stats.pushes_by_scope),
        buffers_by_scope=dict(dp_stats.buffers_by_scope),
        barrier_stall_cycles=barrier_stall,
        allocator_kind=allocator.kind,
        allocator_allocs=allocator.stats.allocs,
        allocator_cycles=allocator.stats.cycles,
        allocator_peak_bytes=allocator.stats.peak_bytes,
    )

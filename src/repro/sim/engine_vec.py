"""Vectorized SIMT engine: batched warp-round bookkeeping.

:class:`VectorizedEngine` executes the *same* canonical schedule as
:class:`~repro.sim.engine.FunctionalEngine` (blocks sequential, warps to
their blocking point in index order, lanes in lockstep rounds) but
replaces the per-lane Python bookkeeping of the hot round loop with
NumPy array operations, the way PR 4 vectorized ``kron_like``:
byte-identical outputs, measured speedup (``benchmarks/bench_sim_engine.py``).

Equivalence argument (DESIGN.md §15 carries the long form):

1. **Gather-then-process.** The scalar engine interleaves "advance lane
   *i* to its next yield" with "apply lane *i*'s event". This engine
   first advances *every* live lane (gather), then applies the gathered
   events in lane order. The two are equivalent because kernel code
   between yields cannot observe event effects: generated kernels touch
   global arrays, consolidation buffers and launch state **only through
   yielded events**; the only state they read inline (shared-memory
   lists, the per-thread cycle accumulator ``ctx.c``) is never written
   by event processing. Applying events in lane order preserves every
   same-round cross-lane dependency (a lane-0 store feeding a lane-1
   load, atomic read-modify-write chains on one address).

2. **Uniform-round fast paths.** Once gathered, a round whose events are
   all loads from one array (or all stores, or all pushes into one
   consolidation buffer — the common lockstep case) is processed as one
   array operation. Batch loads read ``data[idx].tolist()`` — the same
   Python scalars as per-element ``.item()``; batch stores rely on
   NumPy's last-write-wins for duplicate fancy indices, which matches
   lane order; conversion errors (C wraparound) and bounds violations
   fall back to the sequential path so error semantics stay identical.

3. **Order-preserving coalescing.** ``coalesce_round`` returns a
   ``set`` whose iteration order feeds the *stateful* LRU L2 — so the
   batched paths compute first/last segment ids with NumPy but insert
   them into the set in exactly the scalar access order, making the L2
   probe sequence (and therefore every later hit/miss) identical.

Rounds that are divergent (mixed opcodes), touch several arrays, or hit
an edge case (bounds violation, integer overflow, buffer grow) take the
sequential path, which is a line-for-line copy of the scalar engine's
event handling.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .engine import (
    FunctionalEngine, LaunchRecord, _AT_BARRIER, _AT_WARP_BARRIER, _DONE,
    _RUNNING, coalesce_round,
)
from .events import ATOM, DEVSYNC, INTR, LAUNCH, LD, ST, SYNC, WSYNC

#: below this many events a round is processed sequentially — NumPy
#: call overhead beats the saving on tiny arrays (purely a performance
#: cutoff; both paths are exact)
_MIN_BATCH = 4

#: intrinsic names batched when a round is uniform over one buffer
_PUSH_NAMES = ("buf_push1", "buf_push2", "buf_push3", "buf_push4")


def segment_probe_order(addrs, itemsize, seg_bytes):
    """The scalar engine's coalesced segment set for one round, from an
    address array.

    The L2 is a stateful LRU probed in set-iteration order, and a
    Python set's layout depends on its insertion sequence — so this
    must insert exactly the ids :func:`coalesce_round` inserts, in
    first-occurrence order (each access's first segment, then its
    straddle id). Re-inserting a present element never changes the
    layout, so deduplicating to first occurrences beforehand (the
    interleave + stable-unique below) builds the identical set without
    the scalar per-access loop. Shared by the engine's batched round
    paths and the engine bench's slice replay.
    """
    firsts = addrs // seg_bytes
    lasts = (addrs + (itemsize - 1)) // seg_bytes
    if firsts.shape[0] <= 64:
        # warp-sized rounds: the plain loop beats unique's sort setup
        # (purely a performance cutoff; both branches build the same set)
        segments: set[int] = set()
        add = segments.add
        for f, last in zip(firsts.tolist(), lasts.tolist()):
            add(f)
            if last != f:
                add(last)
        return segments
    interleaved = np.empty(2 * firsts.shape[0], dtype=np.int64)
    interleaved[0::2] = firsts
    interleaved[1::2] = lasts
    _, first_pos = np.unique(interleaved, return_index=True)
    ordered = interleaved[np.sort(first_pos)]
    out: set[int] = set()
    add = out.add
    for seg in ordered.tolist():
        add(seg)
    return out

#: atomic ops batched when a round is uniform, one-array and
#: duplicate-free (CAS claim chains stay sequential)
_BATCH_ATOMIC_OPS = frozenset(("add", "sub", "min", "max", "exch",
                               "or", "and"))


class VectorizedEngine(FunctionalEngine):
    """Drop-in engine with batched round bookkeeping.

    ``dp`` (optional) is the device's :class:`~repro.sim.dp.DPRuntime`;
    when provided *and* it owns ``intrinsic_handler``, uniform intrinsic
    rounds (consolidation-buffer pushes/reads/sizes) are batched through
    :meth:`~repro.sim.dp.DPRuntime.push_many` and friends.
    """

    def __init__(self, spec, cost, memory_system, kernels, intrinsic_handler,
                 on_launch, dp=None):
        super().__init__(spec, cost, memory_system, kernels,
                         intrinsic_handler, on_launch)
        # batch intrinsics only when the handler really is this runtime's
        # (a custom handler could observe per-call ordering we'd elide)
        self._dp = dp if (
            dp is not None
            and getattr(intrinsic_handler, "__self__", None) is dp
        ) else None

    # ------------------------------------------------------------ round loop

    def _run_warp(self, warp, inst, trace, block_pending) -> str:
        states = warp.states
        threads = warp.threads
        pending = warp.pending
        ctxs = warp.ctxs
        mem = self.mem
        cost = self.cost
        seg_bytes = self.spec.dram_segment_bytes
        prof = self.profiler
        made_progress = False

        # the live-lane list changes only when a lane's state does (done,
        # barrier arrival, reconvergence) — keep it across rounds instead
        # of rescanning states every round like the scalar engine
        live: list = None
        while True:
            if live is None:
                live = [i for i, st in enumerate(states) if st == _RUNNING]
            if not live:
                released = False
                for i, st in enumerate(states):
                    if st == _AT_WARP_BARRIER:
                        states[i] = _RUNNING
                        released = True
                if released:
                    made_progress = True
                    live = None
                    continue
                if any(st == _AT_BARRIER for st in states):
                    return "barrier" if not made_progress else "progress"
                return "done"

            # --- gather: advance every live lane to its next event --------
            lanes: list[int] = []
            events: list[tuple] = []
            add_lane = lanes.append
            add_event = events.append
            dirty = False
            op0 = -1  # -1: unset, -2: mixed opcodes
            for i in live:
                try:
                    ev = threads[i].send(pending[i])
                except StopIteration:
                    states[i] = _DONE
                    dirty = True
                    continue
                pending[i] = None
                add_lane(i)
                add_event(ev)
                op = ev[0]
                if op != op0 and op0 != -2:
                    op0 = op if op0 == -1 else -2
            active = len(lanes)
            if active == 0:
                # all live lanes hit a barrier simultaneously or finished
                live = None
                continue
            made_progress = True
            if prof is not None:
                ctr = mem.counters
                dram0 = ctr.dram_transactions
                hits0 = ctr.l2_hits
                miss0 = ctr.l2_misses

            # --- process: batched when the round is uniform ---------------
            segments = None
            atomics: dict[int, int] = {}
            extra_cycles = 0
            extra_steps = 0
            devsync_requested = False
            processed = False
            if active >= _MIN_BATCH:
                if op0 == LD:
                    segments = self._batch_loads(lanes, events, pending,
                                                 seg_bytes)
                    processed = segments is not None
                elif op0 == ST:
                    segments = self._batch_stores(events, seg_bytes)
                    processed = segments is not None
                elif op0 == INTR and self._dp is not None:
                    cycles = self._batch_intrinsics(lanes, events, pending)
                    if cycles is not None:
                        extra_cycles += cycles
                        processed = True
                elif op0 == ATOM:
                    segments = self._batch_atomics(lanes, events, pending,
                                                   seg_bytes)
                    if segments is not None:
                        # every address distinct: worst conflict degree 1
                        atomics = {0: 1}
                        processed = True
            if not processed:
                accesses: list[tuple[int, int]] = []
                for i, ev in zip(lanes, events):
                    op = ev[0]
                    if op == LD:
                        arr = ev[1]
                        idx = ev[2]
                        pending[i] = arr.load(idx)
                        accesses.append((arr.addr_of(idx), arr.itemsize))
                    elif op == ST:
                        arr = ev[1]
                        idx = ev[2]
                        arr.store(idx, ev[3])
                        accesses.append((arr.addr_of(idx), arr.itemsize))
                    elif op == ATOM:
                        pending[i] = self._do_atomic(ev)
                        addr = ev[2].addr_of(ev[3])
                        atomics[addr] = atomics.get(addr, 0) + 1
                        accesses.append((addr, ev[2].itemsize))
                    elif op == SYNC:
                        states[i] = _AT_BARRIER
                        dirty = True
                    elif op == WSYNC:
                        states[i] = _AT_WARP_BARRIER
                        dirty = True
                    elif op == LAUNCH:
                        child = self.on_launch(inst, ev[1], ev[2], ev[3],
                                               ev[4])
                        block_pending.append(child)
                        trace.launches.append(LaunchRecord(
                            segment=len(trace.segments),
                            offset_cycles=warp.cycles,
                            child=child,
                        ))
                        extra_cycles += (cost.launch_uops
                                         * cost.cycles_per_warp_step)
                        extra_steps += cost.launch_uops
                    elif op == DEVSYNC:
                        devsync_requested = True
                    elif op == INTR:
                        value, cycles = self.intrinsic_handler(
                            ev[1], ev[2], inst, ctxs[i])
                        pending[i] = value
                        extra_cycles += cycles
                    else:  # pragma: no cover - defensive
                        raise SimulationError(f"unknown event opcode {op}")
                if accesses:
                    segments = coalesce_round(accesses, seg_bytes)

            # --- price the round ------------------------------------------
            round_cycles = cost.cycles_per_warp_step
            if segments:
                round_cycles += mem.access_segments(segments)
            if atomics:
                worst_conflict = max(atomics.values())
                round_cycles += cost.atomic_cycles * worst_conflict
            lane_extra = 0
            for i in live:
                c = ctxs[i].c
                if c:
                    if c > lane_extra:
                        lane_extra = c
                    ctxs[i].c = 0
            warp.cycles += round_cycles + extra_cycles + lane_extra
            warp.steps += 1 + extra_steps
            warp.active_steps += active + extra_steps
            if prof is not None:
                prof.record_round(op0, active,
                                  ctr.dram_transactions - dram0,
                                  ctr.l2_hits - hits0,
                                  ctr.l2_misses - miss0, processed)
            if dirty:
                live = None
            if devsync_requested:
                return "devsync"

    # ------------------------------------------------------------ fast paths

    @staticmethod
    def _round_indices(events):
        """(idx array, shared DeviceArray) for a one-array uniform round,
        else (None, None) — triggering the sequential fallback."""
        arr = events[0][1]
        for ev in events:
            if ev[1] is not arr:
                return None, None
        try:
            idxs = np.fromiter((ev[2] for ev in events), dtype=np.int64,
                               count=len(events))
        except (TypeError, ValueError, OverflowError):
            return None, None
        return idxs, arr

    @staticmethod
    def _segment_set(addrs, itemsize, seg_bytes):
        return segment_probe_order(addrs, itemsize, seg_bytes)

    def _batch_loads(self, lanes, events, pending, seg_bytes):
        idxs, arr = self._round_indices(events)
        if idxs is None:
            return None
        i_arr = idxs + arr.offset
        data = arr.data
        if int(i_arr.min()) < 0 or int(i_arr.max()) >= data.shape[0]:
            return None  # sequential path raises the scalar error
        # .tolist() yields the same Python scalars as per-element .item()
        for i, value in zip(lanes, data[i_arr].tolist()):
            pending[i] = value
        return self._segment_set(arr.base_addr + i_arr * arr.itemsize,
                                 arr.itemsize, seg_bytes)

    def _batch_stores(self, events, seg_bytes):
        idxs, arr = self._round_indices(events)
        if idxs is None:
            return None
        i_arr = idxs + arr.offset
        data = arr.data
        if int(i_arr.min()) < 0 or int(i_arr.max()) >= data.shape[0]:
            return None
        try:
            values = np.asarray([ev[3] for ev in events], dtype=data.dtype)
        except (OverflowError, ValueError, TypeError):
            return None  # C-wraparound / odd values: scalar store handles
        # duplicate indices: NumPy keeps the last write, matching lane order
        data[i_arr] = values
        return self._segment_set(arr.base_addr + i_arr * arr.itemsize,
                                 arr.itemsize, seg_bytes)

    def _batch_atomics(self, lanes, events, pending, seg_bytes):
        """Batch a uniform atomic round with pairwise-distinct addresses.

        With no two lanes on one address there are no same-round
        read-modify-write chains, so old values are one gather and new
        values one array op. Integer ops require Python-int operands
        (the dtype cast must not change arithmetic) and rely on NumPy's
        C wraparound matching exact-Python-then-wrap modular arithmetic;
        float add/sub run in float64 and round once on store, exactly
        like the scalar ``old + v`` → ``store`` sequence."""
        op = events[0][1]
        if op not in _BATCH_ATOMIC_OPS:
            return None
        arr = events[0][2]
        raw_idxs = []
        for ev in events:
            if ev[1] != op or ev[2] is not arr:
                return None
            raw_idxs.append(ev[3])
        # cheap pure-Python duplicate check before any NumPy work:
        # conflicting rounds (CAS claims, shared counters) are common and
        # must not pay array-construction overhead just to fall back
        if len(set(raw_idxs)) != len(raw_idxs):
            return None
        data = arr.data
        kind = data.dtype.kind
        if kind in "iu":
            for ev in events:
                if not isinstance(ev[4], int):
                    return None
        elif op in ("or", "and"):
            return None  # bitwise on floats: scalar path raises
        try:
            idxs = np.fromiter(raw_idxs, dtype=np.int64, count=len(raw_idxs))
        except (TypeError, ValueError, OverflowError):
            return None
        i_arr = idxs + arr.offset
        if int(i_arr.min()) < 0 or int(i_arr.max()) >= data.shape[0]:
            return None
        try:
            values = np.asarray([ev[4] for ev in events], dtype=data.dtype)
        except (OverflowError, ValueError, TypeError):
            return None
        old = data[i_arr]
        for i, value in zip(lanes, old.tolist()):
            pending[i] = value
        if op in ("add", "sub") and kind == "f":
            wide = np.asarray([ev[4] for ev in events], dtype=np.float64)
            acc = old.astype(np.float64)
            new = (acc + wide if op == "add" else acc - wide).astype(
                data.dtype)
        elif op == "add":
            new = old + values
        elif op == "sub":
            new = old - values
        elif op == "min":
            new = np.minimum(old, values)
        elif op == "max":
            new = np.maximum(old, values)
        elif op == "exch":
            new = values
        elif op == "or":
            new = old | values
        else:  # "and"
            new = old & values
        data[i_arr] = new
        return self._segment_set(arr.base_addr + i_arr * arr.itemsize,
                                 arr.itemsize, seg_bytes)

    def _batch_intrinsics(self, lanes, events, pending):
        """Batch a uniform intrinsic round through the DP runtime.

        Returns the summed intrinsic cycles, or None to fall back."""
        name = events[0][1]
        if name in _PUSH_NAMES:
            arity = int(name[-1]) + 1
        elif name == "buf_get":
            arity = 3
        elif name == "buf_size":
            arity = 1
        else:
            return None
        for ev in events:
            if ev[1] != name or len(ev[2]) != arity:
                return None
        handle = events[0][2][0]
        for ev in events:
            if ev[2][0] != handle:
                return None
        dp = self._dp
        if name in _PUSH_NAMES:
            out = dp.push_many(handle, [ev[2][1:] for ev in events])
        elif name == "buf_get":
            out = dp.get_many(handle, [ev[2][1] for ev in events],
                              [ev[2][2] for ev in events])
        else:
            out = dp.size_many(handle, len(events))
        if out is None:
            return None
        values, cycles = out
        for i, value in zip(lanes, values):
            pending[i] = value
        return cycles

"""L2 cache and DRAM-transaction accounting.

The paper's Fig. 10 counts DRAM read+write transactions via the NVIDIA
profiler. We model the path the same way the hardware does at first order:
warp memory accesses are coalesced into 128-byte segments
(:mod:`repro.sim.coalesce`), each segment probes a device-wide L2 modelled
as set-associative LRU, and misses (plus write-backs, which we fold into
the miss count) become DRAM transactions.

Overhead traffic that does not originate in kernel code — pending-launch
parameter buffering, parent-block swap at ``cudaDeviceSynchronize``,
virtual-pool management — is charged through :meth:`MemorySystem.charge_overhead`
with a tag, so the profiler can break transactions down by source exactly
like DESIGN.md §5 requires.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .specs import CostModel, DeviceSpec


@dataclass
class MemoryCounters:
    """Raw counters maintained by :class:`MemorySystem`."""

    l2_hits: int = 0
    l2_misses: int = 0
    dram_transactions: int = 0
    #: transaction counts by overhead source tag
    overhead: dict = field(default_factory=dict)

    def merge(self, other: "MemoryCounters") -> None:
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.dram_transactions += other.dram_transactions
        for tag, n in other.overhead.items():
            self.overhead[tag] = self.overhead.get(tag, 0) + n


class L2Cache:
    """Set-associative LRU cache over 128-byte segments.

    ``probe`` returns True on hit. The device has a single shared L2, so
    one instance lives in the :class:`MemorySystem`.
    """

    def __init__(self, size_bytes: int, line_bytes: int, ways: int = 16):
        self.line_bytes = line_bytes
        num_lines = max(ways, size_bytes // line_bytes)
        self.num_sets = max(1, num_lines // ways)
        self.ways = ways
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def probe(self, segment: int) -> bool:
        s = self._sets[segment % self.num_sets]
        if segment in s:
            s.move_to_end(segment)
            return True
        s[segment] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


class MemorySystem:
    """Couples the L2 model with DRAM counters and stall-cycle pricing."""

    def __init__(self, spec: DeviceSpec, cost: CostModel):
        self.spec = spec
        self.cost = cost
        self.l2 = L2Cache(spec.l2_bytes, spec.dram_segment_bytes)
        self.counters = MemoryCounters()

    def access_segments(self, segments) -> int:
        """Account a warp's coalesced segment set; returns stall cycles."""
        cycles = 0
        probe = self.l2.probe
        hit_cycles = self.cost.l2_hit_cycles
        miss_cycles = self.cost.dram_transaction_cycles
        counters = self.counters
        for seg in segments:
            if probe(seg):
                counters.l2_hits += 1
                cycles += hit_cycles
            else:
                counters.l2_misses += 1
                counters.dram_transactions += 1
                cycles += miss_cycles
        return cycles

    def charge_overhead(self, tag: str, transactions: int) -> None:
        """Charge DRAM traffic that bypasses kernel code (launch-parameter
        buffering, swap, virtual-pool management)."""
        if transactions <= 0:
            return
        self.counters.dram_transactions += transactions
        self.counters.overhead[tag] = self.counters.overhead.get(tag, 0) + transactions

    def reset(self) -> None:
        self.counters = MemoryCounters()
        self.l2.flush()

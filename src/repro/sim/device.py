"""The Device facade: the simulated GPU a host program talks to.

Typical use::

    dev = Device()                         # a simulated K20c
    prog = dev.load(minicuda_source)       # parse, check, codegen, register
    dist = dev.from_numpy("dist", host_dist)
    prog.launch("sssp_parent", grid, block, row_ptr, col_idx, ..., n, 8)
    metrics = dev.synchronize()            # timing model + profiler

Functional execution is *eager* (launch() runs the kernel and updates
device arrays immediately, so host control flow can read results back),
while the timing model runs lazily at :meth:`Device.synchronize` over all
launches since the previous synchronize — mirroring how a CUDA host
program enqueues work and then blocks.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..alloc import make_allocator
from ..backend.codegen import CompiledModule, compile_module
from ..errors import LaunchError, SimulationError
from ..frontend.ast_nodes import Module
from ..frontend.parser import parse
from ..frontend.typecheck import ModuleInfo, check_module
from ..perf.collect import active_collector
from ..telemetry import span
from .cache import MemorySystem
from .dp import DPRuntime
from .engine import FunctionalEngine, KernelInstance
from .engine_vec import VectorizedEngine
from .memory import DeviceArray, GlobalMemory
from .profiler import RunMetrics, collect_metrics
from .specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C
from .timing import DeviceScheduler

#: default size of the device heap backing consolidation buffers. The
#: paper defaults to 500 MB; we default smaller because scaled datasets
#: need far less (overridable per Device).
DEFAULT_HEAP_BYTES = 64 * 1024 * 1024

#: functional-engine implementations, selectable per Device. Both run the
#: same canonical schedule and produce bitwise-identical metrics (the
#: differential harness in tests/test_oracle.py holds them to it);
#: 'scalar' is the reference, 'vectorized' the batched default.
ENGINES = {
    "scalar": FunctionalEngine,
    "vectorized": VectorizedEngine,
}

DEFAULT_ENGINE = "vectorized"


class Program:
    """A loaded MiniCUDA module bound to a device."""

    def __init__(self, device: "Device", compiled: CompiledModule):
        self.device = device
        self.compiled = compiled

    @property
    def source(self) -> str:
        return self.compiled.python_source

    def kernel_names(self) -> list[str]:
        return sorted(self.compiled.kernels)

    def launch(self, name: str, grid: int, block: int, *args) -> None:
        self.device.launch(name, grid, block, *args)


class Device:
    def __init__(self, spec: DeviceSpec = K20C,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 allocator: str = "custom",
                 heap_bytes: int = DEFAULT_HEAP_BYTES,
                 engine: Optional[str] = None):
        self.spec = spec
        self.cost = cost
        # keep the numpy-visible memory bounded: the address space is the
        # spec's, but we only ever materialize what the program allocates.
        # On small specs, cap the device heap at a quarter of global memory
        # so the default still leaves room for program data.
        heap_bytes = min(heap_bytes, spec.global_mem_bytes // 4)
        self.memory = GlobalMemory(spec.global_mem_bytes, heap_bytes)
        self.memsys = MemorySystem(spec, cost)
        self.allocator = make_allocator(allocator, self.memory.heap_base,
                                        heap_bytes, cost)
        self.dp = DPRuntime(spec, cost, self.memory, self.memsys, self.allocator)
        self.kernels: dict[str, object] = {}
        self.engine_name = engine if engine is not None else DEFAULT_ENGINE
        engine_cls = ENGINES.get(self.engine_name)
        if engine_cls is None:
            raise SimulationError(
                f"unknown sim engine {engine!r}; "
                f"available: {', '.join(sorted(ENGINES))}")
        extra = {"dp": self.dp} if engine_cls is VectorizedEngine else {}
        self.engine = engine_cls(
            spec, cost, self.memsys, self.kernels,
            intrinsic_handler=self.dp.handle_intrinsic,
            on_launch=self._on_device_launch,
            **extra,
        )
        # deep profiling (repro.perf): a collector bound via
        # ``profiling()`` when this device is constructed attaches to
        # the engine and DP runtime. Observational only — the engines
        # skip every hook when it is None, and nothing it records feeds
        # back into pricing, so metrics stay bitwise identical.
        self.profiler = active_collector()
        if self.profiler is not None:
            self.engine.profiler = self.profiler
            self.dp.profiler = self.profiler
        self._uid = 0
        self._roots: list[KernelInstance] = []
        self._all_roots: list[KernelInstance] = []
        self.last_metrics: Optional[RunMetrics] = None

    # ------------------------------------------------------------- loading

    def load(self, module: Union[str, Module, ModuleInfo]) -> Program:
        """Parse/check/compile a MiniCUDA module and register its kernels."""
        with span("sim.codegen"):
            if isinstance(module, str):
                module = parse(module)
            if isinstance(module, Module):
                # allow __dp_* names: consolidated sources legitimately
                # use them, and the compiler has already vetted user
                # inputs
                info = check_module(module, allow_reserved=True)
            else:
                info = module
            compiled = compile_module(info)
        for name, fn in compiled.functions.items():
            existing = self.kernels.get(name)
            if existing is not None:
                raise SimulationError(
                    f"kernel/function {name!r} already loaded on this device"
                )
        # register device functions too: launches only reference kernels,
        # but keeping one namespace catches collisions early.
        self.kernels.update(compiled.kernels)
        return Program(self, compiled)

    # ------------------------------------------------------------- memory

    def alloc(self, name: str, dtype: str, n: int) -> DeviceArray:
        return self.memory.alloc_array(name, dtype, n)

    def from_numpy(self, name: str, host: np.ndarray) -> DeviceArray:
        return self.memory.from_numpy(name, host)

    @staticmethod
    def to_numpy(arr: DeviceArray) -> np.ndarray:
        return arr.to_numpy()

    # ------------------------------------------------------------ launches

    def launch(self, name: str, grid: int, block: int, *args) -> None:
        """Host-side kernel launch (eager functional execution)."""
        if name not in self.kernels:
            raise LaunchError(f"launch of unknown kernel {name!r}")
        self._validate_config(name, grid, block)
        inst = self._new_instance(name, int(grid), int(block), args,
                                  depth=0, parent=None)
        self.dp.stats.host_launches += 1
        self.engine.run_instance(inst)
        self._roots.append(inst)
        self._all_roots.append(inst)

    def _validate_config(self, name: str, grid: int, block: int) -> None:
        if grid <= 0 or block <= 0:
            raise LaunchError(
                f"kernel {name}: invalid configuration <<<{grid}, {block}>>>"
            )
        if block > self.spec.max_threads_per_block:
            raise LaunchError(
                f"kernel {name}: {block} threads/block exceeds the device "
                f"limit of {self.spec.max_threads_per_block}"
            )

    def _new_instance(self, name, grid, block, args, depth, parent) -> KernelInstance:
        self._uid += 1
        inst = KernelInstance(
            uid=self._uid, name=name, grid=grid, block_dim=block,
            args=tuple(args), depth=depth,
            parent_uid=None if parent is None else parent.uid,
            from_device=parent is not None,
        )
        if parent is not None:
            parent.children.append(inst)
        return inst

    def _on_device_launch(self, parent: KernelInstance, name: str,
                          grid: int, block: int, args: tuple) -> KernelInstance:
        if name not in self.kernels:
            raise LaunchError(f"device launch of unknown kernel {name!r}")
        depth = parent.depth + 1
        if depth > self.spec.max_nesting_depth:
            raise LaunchError(
                f"dynamic-parallelism nesting depth {depth} exceeds the "
                f"device limit of {self.spec.max_nesting_depth}"
            )
        self._validate_config(name, grid, block)
        self.dp.stats.device_launches += 1
        # pending-launch parameter buffering traffic (§III.B)
        self.memsys.charge_overhead("launch-params",
                                    self.cost.launch_param_transactions)
        return self._new_instance(name, int(grid), int(block), args,
                                  depth=depth, parent=parent)

    # --------------------------------------------------------------- sync

    def synchronize(self) -> RunMetrics:
        """Run the timing model over everything launched since the last
        synchronize and return the fused metrics."""
        with span("sim.timing", kernels=len(self._roots)):
            scheduler = DeviceScheduler(self.spec, self.cost, self.memsys)
            timing = scheduler.run(self._roots)
            metrics = collect_metrics(self._roots, timing, self.memsys,
                                      self.dp.stats, self.allocator)
        if self.profiler is not None:
            self.profiler.finalize(list(self._roots), metrics,
                                   self.spec, self.cost)
        self.last_metrics = metrics
        self._roots = []
        return metrics

    def reset_profile(self) -> None:
        """Clear counters between experiment phases (keeps memory contents)."""
        self.memsys.reset()
        self.dp.reset_run()
